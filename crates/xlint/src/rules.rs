//! The lint rules and the token-stream matcher.
//!
//! Five rules, all motivated by keeping the scheduler's simulation
//! deterministic and its cost arithmetic auditable (DESIGN.md §6):
//!
//! * **D1** — no `HashMap`/`HashSet`: hash iteration order is
//!   nondeterministic and has leaked into ordered output before.
//! * **D2** — no wall-clock or entropy sources (`Instant::now`,
//!   `SystemTime`, `thread_rng`, `from_entropy`) outside `bench`.
//! * **N1** — no bare `as` numeric casts inside the cost-model/scheduler
//!   crates; use the checked helpers in `exegpt_dist::convert`.
//! * **F1** — no float `==`/`!=` (literal-adjacent detection).
//! * **P1** — no `unwrap`/`expect`/`panic!` in non-test library code.
//! * **U1** — no raw `f64`/`f32` parameters or returns in `pub fn`
//!   signatures of the unit-carrying crates (cost model + hardware
//!   model); use the `exegpt_units` newtypes (`Secs`, `Bytes`, ...).
//! * **U2** — a `let` binding named `*_bytes`/`*_secs`/`*_flops` must
//!   not be initialized from a call whose name carries a *different*
//!   unit suffix (e.g. `let total_secs = kv_bytes(...)`).
//! * **L1** — crate-layering: no upward or undeclared `exegpt_*` import
//!   against the declared workspace DAG (see [`crate::workspace`]).
//! * **P2** — no discarded fallible results: `let _ =` or a bare
//!   expression statement whose callee is a file-local `fn` returning
//!   `Result` (or marked `#[must_use]`).
//! * **D3** — concurrency determinism: `std::thread` / `Atomic*` /
//!   `Mutex` / `RwLock` only inside the audited pool modules
//!   (`core/scheduler.rs`, `sim/cache.rs`), and `Ordering::Relaxed` only
//!   on counter-named atomics anywhere.
//!
//! Three rules run on the intraprocedural dataflow layer
//! ([`crate::cfg`] + worklist fixpoint, DESIGN.md §6.3) instead of the
//! raw token stream:
//!
//! * **D4** — determinism taint: a value *derived from* a wall-clock /
//!   entropy / env read must not reach event-log emission, a metrics
//!   write, or a plan API. D2's bench waiver scopes the *sources*; the
//!   sinks stay guarded everywhere.
//! * **U3** — unit re-entry: a float stripped out of a unit newtype
//!   (`.as_secs()`, `.as_f64()`) must not re-enter a *different* unit's
//!   constructor; `exegpt_dist::convert` helpers and the unit's own
//!   constructors are the sanctioned re-dimensioning points.
//! * **P3** — lost-error flow: a bound `Result` from a file-local
//!   fallible fn that *no* path ever consumes (the flow-sensitive
//!   upgrade of P2's single-statement discard check).

use crate::cfg::{self, Cfg, Stmt, StmtKind};
use crate::dataflow::{self, FlowConfig};
use crate::lexer::{self, Lexed, Tok, TokKind};
use crate::parser::{self, ItemKind};
use crate::taint::{self, TaintSet};
use crate::workspace;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Nondeterministic hash collections.
    D1,
    /// Wall-clock / entropy sources.
    D2,
    /// Bare numeric `as` casts in numeric-core crates.
    N1,
    /// Float equality comparison.
    F1,
    /// Panicking calls in library code.
    P1,
    /// Raw float parameters/returns in public unit-carrying signatures.
    U1,
    /// Unit-suffix conflict between a binding and its initializer call.
    U2,
    /// Upward or undeclared cross-crate import against the layering DAG.
    L1,
    /// Discarded fallible result (`let _ =` / bare call statement).
    P2,
    /// Concurrency primitive outside the audited pool modules.
    D3,
    /// Nondeterministic value flows into an event/metrics/plan sink.
    D4,
    /// Unit-stripped float re-enters a different unit's constructor.
    U3,
    /// Bound `Result` that no path consumes.
    P3,
    /// Malformed or unused allow pragma.
    X0,
    /// Per-crate suppression count exceeds the committed budget.
    X1,
}

impl Rule {
    /// All reportable rules, in severity/display order.
    pub const ALL: [Rule; 15] = [
        Rule::D1,
        Rule::D2,
        Rule::N1,
        Rule::F1,
        Rule::P1,
        Rule::U1,
        Rule::U2,
        Rule::L1,
        Rule::P2,
        Rule::D3,
        Rule::D4,
        Rule::U3,
        Rule::P3,
        Rule::X0,
        Rule::X1,
    ];

    /// The rule's stable identifier, as used in pragmas and output.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::N1 => "N1",
            Rule::F1 => "F1",
            Rule::P1 => "P1",
            Rule::U1 => "U1",
            Rule::U2 => "U2",
            Rule::L1 => "L1",
            Rule::P2 => "P2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::U3 => "U3",
            Rule::P3 => "P3",
            Rule::X0 => "X0",
            Rule::X1 => "X1",
        }
    }

    /// One-line description, used in SARIF driver metadata.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "no HashMap/HashSet: hash iteration order is nondeterministic",
            Rule::D2 => "no wall clock or OS entropy outside crates/bench",
            Rule::N1 => "no bare `as` numeric casts in cost-model/scheduler arithmetic",
            Rule::F1 => "no float ==/!= comparison",
            Rule::P1 => "no unwrap/expect/panic! in library code",
            Rule::U1 => "no raw f64/f32 in pub fn signatures of unit-carrying crates",
            Rule::U2 => "no unit-suffix conflict between a binding and its initializer",
            Rule::L1 => "no upward or undeclared cross-crate import (layering DAG)",
            Rule::P2 => "no discarded Result / unused #[must_use] value",
            Rule::D3 => "no concurrency primitives outside the audited pool modules",
            Rule::D4 => "no clock/entropy/env-derived value may flow into events/metrics/plans",
            Rule::U3 => "no unit-stripped float may re-enter a different unit's constructor",
            Rule::P3 => "no bound Result may go unconsumed on every path",
            Rule::X0 => "malformed, unknown-rule, or stale xlint::allow pragma",
            Rule::X1 => "per-crate suppression count exceeds the committed budget",
        }
    }

    /// Parses a rule id (as written in a pragma).
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }
}

/// What a file's crate context enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileContext {
    /// D2 is waived in `bench` (benchmarks legitimately read the clock).
    pub allow_wall_clock: bool,
    /// N1 fires only in the numeric-core crates (cost model + scheduler).
    pub numeric_core: bool,
    /// P1 is waived in binary targets (`src/bin/`, `main.rs`) and in the
    /// `bench` harness: top-level application code may terminate the
    /// process on unrecoverable errors.
    pub allow_panics: bool,
    /// U1 fires only in the unit-carrying crates (hardware + cost model),
    /// whose public signatures must use the `exegpt_units` newtypes.
    pub units_core: bool,
    /// L1 needs the owning crate's identity (index into
    /// [`workspace::CRATES`]); `None` (root package, fixtures) waives it.
    pub crate_idx: Option<usize>,
    /// D3's structural checks are waived in the two audited pool modules
    /// (`crates/core/src/scheduler.rs`, `crates/sim/src/cache.rs`); the
    /// `Ordering::Relaxed`-on-counters check still applies there.
    pub audited_concurrency: bool,
}

impl Default for FileContext {
    fn default() -> Self {
        Self {
            allow_wall_clock: false,
            numeric_core: true,
            allow_panics: false,
            units_core: true,
            crate_idx: None,
            audited_concurrency: false,
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as reported (workspace-relative when walking a workspace).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found.
    pub message: String,
    /// The suggested fix.
    pub suggestion: String,
}

/// A pragma-suppressed finding (still counted and reported in summaries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The finding that the pragma silenced.
    pub finding: Finding,
    /// The pragma's reason text.
    pub reason: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations to report.
    pub findings: Vec<Finding>,
    /// Violations silenced by `xlint::allow` pragmas.
    pub suppressed: Vec<Suppressed>,
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Lints one source file given its crate context.
pub fn lint_source(file: &str, src: &str, ctx: FileContext) -> FileReport {
    let lexed: Lexed = lexer::lex(src);
    let in_test = lexer::test_regions(&lexed.toks);
    let toks = &lexed.toks;
    let mut raw: Vec<Finding> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                // D1: hash collections anywhere in non-test code.
                "HashMap" | "HashSet" => raw.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: Rule::D1,
                    message: format!("`{}` iterates in nondeterministic order", t.text),
                    suggestion: format!(
                        "use `BTree{}` (or justify with `// xlint::allow(D1, reason)`)",
                        t.text.trim_start_matches("Hash")
                    ),
                }),
                // D2: wall clock and entropy.
                "Instant" if !ctx.allow_wall_clock && next_is(toks, i, "::", "now") => {
                    raw.push(d2(file, t, "`Instant::now` reads the wall clock"))
                }
                "SystemTime" if !ctx.allow_wall_clock => {
                    raw.push(d2(file, t, "`SystemTime` reads the wall clock"))
                }
                "thread_rng" if !ctx.allow_wall_clock => {
                    raw.push(d2(file, t, "`thread_rng` draws OS entropy"))
                }
                "from_entropy" if !ctx.allow_wall_clock => {
                    raw.push(d2(file, t, "`from_entropy` seeds from OS entropy"))
                }
                // N1: bare numeric casts in the numeric core.
                "as" if ctx.numeric_core => {
                    if let Some(next) = toks.get(i + 1) {
                        if next.kind == TokKind::Ident
                            && NUMERIC_TYPES.contains(&next.text.as_str())
                        {
                            raw.push(Finding {
                                file: file.to_string(),
                                line: t.line,
                                rule: Rule::N1,
                                message: format!("bare `as {}` cast in cost arithmetic", next.text),
                                suggestion: "use the checked helpers in `exegpt_dist::convert` \
                                             (lossless_f64 / trunc_usize / ...)"
                                    .to_string(),
                            });
                        }
                    }
                }
                // P1: panicking calls in library code.
                "unwrap" | "expect" if !ctx.allow_panics && prev_is_dot(toks, i) => {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: Rule::P1,
                        message: format!("`.{}()` can panic in library code", t.text),
                        suggestion: "thread the crate's error type (`?`, `ok_or_else`) or \
                                     handle the `None`/`Err` arm"
                            .to_string(),
                    });
                }
                "panic" if !ctx.allow_panics && next_is_bang(toks, i) => {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: Rule::P1,
                        message: "`panic!` in library code".to_string(),
                        suggestion: "return an error variant instead (or `debug_assert!` for \
                                     internal invariants)"
                            .to_string(),
                    });
                }
                _ => {}
            },
            // F1: float equality (a float literal on either side).
            TokKind::Punct if t.text == "==" || t.text == "!=" => {
                let float_adjacent = matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Float)
                    || (i > 0 && toks[i - 1].kind == TokKind::Float);
                if float_adjacent {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: Rule::F1,
                        message: format!("float `{}` comparison", t.text),
                        suggestion: "compare with an epsilon (`(a - b).abs() < eps`), an \
                                     order test (`<= 0.0`), or an integer representation"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }

    let items = parser::parse_items(toks);
    let local = LocalFns::collect(toks, &items);
    if ctx.units_core {
        u1_scan(file, toks, &in_test, &mut raw);
    }
    u2_scan(file, toks, &in_test, &mut raw);
    if let Some(me) = ctx.crate_idx {
        l1_scan(file, toks, &in_test, me, &mut raw);
    }
    if !ctx.allow_panics {
        p2_scan(file, toks, &in_test, &local, &mut raw);
    }
    d3_scan(file, toks, &in_test, ctx, &mut raw);
    flow_scan(file, toks, &in_test, ctx, &items, &local, &mut raw);

    apply_pragmas(file, raw, &lexed)
}

/// L1: every mention of a workspace crate identifier (`exegpt`,
/// `exegpt_*`) in non-test code must point strictly downward in the
/// declared layering DAG. One finding per (line, target crate).
fn l1_scan(file: &str, toks: &[Tok], in_test: &[bool], me: usize, raw: &mut Vec<Finding>) {
    let mut last: Option<(usize, usize)> = None;
    for (i, t) in toks.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) || t.kind != TokKind::Ident {
            continue;
        }
        let Some(target) = workspace::crate_index_for_ident(&t.text) else { continue };
        if target == me || workspace::import_allowed(me, target) {
            continue;
        }
        if last == Some((t.line, target)) {
            continue; // one finding per line per offending crate
        }
        last = Some((t.line, target));
        raw.push(workspace::layering_finding(file, t.line, me, target));
    }
}

/// File-local call resolution shared by P2, P3 and `--fix`: the file's
/// own unambiguously fallible `fn` items, plus `use` aliases so a
/// renamed import (`use inner::persist as p2`) still resolves.
pub(crate) struct LocalFns {
    /// `(name, returns_result)` for each unambiguous fallible fn.
    fallible: Vec<(String, bool)>,
    /// `(alias, original)` pairs from `use … as …` items.
    aliases: Vec<(String, String)>,
}

impl LocalFns {
    /// Collects fallible fns and use-aliases from parsed items.
    /// Name-based resolution must be conservative: if the file defines
    /// two same-named fns (e.g. `apply` on two types) and any of them is
    /// infallible, the name is ambiguous and never flagged.
    pub(crate) fn collect(toks: &[Tok], items: &[parser::Item]) -> Self {
        let fns: Vec<(&str, &parser::FnSig)> = items
            .iter()
            .filter_map(|it| match &it.kind {
                ItemKind::Fn(sig) => Some((it.name.as_str(), sig)),
                _ => None,
            })
            .collect();
        let fallible: Vec<(String, bool)> = fns
            .iter()
            .filter(|(name, sig)| {
                (sig.returns_result || sig.must_use)
                    && fns.iter().all(|(n, s)| *n != *name || s.returns_result || s.must_use)
            })
            .map(|(name, sig)| (name.to_string(), sig.returns_result))
            .collect();
        let mut aliases = Vec::new();
        for it in items {
            if it.kind != ItemKind::Use {
                continue;
            }
            for j in it.start..=it.end.min(toks.len().saturating_sub(1)) {
                if toks[j].kind == TokKind::Ident && toks[j].text == "as" && j >= 1 {
                    let (orig, alias) = (toks.get(j - 1), toks.get(j + 1));
                    if let (Some(o), Some(a)) = (orig, alias) {
                        if o.kind == TokKind::Ident && a.kind == TokKind::Ident {
                            aliases.push((a.text.clone(), o.text.clone()));
                        }
                    }
                }
            }
        }
        Self { fallible, aliases }
    }

    /// Resolves a callee name (directly or through one `use` alias) to
    /// its fallibility: `Some(returns_result)` if it is a tracked fn.
    pub(crate) fn lookup(&self, name: &str) -> Option<bool> {
        if let Some((_, r)) = self.fallible.iter().find(|(n, _)| n == name) {
            return Some(*r);
        }
        let orig = self.aliases.iter().find(|(a, _)| a == name).map(|(_, o)| o.as_str())?;
        self.fallible.iter().find(|(n, _)| n == orig).map(|(_, r)| *r)
    }
}

/// P2: discarded fallible results, resolved per file against
/// [`LocalFns`]: flags `let _ = …;` initializers and bare call
/// statements whose *final* callee is a tracked fallible fn.
fn p2_scan(file: &str, toks: &[Tok], in_test: &[bool], local: &LocalFns, raw: &mut Vec<Finding>) {
    if local.fallible.is_empty() {
        return;
    }
    let lookup = |name: &str| local.lookup(name);
    let push = |raw: &mut Vec<Finding>, line: usize, callee: &str, is_result: bool, how: &str| {
        raw.push(Finding {
            file: file.to_string(),
            line,
            rule: Rule::P2,
            message: format!(
                "{how} discards the {} of `{callee}(...)`",
                if is_result { "`Result`" } else { "`#[must_use]` value" },
            ),
            suggestion: "handle the value (`?`, match on the `Err` arm, or log it); \
                         an intentional discard needs `// xlint::allow(P2, reason)`"
                .to_string(),
        });
    };

    let mut i = 0usize;
    let mut stmt_start = true;
    while i < toks.len() {
        if in_test.get(i).copied().unwrap_or(false) {
            stmt_start = matches!(toks[i].text.as_str(), ";" | "{" | "}");
            i += 1;
            continue;
        }
        let t = &toks[i];
        // `let _ = <expr>;` — inspect the initializer's final callee.
        if t.kind == TokKind::Ident
            && t.text == "let"
            && matches!(toks.get(i + 1), Some(u) if u.kind == TokKind::Ident && u.text == "_")
            && matches!(toks.get(i + 2), Some(e) if e.kind == TokKind::Punct && e.text == "=")
        {
            let end = stmt_end(toks, i + 3);
            if let Some(callee) = final_callee(toks, i + 3, end) {
                if let Some(is_result) = lookup(callee) {
                    push(raw, t.line, callee, is_result, "`let _ =`");
                }
            }
            i = end + 1;
            stmt_start = true;
            continue;
        }
        // Bare call statement: `name(...)` / `recv.name(...)` at statement
        // position, no assignment in between, ending `);`.
        if stmt_start && t.kind == TokKind::Ident && !is_stmt_keyword(&t.text) {
            let end = stmt_end(toks, i);
            let plain = toks[i..=end.min(toks.len().saturating_sub(1))]
                .iter()
                .all(|x| !(x.kind == TokKind::Punct && matches!(x.text.as_str(), "=" | "{" | "}")));
            if plain {
                if let Some(callee) = final_callee(toks, i, end) {
                    if let Some(is_result) = lookup(callee) {
                        push(raw, t.line, callee, is_result, "bare statement");
                    }
                }
                i = end + 1;
                stmt_start = true;
                continue;
            }
        }
        stmt_start = t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}");
        i += 1;
    }
}

/// Index of the `;` ending the statement starting at `from` (bracket
/// depth 0), or the last token if none.
fn stmt_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0usize;
    let mut j = from;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// The name of the *final* call in `toks[from..end]` — the call whose
/// result reaches the statement terminator. `foo(x)` → `foo`;
/// `a.save()` → `save`; `foo(x).ok()` → `ok`; `foo(x)?` / macros → None.
fn final_callee(toks: &[Tok], from: usize, end: usize) -> Option<&str> {
    // The expression must end with a `)` just before the `;`.
    let close = end.checked_sub(1)?;
    if close < from || !(toks.get(close)?.kind == TokKind::Punct && toks[close].text == ")") {
        return None;
    }
    // Walk back to the matching `(`.
    let mut depth = 0usize;
    let mut j = close;
    loop {
        let t = toks.get(j)?;
        if t.kind == TokKind::Punct {
            if t.text == ")" {
                depth += 1;
            } else if t.text == "(" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if j == from {
            return None;
        }
        j -= 1;
    }
    let name = toks.get(j.checked_sub(1)?)?;
    (name.kind == TokKind::Ident && j.checked_sub(1)? >= from).then_some(name.text.as_str())
}

/// Statement-leading keywords that rule out a bare call statement.
fn is_stmt_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "if"
            | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "impl"
            | "trait"
            | "const"
            | "static"
            | "type"
            | "unsafe"
            | "async"
            | "extern"
            | "where"
            | "in"
            | "move"
            | "ref"
            | "mut"
            | "Self"
            | "dyn"
            | "as"
    )
}

/// D3: concurrency determinism. Outside the audited pool modules no
/// `std::thread`, no `Atomic*` types, no `Mutex`/`RwLock` in non-test
/// code; everywhere (audited modules included), `Ordering::Relaxed` is
/// legal only on counter-named atomics — anything whose value feeds
/// control flow needs a stronger ordering *and* an audit.
fn d3_scan(file: &str, toks: &[Tok], in_test: &[bool], ctx: FileContext, raw: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) || t.kind != TokKind::Ident {
            continue;
        }
        let audited = ctx.audited_concurrency;
        match t.text.as_str() {
            "thread"
                if !audited && i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std" =>
            {
                raw.push(d3(file, t.line, "`std::thread` outside the audited pool modules"));
            }
            "Mutex" | "RwLock" if !audited => {
                raw.push(d3(
                    file,
                    t.line,
                    "lock type in library code outside the audited pool modules",
                ));
            }
            "Relaxed" if i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "Ordering" => {
                let counter = relaxed_receiver(toks, i - 2).is_some_and(is_counter_name);
                if !counter {
                    raw.push(d3(
                        file,
                        t.line,
                        "`Ordering::Relaxed` on a non-counter atomic (its value may feed \
                         control flow)",
                    ));
                }
            }
            name if !audited && name.starts_with("Atomic") && name.len() > "Atomic".len() => {
                raw.push(d3(file, t.line, "atomic type outside the audited pool modules"));
            }
            _ => {}
        }
    }
}

/// For `recv.method(…, Ordering::Relaxed)`, the receiver identifier
/// (`recv`), found by walking back from the `Ordering` token at `ord` to
/// the call's opening parenthesis.
fn relaxed_receiver(toks: &[Tok], ord: usize) -> Option<&str> {
    let mut depth = 0usize;
    let mut j = ord;
    // Find the `(` that opens the enclosing call.
    loop {
        j = j.checked_sub(1)?;
        let t = toks.get(j)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "(" if depth == 0 => break,
                "(" | "[" | "{" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
    }
    // Expect `recv . method (`.
    let method = toks.get(j.checked_sub(1)?)?;
    let dot = toks.get(j.checked_sub(2)?)?;
    let recv = toks.get(j.checked_sub(3)?)?;
    (method.kind == TokKind::Ident && dot.text == "." && recv.kind == TokKind::Ident)
        .then_some(recv.text.as_str())
}

/// Whether an atomic's name marks it as a pure counter (aggregated
/// statistics / work-index allocation), where `Relaxed` is sound.
fn is_counter_name(name: &str) -> bool {
    ["count", "counter", "hits", "misses", "seq", "next", "epoch", "tick", "idx"]
        .iter()
        .any(|p| name.contains(p))
}

fn d3(file: &str, line: usize, message: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: Rule::D3,
        message: message.to_string(),
        suggestion: "deterministic concurrency lives in the audited pool modules \
                     (core/scheduler.rs, sim/cache.rs) only; justify anything else with \
                     `// xlint::allow(D3, reason)` counted against the suppression budget"
            .to_string(),
    }
}

/// The plan-entry APIs D4 guards: any argument reaching one of these
/// decides a schedule and must be deterministic.
const PLAN_APIS: [&str; 5] =
    ["schedule", "reschedule", "reschedule_from", "reschedule_incremental", "replan_from"];

/// Metrics-registry write methods (guarded only on a receiver chain
/// that names `metrics`, so arithmetic `.add` stays out of scope).
const METRIC_WRITES: [&str; 4] = ["inc", "add", "gauge", "observe"];

/// D4/U3/P3: the flow rules. Each parsed `fn` body is lowered to a CFG,
/// the taint fixpoint is run, and every statement is checked against the
/// sink tables with the state holding *at that statement*.
fn flow_scan(
    file: &str,
    toks: &[Tok],
    in_test: &[bool],
    ctx: FileContext,
    items: &[parser::Item],
    local: &LocalFns,
    raw: &mut Vec<Finding>,
) {
    let fc = FlowConfig { env_source: !ctx.allow_panics };
    let mut seen: Vec<(usize, Rule)> = Vec::new();
    for it in items {
        let ItemKind::Fn(_) = it.kind else { continue };
        if in_test.get(it.start).copied().unwrap_or(false) {
            continue;
        }
        let Some((lo, hi)) = cfg::body_range(toks, it.start, it.end) else { continue };
        let g = cfg::build(toks, lo, hi);
        let states = dataflow::analyze(&g, toks, fc);
        // P3 candidates: (block, stmt index, name, callee, line).
        let mut candidates: Vec<(usize, usize, String, String, usize)> = Vec::new();
        for (bi, block) in g.blocks.iter().enumerate() {
            let mut state = states.get(bi).cloned().unwrap_or_default();
            for (si, stmt) in block.stmts.iter().enumerate() {
                check_sinks(file, toks, stmt, &state, fc, &mut seen, raw);
                if !ctx.allow_panics {
                    if let StmtKind::Let { names, init_lo, init_hi } = &stmt.kind {
                        if let [name] = names.as_slice() {
                            if name != "_" && init_lo <= init_hi {
                                let callee = final_callee(toks, *init_lo, init_hi + 1);
                                if let Some(c) = callee {
                                    if local.lookup(c) == Some(true) {
                                        candidates.push((
                                            bi,
                                            si,
                                            name.clone(),
                                            c.to_string(),
                                            stmt.line,
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
                dataflow::transfer(stmt, toks, &mut state, fc);
            }
        }
        for (bi, si, name, callee, line) in candidates {
            if !p3_used(&g, toks, bi, si, &name) && !seen.contains(&(line, Rule::P3)) {
                seen.push((line, Rule::P3));
                raw.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: Rule::P3,
                    message: format!(
                        "`Result` bound to `{name}` from `{callee}(...)` is never consumed \
                         on any path"
                    ),
                    suggestion: "propagate with `?`, match on the `Err` arm, or consume the \
                                 binding; an intentional drop needs `// xlint::allow(P3, reason)`"
                        .to_string(),
                });
            }
        }
    }
}

/// Whether any statement reachable *after* `(bi, si)` mentions `name`.
/// This is deliberately an under-approximation (any mention anywhere
/// downstream counts, shadowing included): the conservative CFG
/// over-estimates paths, so P3 only reports *definite* losses.
fn p3_used(g: &Cfg, toks: &[Tok], bi: usize, si: usize, name: &str) -> bool {
    let mentions = |s: &Stmt| {
        (s.lo..=s.hi.min(toks.len().saturating_sub(1)))
            .any(|k| toks[k].kind == TokKind::Ident && toks[k].text == name)
    };
    if g.blocks[bi].stmts.get(si + 1..).is_some_and(|rest| rest.iter().any(mentions)) {
        return true;
    }
    let mut visited = vec![false; g.blocks.len()];
    let mut stack: Vec<usize> = g.blocks[bi].succs.clone();
    while let Some(b) = stack.pop() {
        if b >= g.blocks.len() || visited[b] {
            continue;
        }
        visited[b] = true;
        if g.blocks[b].stmts.iter().any(mentions) {
            return true;
        }
        stack.extend(g.blocks[b].succs.iter().copied());
    }
    false
}

/// Checks one statement against the D4 and U3 sink tables under `state`.
fn check_sinks(
    file: &str,
    toks: &[Tok],
    stmt: &Stmt,
    state: &dataflow::State,
    fc: FlowConfig,
    seen: &mut Vec<(usize, Rule)>,
    raw: &mut Vec<Finding>,
) {
    let hi = stmt.hi.min(toks.len().saturating_sub(1));
    for j in stmt.lo..=hi {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let called =
            matches!(toks.get(j + 1), Some(n) if n.kind == TokKind::Punct && n.text == "(");
        // D4 sink: plan APIs (free fns and methods alike).
        if called && PLAN_APIS.contains(&t.text.as_str()) {
            if let Some((alo, ahi)) = call_args(toks, j + 1, hi) {
                let nd =
                    dataflow::expr_taint(toks, alo, ahi, state, fc).intersect(TaintSet::NONDET);
                if !nd.is_empty() {
                    push_d4(file, t.line, &nd, &format!("plan API `{}(...)`", t.text), seen, raw);
                }
            }
        }
        // D4 sink: metrics writes / event-log pushes (receiver-gated).
        if called && prev_is_dot(toks, j) {
            let chain = receiver_chain(toks, j - 1);
            let metrics = METRIC_WRITES.contains(&t.text.as_str())
                && chain.iter().any(|n| n.contains("metrics"));
            let log_push =
                t.text == "push" && chain.iter().any(|n| n.contains("log") || n.contains("events"));
            if metrics || log_push {
                if let Some((alo, ahi)) = call_args(toks, j + 1, hi) {
                    let nd =
                        dataflow::expr_taint(toks, alo, ahi, state, fc).intersect(TaintSet::NONDET);
                    if !nd.is_empty() {
                        let sink = if metrics {
                            format!("metrics write `.{}(...)`", t.text)
                        } else {
                            format!("event-log `.push(...)` on `{}`", chain.first().unwrap_or(&""))
                        };
                        push_d4(file, t.line, &nd, &sink, seen, raw);
                    }
                }
            }
        }
        // D4 sink: event construction. Skipped on Cond statements, whose
        // spans cover match *patterns* (`Event::Done { .. } =>`).
        if matches!(t.text.as_str(), "Event" | "FleetEvent")
            && !matches!(stmt.kind, StmtKind::Cond { .. })
        {
            let (vlo, vhi) = match &stmt.kind {
                StmtKind::Let { init_lo, init_hi, .. } if init_lo <= init_hi => {
                    (*init_lo, *init_hi)
                }
                _ => (stmt.lo, hi),
            };
            let nd = dataflow::expr_taint(toks, vlo, vhi, state, fc).intersect(TaintSet::NONDET);
            if !nd.is_empty() {
                push_d4(file, t.line, &nd, &format!("`{}` construction", t.text), seen, raw);
            }
        }
        // U3 sink: a unit constructor fed a *different* unit's strip.
        if let Some(unit) = taint::unit_for_type(&t.text) {
            if matches!(toks.get(j + 1), Some(c) if c.kind == TokKind::Punct && c.text == "::")
                && matches!(toks.get(j + 2), Some(m) if m.kind == TokKind::Ident
                    && taint::is_unit_ctor_method(&m.text))
                && matches!(toks.get(j + 3), Some(o) if o.kind == TokKind::Punct && o.text == "(")
            {
                if let Some((alo, ahi)) = call_args(toks, j + 3, hi) {
                    let foreign = dataflow::expr_taint(toks, alo, ahi, state, fc)
                        .intersect(TaintSet::STRIP_NAMED)
                        .minus(unit.strip_mark());
                    if !foreign.is_empty() && !seen.contains(&(t.line, Rule::U3)) {
                        seen.push((t.line, Rule::U3));
                        raw.push(Finding {
                            file: file.to_string(),
                            line: t.line,
                            rule: Rule::U3,
                            message: format!(
                                "`{}::{}` re-entered with a {} value",
                                t.text,
                                toks[j + 2].text,
                                foreign.describe(),
                            ),
                            suggestion: "convert through `exegpt_dist::convert` or the source \
                                         unit's own accessor chain — a raw float must not \
                                         change dimension silently"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}

fn push_d4(
    file: &str,
    line: usize,
    marks: &TaintSet,
    sink: &str,
    seen: &mut Vec<(usize, Rule)>,
    raw: &mut Vec<Finding>,
) {
    if seen.contains(&(line, Rule::D4)) {
        return;
    }
    seen.push((line, Rule::D4));
    raw.push(Finding {
        file: file.to_string(),
        line,
        rule: Rule::D4,
        message: format!("{}-tainted value flows into {sink}", marks.describe()),
        suggestion: "plans, metrics and event logs must be deterministic: derive the value \
                     from virtual time, a seeded RNG, or explicit config (DESIGN.md §6.3); \
                     an audited flow needs `// xlint::allow(D4, reason)`"
            .to_string(),
    });
}

/// The interior token range of the call whose `(` is at `open`, capped
/// at `hi`. `None` for an empty or unterminated argument list.
fn call_args(toks: &[Tok], open: usize, hi: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut k = open;
    while k <= hi {
        let t = toks.get(k)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return (k > open + 1).then_some((open + 1, k - 1));
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// The identifiers of a method call's receiver chain, innermost-first:
/// for `self.metrics.inc(..)` with `dot` at the `.` before `inc`, yields
/// `["metrics", "self"]`. Stops at anything but a plain ident path.
fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<&str> {
    let mut names = Vec::new();
    let mut j = dot;
    while let Some(prev) = j.checked_sub(1) {
        let t = &toks[prev];
        if t.kind != TokKind::Ident {
            break;
        }
        names.push(t.text.as_str());
        match prev.checked_sub(1).map(|k| &toks[k]) {
            Some(p) if p.kind == TokKind::Punct && (p.text == "." || p.text == "::") => {
                j = prev - 1;
            }
            _ => break,
        }
    }
    names
}

/// U1: `pub fn` signatures in unit-carrying crates must not take or
/// return raw `f64`/`f32` — dimensioned quantities go through the
/// `exegpt_units` newtypes. Restricted visibility (`pub(crate)` etc.) is
/// exempt: it is the sanctioned demotion for genuinely dimensionless
/// internals.
fn u1_scan(file: &str, toks: &[Tok], in_test: &[bool], raw: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if in_test.get(i).copied().unwrap_or(false)
            || !(toks[i].kind == TokKind::Ident && toks[i].text == "pub")
        {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` / `pub(in ...)`: skip the restriction
        // and the item it guards — U1 covers unrestricted `pub` only.
        if matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct && t.text == "(") {
            let mut depth = 1usize;
            j += 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        while matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern"))
        {
            j += 1;
        }
        if !matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident && t.text == "fn") {
            i += 1;
            continue;
        }
        let fn_line = toks[i].line;
        let fn_name = toks.get(j + 1).map(|t| t.text.as_str()).unwrap_or("?").to_string();
        // Scan the signature (params + return type) up to the body/`;`.
        j += 2;
        let mut depth = 0usize;
        let mut past_arrow = false;
        while let Some(t) = toks.get(j) {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[") => depth += 1,
                (TokKind::Punct, ")" | "]") => depth = depth.saturating_sub(1),
                (TokKind::Punct, "{" | ";") if depth == 0 => break,
                (TokKind::Punct, "->") if depth == 0 => past_arrow = true,
                (TokKind::Ident, "f64" | "f32") => {
                    // A float named by the dimensionless vocabulary is
                    // exempt: ratios/factors have no unit to carry, and
                    // rule U3 now polices the flows around them.
                    let exempt = if past_arrow {
                        dimensionless_name(&fn_name)
                    } else {
                        param_name_before(toks, j).is_some_and(dimensionless_name)
                    };
                    if exempt {
                        j += 1;
                        continue;
                    }
                    raw.push(Finding {
                        file: file.to_string(),
                        line: fn_line,
                        rule: Rule::U1,
                        message: format!("`pub fn {fn_name}` takes or returns raw `{}`", t.text),
                        suggestion: "use an `exegpt_units` newtype (`Secs`, `Bytes`, `Flops`, \
                                     a rate), name the quantity with the dimensionless \
                                     vocabulary (ratio/factor/…), or demote to `pub(crate)`"
                            .to_string(),
                    });
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
}

/// Whether a `_`-separated name component marks the quantity as
/// genuinely dimensionless (U1's sanctioned raw-float vocabulary).
fn dimensionless_name(name: &str) -> bool {
    name.split('_').any(|seg| {
        matches!(seg, "ratio" | "frac" | "efficiency" | "speedup" | "slowdown" | "factor" | "util")
    })
}

/// The identifier naming the parameter whose type mention sits at `ty`:
/// walks back over a short run of type tokens to the `:` introducing it.
fn param_name_before(toks: &[Tok], ty: usize) -> Option<&str> {
    let mut j = ty;
    for _ in 0..6 {
        j = j.checked_sub(1)?;
        let t = toks.get(j)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ":") => {
                let p = toks.get(j.checked_sub(1)?)?;
                return (p.kind == TokKind::Ident).then_some(p.text.as_str());
            }
            (TokKind::Punct, "&" | "<") | (TokKind::Lifetime, _) | (TokKind::Ident, _) => {}
            _ => return None,
        }
    }
    None
}

/// The unit vocabulary U2 checks binding/callee names against.
fn unit_suffix(name: &str) -> Option<&'static str> {
    ["bytes", "secs", "flops"]
        .into_iter()
        .find(|s| name == *s || (name.ends_with(s) && name[..name.len() - s.len()].ends_with('_')))
}

/// U2: a `let` binding whose name carries a unit suffix must not be
/// initialized by a call whose name carries a *conflicting* suffix. Only
/// the first call of the initializer is inspected — deeper expressions
/// are beyond a token-level lint.
fn u2_scan(file: &str, toks: &[Tok], in_test: &[bool], raw: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if in_test.get(i).copied().unwrap_or(false)
            || !(toks[i].kind == TokKind::Ident && toks[i].text == "let")
        {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident && t.text == "mut") {
            j += 1;
        }
        let Some(bind) = toks.get(j) else { break };
        if bind.kind != TokKind::Ident {
            i = j + 1;
            continue;
        }
        let Some(bind_suffix) = unit_suffix(&bind.text) else {
            i = j + 1;
            continue;
        };
        let (bind_line, bind_name) = (bind.line, bind.text.clone());
        // Find the `=` that starts the initializer (depth 0, before `;`).
        j += 1;
        let mut depth = 0usize;
        let mut eq = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "=" if depth == 0 && t.kind == TokKind::Punct => {
                    eq = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i = j;
            continue;
        };
        // The first called name in the initializer decides.
        j = eq + 1;
        depth = 0;
        while let Some(t) = toks.get(j) {
            if t.kind == TokKind::Punct && t.text == ";" && depth == 0 {
                break;
            }
            if t.kind == TokKind::Ident
                && matches!(toks.get(j + 1), Some(n) if n.kind == TokKind::Punct && n.text == "(")
            {
                if let Some(call_suffix) = unit_suffix(&t.text) {
                    if call_suffix != bind_suffix {
                        raw.push(Finding {
                            file: file.to_string(),
                            line: bind_line,
                            rule: Rule::U2,
                            message: format!(
                                "`{bind_name}` (unit `{bind_suffix}`) initialized from \
                                 `{}(...)` (unit `{call_suffix}`)",
                                t.text
                            ),
                            suggestion: "rename the binding to match the quantity, or convert \
                                         explicitly through the `exegpt_units` accessors"
                                .to_string(),
                        });
                    }
                }
                break;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
}

/// Splits raw findings into reported vs pragma-suppressed, and reports
/// malformed or unused pragmas as X0 findings.
fn apply_pragmas(file: &str, raw: Vec<Finding>, lexed: &Lexed) -> FileReport {
    let mut report = FileReport::default();
    let mut used = vec![false; lexed.pragmas.len()];
    for f in raw {
        // A pragma suppresses matching findings on its own line or the
        // line directly below it (so it can sit above the offending line).
        let hit = lexed.pragmas.iter().enumerate().find(|(_, p)| {
            (p.line == f.line || p.line + 1 == f.line)
                && Rule::parse(&p.rule) == Some(f.rule)
                && !p.reason.is_empty()
        });
        match hit {
            Some((idx, p)) => {
                used[idx] = true;
                report.suppressed.push(Suppressed { finding: f, reason: p.reason.clone() });
            }
            None => report.findings.push(f),
        }
    }
    for (p, used) in lexed.pragmas.iter().zip(&used) {
        if p.reason.is_empty() {
            report.findings.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: Rule::X0,
                message: format!("`xlint::allow({})` without a reason", p.rule),
                suggestion: "write `// xlint::allow(RULE, why this is sound)`".to_string(),
            });
        } else if Rule::parse(&p.rule).is_none() {
            report.findings.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: Rule::X0,
                message: format!("`xlint::allow({})` names an unknown rule", p.rule),
                suggestion: "use one of D1, D2, N1, F1, P1, U1, U2, L1, P2, D3, D4, U3, P3"
                    .to_string(),
            });
        } else if !used {
            report.findings.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: Rule::X0,
                message: format!("`xlint::allow({})` suppresses nothing", p.rule),
                suggestion: "remove the stale pragma".to_string(),
            });
        }
    }
    report.findings.sort_by_key(|a| (a.line, a.rule));
    report
}

fn d2(file: &str, t: &Tok, message: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line: t.line,
        rule: Rule::D2,
        message: message.to_string(),
        suggestion: "simulated/virtual time and seeded RNGs only outside `bench` \
                     (determinism of replays and event logs)"
            .to_string(),
    }
}

/// Whether `toks[i]` is followed by `sep` then `ident`.
fn next_is(toks: &[Tok], i: usize, sep: &str, ident: &str) -> bool {
    matches!(
        (toks.get(i + 1), toks.get(i + 2)),
        (Some(a), Some(b))
            if a.kind == TokKind::Punct && a.text == sep
                && b.kind == TokKind::Ident && b.text == ident
    )
}

fn next_is_bang(toks: &[Tok], i: usize) -> bool {
    matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Punct && n.text == "!")
}

fn prev_is_dot(toks: &[Tok], i: usize) -> bool {
    i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "."
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> FileReport {
        lint_source("t.rs", src, FileContext::default())
    }

    fn rules(r: &FileReport) -> Vec<Rule> {
        r.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_fires_on_hash_collections() {
        let r = lint("use std::collections::HashMap;\nlet s: HashSet<u8> = HashSet::new();");
        assert_eq!(rules(&r), vec![Rule::D1, Rule::D1, Rule::D1]);
    }

    #[test]
    fn d2_fires_on_clock_and_entropy() {
        let r = lint("let t = Instant::now();\nlet s = SystemTime::now();\nlet g = thread_rng();");
        assert_eq!(rules(&r), vec![Rule::D2, Rule::D2, Rule::D2]);
        let bench = lint_source(
            "b.rs",
            "let t = Instant::now();",
            FileContext { allow_wall_clock: true, ..FileContext::default() },
        );
        assert!(bench.findings.is_empty(), "bench context waives D2");
    }

    #[test]
    fn d2_needs_the_now_call() {
        let r = lint("fn takes(i: Instant) {}");
        assert!(r.findings.is_empty(), "a bare Instant type is not a clock read");
    }

    #[test]
    fn n1_fires_only_in_numeric_core() {
        let src = "let x = b_e as f64; let y = t as usize;";
        assert_eq!(rules(&lint(src)), vec![Rule::N1, Rule::N1]);
        let outside =
            lint_source("o.rs", src, FileContext { numeric_core: false, ..FileContext::default() });
        assert!(outside.findings.is_empty());
    }

    #[test]
    fn n1_ignores_non_numeric_casts() {
        let r = lint("let x = e as &dyn Error; let y = v as Vec<u8>;");
        assert!(r.findings.is_empty(), "only numeric-type casts are N1: {:?}", r.findings);
    }

    #[test]
    fn f1_fires_on_literal_float_equality() {
        let r = lint("if std == 0.0 { } if 1.5 != x { } if a == b { }");
        assert_eq!(rules(&r), vec![Rule::F1, Rule::F1]);
    }

    #[test]
    fn p1_fires_on_panicking_calls() {
        let r = lint("let v = x.unwrap(); let w = y.expect(\"msg\"); panic!(\"boom\");");
        assert_eq!(rules(&r), vec![Rule::P1, Rule::P1, Rule::P1]);
    }

    #[test]
    fn p1_skips_tests_bins_and_lookalikes() {
        let r = lint("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }");
        assert!(r.findings.is_empty(), "test modules are exempt");
        let b = lint_source(
            "src/bin/cli.rs",
            "x.unwrap();",
            FileContext { allow_panics: true, ..FileContext::default() },
        );
        assert!(b.findings.is_empty(), "bin targets are exempt from P1");
        let ok = lint("let v = x.unwrap_or(0); let w = y.unwrap_or_else(f); debug_assert!(c);");
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }

    #[test]
    fn u1_flags_pub_fn_floats_and_exempts_restricted_visibility() {
        let r = lint("pub fn f(x: f64) {}\npub(crate) fn g(x: f64) {}\nfn h(x: f64) {}");
        assert_eq!(rules(&r), vec![Rule::U1]);
        let off = lint_source(
            "o.rs",
            "pub fn f(x: f64) {}",
            FileContext { units_core: false, ..FileContext::default() },
        );
        assert!(off.findings.is_empty(), "U1 is scoped to the unit-carrying crates");
    }

    #[test]
    fn u1_flags_raw_returns_but_not_typed_signatures() {
        let r = lint("pub fn headroom() -> f64 {\n    0.5\n}");
        assert_eq!(rules(&r), vec![Rule::U1]);
        let typed = lint("pub fn transfer(t: Secs, b: Bytes) -> BytesPerSec { b / t }");
        assert!(typed.findings.is_empty(), "{:?}", typed.findings);
        let body = lint("pub fn scale(t: Secs) -> Secs { let k: f64 = 2.0; t * k }");
        assert!(body.findings.is_empty(), "U1 inspects signatures, not bodies");
    }

    #[test]
    fn u1_exempts_the_dimensionless_vocabulary() {
        let ok = lint(
            "pub fn slowed(factor: f64) -> Secs { Secs::new(factor) }\n\
             pub fn compute_efficiency(f: Flops) -> f64 { 0.5 }\n\
             pub fn build(tp_speedup: f64, util: f64) -> Plan { Plan }",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        let bad = lint("pub fn slowed(factor: f64, budget: f64) -> Secs { Secs::new(factor) }");
        assert_eq!(rules(&bad), vec![Rule::U1], "a later non-vocab float still fires");
        let name_only = lint("pub fn utilization(x: f64) {}");
        assert_eq!(rules(&name_only), vec![Rule::U1], "vocab matches whole components only");
    }

    #[test]
    fn u2_flags_suffix_conflicts_between_binding_and_call() {
        let r = lint("let total_secs = kv_bytes(4096);");
        assert_eq!(rules(&r), vec![Rule::U2]);
        let m = lint("let mut peak_bytes = elapsed_secs();");
        assert_eq!(rules(&m), vec![Rule::U2]);
    }

    #[test]
    fn u2_allows_matching_or_undecidable_initializers() {
        let ok = lint(
            "let weights_bytes = param_bytes(12);\n\
             let plain = kv_bytes(1);\n\
             let t_secs = compute(kv_bytes(3));\n\
             let held_flops = layer_flops(2);",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }

    #[test]
    fn pragma_suppresses_and_is_counted() {
        let src =
            "// xlint::allow(D1, perf cache, order never escapes)\nuse std::collections::HashMap;";
        let r = lint(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "perf cache, order never escapes");
    }

    #[test]
    fn pragma_without_reason_or_target_is_x0() {
        let r = lint("// xlint::allow(D1)\nuse std::collections::HashMap;");
        assert_eq!(rules(&r), vec![Rule::X0, Rule::D1], "reasonless pragma suppresses nothing");
        let stale = lint("// xlint::allow(F1, stale)\nlet x = 1;");
        assert_eq!(rules(&stale), vec![Rule::X0]);
        let unknown = lint("// xlint::allow(Z9, reason)\nlet x = 1;");
        assert_eq!(rules(&unknown), vec![Rule::X0]);
    }

    #[test]
    fn pragma_on_same_line_works() {
        let src = "use std::collections::HashMap; // xlint::allow(D1, justified)";
        let r = lint(src);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed.len(), 1);
    }

    fn lint_in_crate(dir: &str, src: &str) -> FileReport {
        let ctx = FileContext {
            crate_idx: crate::workspace::crate_index_for_dir(dir),
            numeric_core: false,
            units_core: false,
            ..FileContext::default()
        };
        lint_source("t.rs", src, ctx)
    }

    #[test]
    fn l1_flags_upward_imports_and_allows_downward_ones() {
        let up = lint_in_crate("core", "use exegpt_fleet::Fleet;\nfn f() { exegpt_serve::go(); }");
        assert_eq!(rules(&up), vec![Rule::L1, Rule::L1], "{:?}", up.findings);
        let down = lint_in_crate("fleet", "use exegpt_serve::ServeLoop;\nuse exegpt::Engine;");
        assert!(down.findings.is_empty(), "{:?}", down.findings);
        let selfref = lint_in_crate("sim", "use exegpt_sim::Estimate;");
        assert!(selfref.findings.is_empty(), "self references are not edges");
    }

    #[test]
    fn l1_dedups_per_line_and_skips_tests_and_unscoped_files() {
        let same_line = lint_in_crate("sim", "use exegpt_workload::{a, b}; exegpt_workload::c();");
        assert_eq!(rules(&same_line), vec![Rule::L1], "same-line mentions collapse to one");
        let r = lint_in_crate("sim", "use exegpt_workload::a;\nexegpt_workload::c();");
        assert_eq!(rules(&r), vec![Rule::L1, Rule::L1], "one finding per line");
        let t = lint_in_crate("sim", "#[cfg(test)]\nmod tests { use exegpt_workload::W; }");
        assert!(t.findings.is_empty(), "dev-style upward imports in tests are fine");
        let unscoped = lint("use exegpt_fleet::Fleet;");
        assert!(unscoped.findings.is_empty(), "no crate identity, no L1");
    }

    #[test]
    fn p2_flags_discarded_local_results_and_must_use() {
        let src = "fn make() -> Result<u32, String> { Ok(1) }\n\
                   #[must_use]\nfn score() -> u32 { 7 }\n\
                   fn caller() {\n    let _ = make();\n    make();\n    let _ = score();\n}";
        let r = lint(src);
        assert_eq!(rules(&r), vec![Rule::P2, Rule::P2, Rule::P2], "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 5);
    }

    #[test]
    fn p2_allows_handled_bound_and_foreign_results() {
        let src = "fn make() -> Result<u32, String> { Ok(1) }\n\
                   struct S;\nimpl S { fn save(&self) -> Result<(), String> { Ok(()) } }\n\
                   fn caller(s: &S) -> Result<(), String> {\n\
                       let ok = make();\n\
                       drop(ok);\n\
                       make()?;\n\
                       if make().is_ok() {}\n\
                       let _ = make().ok();\n\
                       let _ = unknown_fn();\n\
                       let _ = writeln!(x, \"no\");\n\
                       s.save()\n}";
        let r = lint(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn p2_skips_ambiguous_same_named_fns() {
        // Two types each define `apply`; only one is fallible. Name-based
        // resolution cannot tell the call sites apart, so neither is flagged.
        let src = "struct A;\nimpl A { fn apply(&self) {} }\n\
                   struct B;\nimpl B { fn apply(&self) -> Result<(), String> { Ok(()) } }\n\
                   fn f(a: &A, b: &B) {\n    a.apply();\n    b.apply();\n}";
        let r = lint(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn p2_flags_bare_local_method_statements() {
        let src = "struct S;\nimpl S { fn save(&self) -> Result<(), String> { Ok(()) } }\n\
                   fn caller(s: &S) {\n    s.save();\n}";
        let r = lint(src);
        assert_eq!(rules(&r), vec![Rule::P2], "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 4);
    }

    #[test]
    fn p2_is_waived_with_panics_in_bins_and_bench() {
        let src = "fn make() -> Result<u32, String> { Ok(1) }\nfn m() { let _ = make(); }";
        let r = lint_source(
            "src/bin/cli.rs",
            src,
            FileContext { allow_panics: true, ..FileContext::default() },
        );
        assert!(r.findings.is_empty(), "bin targets may drop results deliberately");
    }

    #[test]
    fn p2_resolves_use_aliases() {
        let src = "mod inner { pub fn persist() -> Result<(), String> { Ok(()) } }\n\
                   use inner::persist as p2;\n\
                   fn caller() {\n    let _ = p2();\n}";
        let r = lint(src);
        assert_eq!(rules(&r), vec![Rule::P2], "aliased discard is caught: {:?}", r.findings);
        assert_eq!(r.findings[0].line, 4);
    }

    #[test]
    fn d4_catches_laundered_clock_flows_into_sinks() {
        // D2 fires on the source; D4 additionally fires on each sink the
        // tainted value reaches — even through intermediate bindings.
        let src = "fn f(s: &mut Sched, log: &mut Vec<E>) {\n\
                   let t0 = Instant::now();\n\
                   let stamp = t0;\n\
                   s.reschedule(stamp);\n\
                   log.push(stamp);\n}";
        let r = lint(src);
        let d4: Vec<usize> =
            r.findings.iter().filter(|f| f.rule == Rule::D4).map(|f| f.line).collect();
        assert_eq!(d4, vec![4, 5], "{:?}", r.findings);
    }

    #[test]
    fn d4_sinks_stay_guarded_under_the_bench_waiver() {
        let ctx = FileContext { allow_wall_clock: true, ..FileContext::default() };
        let src = "fn f(m: &Metrics) {\n    let dt = Instant::now();\n    \
                   self.metrics.observe(dt);\n}";
        let r = lint_source("crates/bench/src/x.rs", src, ctx);
        assert_eq!(rules(&r), vec![Rule::D4], "no D2 (waived), but the sink still fires");
    }

    #[test]
    fn d4_untainted_sinks_and_match_patterns_are_clean() {
        let src = "fn f(s: &mut Sched, log: &mut Vec<E>, cfg: u64) {\n\
                   s.reschedule(cfg);\n\
                   log.push(Event::Done { at: cfg });\n\
                   match e { Event::Done { at } => use_it(at), _ => {} }\n}";
        let r = lint(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d4_env_reads_flow_in_lib_but_not_bin_contexts() {
        let src = "fn f(s: &mut Sched) {\n    let v = env::var(\"LIMIT\");\n    \
                   s.schedule(v);\n}";
        assert_eq!(rules(&lint(src)), vec![Rule::D4], "lib: env is hidden nondeterminism");
        let bin = lint_source(
            "src/bin/cli.rs",
            src,
            FileContext { allow_panics: true, ..FileContext::default() },
        );
        assert!(bin.findings.is_empty(), "bin: env is an explicit invocation input");
    }

    #[test]
    fn u3_flags_cross_unit_reentry_but_not_round_trips() {
        let src = "fn f(t: Secs) -> Bytes {\n    let raw = t.as_secs();\n    Bytes::new(raw)\n}";
        let r = lint(src);
        assert_eq!(rules(&r), vec![Rule::U3], "{:?}", r.findings);
        assert!(r.findings[0].message.contains("secs-stripped"), "{}", r.findings[0].message);
        let suffix = lint(
            "fn s(kv_bytes: Bytes) -> Secs {\n    let raw = kv_bytes.as_f64();\n    \
                           Secs::new(raw)\n}",
        );
        assert_eq!(rules(&suffix), vec![Rule::U3], "suffix names the dimension for as_f64");
        let round = lint(
            "fn g(t: Secs) -> Secs {\n    let raw = t.as_secs();\n    \
                          Secs::new(raw)\n}",
        );
        assert!(round.findings.is_empty(), "same-unit round trip: {:?}", round.findings);
        let conv = lint(
            "fn h(t: Secs) -> Bytes {\n    let raw = convert::lossless_f64(t.as_secs());\n    \
             Bytes::new(raw)\n}",
        );
        assert!(conv.findings.is_empty(), "checked conversion launders: {:?}", conv.findings);
        let anon = lint(
            "fn a(b: Bytes) -> Secs {\n    let raw = b.as_f64();\n    \
                         Secs::new(raw)\n}",
        );
        assert!(anon.findings.is_empty(), "an unnamed dimension cannot witness a mismatch");
    }

    #[test]
    fn p3_flags_a_result_dropped_on_every_path() {
        let src = "fn make() -> Result<u32, String> { Ok(1) }\n\
                   fn f() {\n    let r = make();\n    other();\n}";
        let r = lint(src);
        assert_eq!(rules(&r), vec![Rule::P3], "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn p3_spares_any_downstream_consumption() {
        let src = "fn make() -> Result<u32, String> { Ok(1) }\n\
                   fn a() { let r = make(); if c { use_it(r); } }\n\
                   fn b() { let r = make(); match r { Ok(_) => {}, Err(_) => {} } }\n\
                   fn c() -> Result<u32, String> { let r = make(); r }\n\
                   fn d() { let r = make(); loop { if c { consume(r); break; } } }";
        let r = lint(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn d3_flags_concurrency_primitives_outside_audited_modules() {
        let src = "use std::thread;\nlet m = Mutex::new(1);\nlet l = RwLock::new(2);\n\
                   let a = AtomicUsize::new(0);";
        let r = lint(src);
        assert_eq!(rules(&r), vec![Rule::D3, Rule::D3, Rule::D3, Rule::D3], "{:?}", r.findings);
        let audited = lint_source(
            "crates/core/src/scheduler.rs",
            src,
            FileContext { audited_concurrency: true, ..FileContext::default() },
        );
        assert!(audited.findings.is_empty(), "audited pool modules may use them");
    }

    #[test]
    fn d3_restricts_relaxed_ordering_to_counters_even_when_audited() {
        let ctx = FileContext { audited_concurrency: true, ..FileContext::default() };
        let ok = lint_source(
            "crates/sim/src/cache.rs",
            "self.hits.fetch_add(1, Ordering::Relaxed);\n\
             let i = next.fetch_add(1, Ordering::Relaxed);",
            ctx,
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        let bad = lint_source(
            "crates/sim/src/cache.rs",
            "let ready = flag.load(Ordering::Relaxed);",
            ctx,
        );
        assert_eq!(rules(&bad), vec![Rule::D3], "non-counter Relaxed load is flagged");
        let cmp = lint("match a.cmp(&b) { Ordering::Less => {} _ => {} }");
        assert!(cmp.findings.is_empty(), "std::cmp::Ordering is untouched");
    }
}
