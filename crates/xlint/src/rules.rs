//! The lint rules and the token-stream matcher.
//!
//! Five rules, all motivated by keeping the scheduler's simulation
//! deterministic and its cost arithmetic auditable (DESIGN.md §6):
//!
//! * **D1** — no `HashMap`/`HashSet`: hash iteration order is
//!   nondeterministic and has leaked into ordered output before.
//! * **D2** — no wall-clock or entropy sources (`Instant::now`,
//!   `SystemTime`, `thread_rng`, `from_entropy`) outside `bench`.
//! * **N1** — no bare `as` numeric casts inside the cost-model/scheduler
//!   crates; use the checked helpers in `exegpt_dist::convert`.
//! * **F1** — no float `==`/`!=` (literal-adjacent detection).
//! * **P1** — no `unwrap`/`expect`/`panic!` in non-test library code.
//! * **U1** — no raw `f64`/`f32` parameters or returns in `pub fn`
//!   signatures of the unit-carrying crates (cost model + hardware
//!   model); use the `exegpt_units` newtypes (`Secs`, `Bytes`, ...).
//! * **U2** — a `let` binding named `*_bytes`/`*_secs`/`*_flops` must
//!   not be initialized from a call whose name carries a *different*
//!   unit suffix (e.g. `let total_secs = kv_bytes(...)`).

use crate::lexer::{self, Lexed, Tok, TokKind};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Nondeterministic hash collections.
    D1,
    /// Wall-clock / entropy sources.
    D2,
    /// Bare numeric `as` casts in numeric-core crates.
    N1,
    /// Float equality comparison.
    F1,
    /// Panicking calls in library code.
    P1,
    /// Raw float parameters/returns in public unit-carrying signatures.
    U1,
    /// Unit-suffix conflict between a binding and its initializer call.
    U2,
    /// Malformed or unused allow pragma.
    X0,
}

impl Rule {
    /// All reportable rules, in severity/display order.
    pub const ALL: [Rule; 8] =
        [Rule::D1, Rule::D2, Rule::N1, Rule::F1, Rule::P1, Rule::U1, Rule::U2, Rule::X0];

    /// The rule's stable identifier, as used in pragmas and output.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::N1 => "N1",
            Rule::F1 => "F1",
            Rule::P1 => "P1",
            Rule::U1 => "U1",
            Rule::U2 => "U2",
            Rule::X0 => "X0",
        }
    }

    /// Parses a rule id (as written in a pragma).
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }
}

/// What a file's crate context enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileContext {
    /// D2 is waived in `bench` (benchmarks legitimately read the clock).
    pub allow_wall_clock: bool,
    /// N1 fires only in the numeric-core crates (cost model + scheduler).
    pub numeric_core: bool,
    /// P1 is waived in binary targets (`src/bin/`, `main.rs`) and in the
    /// `bench` harness: top-level application code may terminate the
    /// process on unrecoverable errors.
    pub allow_panics: bool,
    /// U1 fires only in the unit-carrying crates (hardware + cost model),
    /// whose public signatures must use the `exegpt_units` newtypes.
    pub units_core: bool,
}

impl Default for FileContext {
    fn default() -> Self {
        Self { allow_wall_clock: false, numeric_core: true, allow_panics: false, units_core: true }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as reported (workspace-relative when walking a workspace).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found.
    pub message: String,
    /// The suggested fix.
    pub suggestion: String,
}

/// A pragma-suppressed finding (still counted and reported in summaries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The finding that the pragma silenced.
    pub finding: Finding,
    /// The pragma's reason text.
    pub reason: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations to report.
    pub findings: Vec<Finding>,
    /// Violations silenced by `xlint::allow` pragmas.
    pub suppressed: Vec<Suppressed>,
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Lints one source file given its crate context.
pub fn lint_source(file: &str, src: &str, ctx: FileContext) -> FileReport {
    let lexed: Lexed = lexer::lex(src);
    let in_test = lexer::test_regions(&lexed.toks);
    let toks = &lexed.toks;
    let mut raw: Vec<Finding> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                // D1: hash collections anywhere in non-test code.
                "HashMap" | "HashSet" => raw.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: Rule::D1,
                    message: format!("`{}` iterates in nondeterministic order", t.text),
                    suggestion: format!(
                        "use `BTree{}` (or justify with `// xlint::allow(D1, reason)`)",
                        t.text.trim_start_matches("Hash")
                    ),
                }),
                // D2: wall clock and entropy.
                "Instant" if !ctx.allow_wall_clock && next_is(toks, i, "::", "now") => {
                    raw.push(d2(file, t, "`Instant::now` reads the wall clock"))
                }
                "SystemTime" if !ctx.allow_wall_clock => {
                    raw.push(d2(file, t, "`SystemTime` reads the wall clock"))
                }
                "thread_rng" if !ctx.allow_wall_clock => {
                    raw.push(d2(file, t, "`thread_rng` draws OS entropy"))
                }
                "from_entropy" if !ctx.allow_wall_clock => {
                    raw.push(d2(file, t, "`from_entropy` seeds from OS entropy"))
                }
                // N1: bare numeric casts in the numeric core.
                "as" if ctx.numeric_core => {
                    if let Some(next) = toks.get(i + 1) {
                        if next.kind == TokKind::Ident
                            && NUMERIC_TYPES.contains(&next.text.as_str())
                        {
                            raw.push(Finding {
                                file: file.to_string(),
                                line: t.line,
                                rule: Rule::N1,
                                message: format!("bare `as {}` cast in cost arithmetic", next.text),
                                suggestion: "use the checked helpers in `exegpt_dist::convert` \
                                             (lossless_f64 / trunc_usize / ...)"
                                    .to_string(),
                            });
                        }
                    }
                }
                // P1: panicking calls in library code.
                "unwrap" | "expect" if !ctx.allow_panics && prev_is_dot(toks, i) => {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: Rule::P1,
                        message: format!("`.{}()` can panic in library code", t.text),
                        suggestion: "thread the crate's error type (`?`, `ok_or_else`) or \
                                     handle the `None`/`Err` arm"
                            .to_string(),
                    });
                }
                "panic" if !ctx.allow_panics && next_is_bang(toks, i) => {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: Rule::P1,
                        message: "`panic!` in library code".to_string(),
                        suggestion: "return an error variant instead (or `debug_assert!` for \
                                     internal invariants)"
                            .to_string(),
                    });
                }
                _ => {}
            },
            // F1: float equality (a float literal on either side).
            TokKind::Punct if t.text == "==" || t.text == "!=" => {
                let float_adjacent = matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Float)
                    || (i > 0 && toks[i - 1].kind == TokKind::Float);
                if float_adjacent {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: Rule::F1,
                        message: format!("float `{}` comparison", t.text),
                        suggestion: "compare with an epsilon (`(a - b).abs() < eps`), an \
                                     order test (`<= 0.0`), or an integer representation"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }

    if ctx.units_core {
        u1_scan(file, toks, &in_test, &mut raw);
    }
    u2_scan(file, toks, &in_test, &mut raw);

    apply_pragmas(file, raw, &lexed)
}

/// U1: `pub fn` signatures in unit-carrying crates must not take or
/// return raw `f64`/`f32` — dimensioned quantities go through the
/// `exegpt_units` newtypes. Restricted visibility (`pub(crate)` etc.) is
/// exempt: it is the sanctioned demotion for genuinely dimensionless
/// internals.
fn u1_scan(file: &str, toks: &[Tok], in_test: &[bool], raw: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if in_test.get(i).copied().unwrap_or(false)
            || !(toks[i].kind == TokKind::Ident && toks[i].text == "pub")
        {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` / `pub(in ...)`: skip the restriction
        // and the item it guards — U1 covers unrestricted `pub` only.
        if matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct && t.text == "(") {
            let mut depth = 1usize;
            j += 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        while matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern"))
        {
            j += 1;
        }
        if !matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident && t.text == "fn") {
            i += 1;
            continue;
        }
        let fn_line = toks[i].line;
        let fn_name = toks.get(j + 1).map(|t| t.text.as_str()).unwrap_or("?").to_string();
        // Scan the signature (params + return type) up to the body/`;`.
        j += 2;
        let mut depth = 0usize;
        while let Some(t) = toks.get(j) {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[") => depth += 1,
                (TokKind::Punct, ")" | "]") => depth = depth.saturating_sub(1),
                (TokKind::Punct, "{" | ";") if depth == 0 => break,
                (TokKind::Ident, "f64" | "f32") => {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: fn_line,
                        rule: Rule::U1,
                        message: format!("`pub fn {fn_name}` takes or returns raw `{}`", t.text),
                        suggestion: "use an `exegpt_units` newtype (`Secs`, `Bytes`, `Flops`, \
                                     a rate) or demote to `pub(crate)` if genuinely \
                                     dimensionless"
                            .to_string(),
                    });
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
}

/// The unit vocabulary U2 checks binding/callee names against.
fn unit_suffix(name: &str) -> Option<&'static str> {
    ["bytes", "secs", "flops"]
        .into_iter()
        .find(|s| name == *s || (name.ends_with(s) && name[..name.len() - s.len()].ends_with('_')))
}

/// U2: a `let` binding whose name carries a unit suffix must not be
/// initialized by a call whose name carries a *conflicting* suffix. Only
/// the first call of the initializer is inspected — deeper expressions
/// are beyond a token-level lint.
fn u2_scan(file: &str, toks: &[Tok], in_test: &[bool], raw: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if in_test.get(i).copied().unwrap_or(false)
            || !(toks[i].kind == TokKind::Ident && toks[i].text == "let")
        {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident && t.text == "mut") {
            j += 1;
        }
        let Some(bind) = toks.get(j) else { break };
        if bind.kind != TokKind::Ident {
            i = j + 1;
            continue;
        }
        let Some(bind_suffix) = unit_suffix(&bind.text) else {
            i = j + 1;
            continue;
        };
        let (bind_line, bind_name) = (bind.line, bind.text.clone());
        // Find the `=` that starts the initializer (depth 0, before `;`).
        j += 1;
        let mut depth = 0usize;
        let mut eq = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "=" if depth == 0 && t.kind == TokKind::Punct => {
                    eq = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i = j;
            continue;
        };
        // The first called name in the initializer decides.
        j = eq + 1;
        depth = 0;
        while let Some(t) = toks.get(j) {
            if t.kind == TokKind::Punct && t.text == ";" && depth == 0 {
                break;
            }
            if t.kind == TokKind::Ident
                && matches!(toks.get(j + 1), Some(n) if n.kind == TokKind::Punct && n.text == "(")
            {
                if let Some(call_suffix) = unit_suffix(&t.text) {
                    if call_suffix != bind_suffix {
                        raw.push(Finding {
                            file: file.to_string(),
                            line: bind_line,
                            rule: Rule::U2,
                            message: format!(
                                "`{bind_name}` (unit `{bind_suffix}`) initialized from \
                                 `{}(...)` (unit `{call_suffix}`)",
                                t.text
                            ),
                            suggestion: "rename the binding to match the quantity, or convert \
                                         explicitly through the `exegpt_units` accessors"
                                .to_string(),
                        });
                    }
                }
                break;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
}

/// Splits raw findings into reported vs pragma-suppressed, and reports
/// malformed or unused pragmas as X0 findings.
fn apply_pragmas(file: &str, raw: Vec<Finding>, lexed: &Lexed) -> FileReport {
    let mut report = FileReport::default();
    let mut used = vec![false; lexed.pragmas.len()];
    for f in raw {
        // A pragma suppresses matching findings on its own line or the
        // line directly below it (so it can sit above the offending line).
        let hit = lexed.pragmas.iter().enumerate().find(|(_, p)| {
            (p.line == f.line || p.line + 1 == f.line)
                && Rule::parse(&p.rule) == Some(f.rule)
                && !p.reason.is_empty()
        });
        match hit {
            Some((idx, p)) => {
                used[idx] = true;
                report.suppressed.push(Suppressed { finding: f, reason: p.reason.clone() });
            }
            None => report.findings.push(f),
        }
    }
    for (p, used) in lexed.pragmas.iter().zip(&used) {
        if p.reason.is_empty() {
            report.findings.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: Rule::X0,
                message: format!("`xlint::allow({})` without a reason", p.rule),
                suggestion: "write `// xlint::allow(RULE, why this is sound)`".to_string(),
            });
        } else if Rule::parse(&p.rule).is_none() {
            report.findings.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: Rule::X0,
                message: format!("`xlint::allow({})` names an unknown rule", p.rule),
                suggestion: "use one of D1, D2, N1, F1, P1, U1, U2".to_string(),
            });
        } else if !used {
            report.findings.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: Rule::X0,
                message: format!("`xlint::allow({})` suppresses nothing", p.rule),
                suggestion: "remove the stale pragma".to_string(),
            });
        }
    }
    report.findings.sort_by_key(|a| (a.line, a.rule));
    report
}

fn d2(file: &str, t: &Tok, message: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line: t.line,
        rule: Rule::D2,
        message: message.to_string(),
        suggestion: "simulated/virtual time and seeded RNGs only outside `bench` \
                     (determinism of replays and event logs)"
            .to_string(),
    }
}

/// Whether `toks[i]` is followed by `sep` then `ident`.
fn next_is(toks: &[Tok], i: usize, sep: &str, ident: &str) -> bool {
    matches!(
        (toks.get(i + 1), toks.get(i + 2)),
        (Some(a), Some(b))
            if a.kind == TokKind::Punct && a.text == sep
                && b.kind == TokKind::Ident && b.text == ident
    )
}

fn next_is_bang(toks: &[Tok], i: usize) -> bool {
    matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Punct && n.text == "!")
}

fn prev_is_dot(toks: &[Tok], i: usize) -> bool {
    i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "."
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> FileReport {
        lint_source("t.rs", src, FileContext::default())
    }

    fn rules(r: &FileReport) -> Vec<Rule> {
        r.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_fires_on_hash_collections() {
        let r = lint("use std::collections::HashMap;\nlet s: HashSet<u8> = HashSet::new();");
        assert_eq!(rules(&r), vec![Rule::D1, Rule::D1, Rule::D1]);
    }

    #[test]
    fn d2_fires_on_clock_and_entropy() {
        let r = lint("let t = Instant::now();\nlet s = SystemTime::now();\nlet g = thread_rng();");
        assert_eq!(rules(&r), vec![Rule::D2, Rule::D2, Rule::D2]);
        let bench = lint_source(
            "b.rs",
            "let t = Instant::now();",
            FileContext { allow_wall_clock: true, ..FileContext::default() },
        );
        assert!(bench.findings.is_empty(), "bench context waives D2");
    }

    #[test]
    fn d2_needs_the_now_call() {
        let r = lint("fn takes(i: Instant) {}");
        assert!(r.findings.is_empty(), "a bare Instant type is not a clock read");
    }

    #[test]
    fn n1_fires_only_in_numeric_core() {
        let src = "let x = b_e as f64; let y = t as usize;";
        assert_eq!(rules(&lint(src)), vec![Rule::N1, Rule::N1]);
        let outside =
            lint_source("o.rs", src, FileContext { numeric_core: false, ..FileContext::default() });
        assert!(outside.findings.is_empty());
    }

    #[test]
    fn n1_ignores_non_numeric_casts() {
        let r = lint("let x = e as &dyn Error; let y = v as Vec<u8>;");
        assert!(r.findings.is_empty(), "only numeric-type casts are N1: {:?}", r.findings);
    }

    #[test]
    fn f1_fires_on_literal_float_equality() {
        let r = lint("if std == 0.0 { } if 1.5 != x { } if a == b { }");
        assert_eq!(rules(&r), vec![Rule::F1, Rule::F1]);
    }

    #[test]
    fn p1_fires_on_panicking_calls() {
        let r = lint("let v = x.unwrap(); let w = y.expect(\"msg\"); panic!(\"boom\");");
        assert_eq!(rules(&r), vec![Rule::P1, Rule::P1, Rule::P1]);
    }

    #[test]
    fn p1_skips_tests_bins_and_lookalikes() {
        let r = lint("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }");
        assert!(r.findings.is_empty(), "test modules are exempt");
        let b = lint_source(
            "src/bin/cli.rs",
            "x.unwrap();",
            FileContext { allow_panics: true, ..FileContext::default() },
        );
        assert!(b.findings.is_empty(), "bin targets are exempt from P1");
        let ok = lint("let v = x.unwrap_or(0); let w = y.unwrap_or_else(f); debug_assert!(c);");
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }

    #[test]
    fn u1_flags_pub_fn_floats_and_exempts_restricted_visibility() {
        let r = lint("pub fn f(x: f64) {}\npub(crate) fn g(x: f64) {}\nfn h(x: f64) {}");
        assert_eq!(rules(&r), vec![Rule::U1]);
        let off = lint_source(
            "o.rs",
            "pub fn f(x: f64) {}",
            FileContext { units_core: false, ..FileContext::default() },
        );
        assert!(off.findings.is_empty(), "U1 is scoped to the unit-carrying crates");
    }

    #[test]
    fn u1_flags_raw_returns_but_not_typed_signatures() {
        let r = lint("pub fn ratio() -> f64 {\n    0.5\n}");
        assert_eq!(rules(&r), vec![Rule::U1]);
        let typed = lint("pub fn transfer(t: Secs, b: Bytes) -> BytesPerSec { b / t }");
        assert!(typed.findings.is_empty(), "{:?}", typed.findings);
        let body = lint("pub fn scale(t: Secs) -> Secs { let k: f64 = 2.0; t * k }");
        assert!(body.findings.is_empty(), "U1 inspects signatures, not bodies");
    }

    #[test]
    fn u2_flags_suffix_conflicts_between_binding_and_call() {
        let r = lint("let total_secs = kv_bytes(4096);");
        assert_eq!(rules(&r), vec![Rule::U2]);
        let m = lint("let mut peak_bytes = elapsed_secs();");
        assert_eq!(rules(&m), vec![Rule::U2]);
    }

    #[test]
    fn u2_allows_matching_or_undecidable_initializers() {
        let ok = lint(
            "let weights_bytes = param_bytes(12);\n\
             let plain = kv_bytes(1);\n\
             let t_secs = compute(kv_bytes(3));\n\
             let held_flops = layer_flops(2);",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }

    #[test]
    fn pragma_suppresses_and_is_counted() {
        let src =
            "// xlint::allow(D1, perf cache, order never escapes)\nuse std::collections::HashMap;";
        let r = lint(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "perf cache, order never escapes");
    }

    #[test]
    fn pragma_without_reason_or_target_is_x0() {
        let r = lint("// xlint::allow(D1)\nuse std::collections::HashMap;");
        assert_eq!(rules(&r), vec![Rule::X0, Rule::D1], "reasonless pragma suppresses nothing");
        let stale = lint("// xlint::allow(F1, stale)\nlet x = 1;");
        assert_eq!(rules(&stale), vec![Rule::X0]);
        let unknown = lint("// xlint::allow(Z9, reason)\nlet x = 1;");
        assert_eq!(rules(&unknown), vec![Rule::X0]);
    }

    #[test]
    fn pragma_on_same_line_works() {
        let src = "use std::collections::HashMap; // xlint::allow(D1, justified)";
        let r = lint(src);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed.len(), 1);
    }
}
