//! Forward worklist fixpoint over a fn body's CFG.
//!
//! State is a map from local binding name to [`TaintSet`]; the join is
//! pointwise set union. The lattice is finite (bindings are drawn from
//! the fn's tokens, marks from one `u16`), so the fixpoint terminates;
//! a hard iteration cap additionally bounds it on adversarial graphs.
//!
//! [`expr_taint`] is the shared expression evaluator: it unions the
//! taints of mentioned bindings, introduces source marks (clock /
//! entropy / env reads, unit-strip accessors), and clears strip marks
//! when the whole expression is a sanctioned conversion call — the
//! `exegpt_dist::convert` helpers or a unit constructor. Nondeterminism
//! marks are never cleared by anything.

use std::collections::BTreeMap;

use crate::cfg::{Cfg, Stmt, StmtKind};
use crate::lexer::{Tok, TokKind};
use crate::taint::{self, TaintSet};

/// Per-binding taint at a program point.
pub(crate) type State = BTreeMap<String, TaintSet>;

/// Knobs the linting context feeds into source detection.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlowConfig {
    /// Whether `env::var` reads count as a nondeterminism source. In
    /// binaries the environment is an explicit invocation input (like
    /// argv), so it is not treated as hidden nondeterminism there.
    pub env_source: bool,
}

/// Runs the fixpoint; returns the state at *entry* of every block.
/// Unreachable blocks get the empty state.
pub(crate) fn analyze(cfg: &Cfg, toks: &[Tok], fc: FlowConfig) -> Vec<State> {
    let n = cfg.blocks.len();
    let mut states: Vec<State> = vec![State::new(); n];
    // Every block is processed at least once (popping from the back
    // visits ENTRY first); after that, only on state changes.
    let mut on_list = vec![true; n];
    let mut worklist: Vec<usize> = (0..n).rev().collect();
    let cap = n.saturating_mul(64).saturating_add(1024);
    let mut iters = 0usize;
    while let Some(b) = worklist.pop() {
        on_list[b] = false;
        iters += 1;
        if iters > cap {
            break; // defensive: the lattice argument makes this unreachable
        }
        let mut s = states[b].clone();
        for stmt in &cfg.blocks[b].stmts {
            transfer(stmt, toks, &mut s, fc);
        }
        for &succ in &cfg.blocks[b].succs.clone() {
            if succ < n && join_into(&mut states[succ], &s) && !on_list[succ] {
                on_list[succ] = true;
                worklist.push(succ);
            }
        }
    }
    states
}

/// Pointwise join of `from` into `into`; true if `into` changed.
fn join_into(into: &mut State, from: &State) -> bool {
    let mut changed = false;
    for (k, &v) in from {
        let cur = into.get(k).copied().unwrap_or(TaintSet::EMPTY);
        let joined = cur.union(v);
        if joined != cur {
            into.insert(k.clone(), joined);
            changed = true;
        }
    }
    changed
}

/// Applies one statement's effect to the state.
pub(crate) fn transfer(stmt: &Stmt, toks: &[Tok], state: &mut State, fc: FlowConfig) {
    match &stmt.kind {
        StmtKind::Let { names, init_lo, init_hi } => {
            let t = if init_lo <= init_hi {
                expr_taint(toks, *init_lo, *init_hi, state, fc)
            } else {
                TaintSet::EMPTY
            };
            for n in names {
                state.insert(n.clone(), t);
            }
        }
        StmtKind::Assign { name, rhs_lo, rhs_hi, compound } => {
            let mut t = expr_taint(toks, *rhs_lo, *rhs_hi, state, fc);
            if *compound {
                t = t.union(state.get(name).copied().unwrap_or(TaintSet::EMPTY));
            }
            state.insert(name.clone(), t);
        }
        StmtKind::Cond { names, expr_lo, expr_hi } => {
            if !names.is_empty() {
                let t = expr_taint(toks, *expr_lo, *expr_hi, state, fc);
                for n in names {
                    state.insert(n.clone(), t);
                }
            }
        }
        StmtKind::Expr | StmtKind::Return => {}
    }
}

/// Abstract evaluation of `toks[lo..=hi]` under `state`.
pub(crate) fn expr_taint(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    state: &State,
    fc: FlowConfig,
) -> TaintSet {
    let hi = hi.min(toks.len().saturating_sub(1));
    if lo > hi || toks.is_empty() {
        return TaintSet::EMPTY;
    }
    let mut t = TaintSet::EMPTY;
    let mut j = lo;
    while j <= hi {
        let tok = &toks[j];
        if tok.kind == TokKind::Ident {
            let prev_path = j > 0
                && matches!(&toks[j - 1], p if p.kind == TokKind::Punct && (p.text == "." || p.text == "::"));
            // Mentioned binding: union its taint in.
            if !prev_path {
                if let Some(&vt) = state.get(&tok.text) {
                    t = t.union(vt);
                }
            }
            // Nondeterminism sources.
            match tok.text.as_str() {
                "Instant" | "SystemTime" if is_punct(toks, j + 1, "::") => {
                    t = t.union(TaintSet::CLOCK);
                }
                "thread_rng" | "from_entropy" => {
                    t = t.union(TaintSet::ENTROPY);
                }
                "var" | "var_os" | "vars"
                    if fc.env_source
                        && j >= 2
                        && is_punct(toks, j - 1, "::")
                        && matches!(&toks[j - 2], p if p.kind == TokKind::Ident && p.text == "env") =>
                {
                    t = t.union(TaintSet::ENV);
                }
                _ => {}
            }
            // Unit-strip accessors: `recv.as_secs()`, `recv.as_f64()`.
            if j > 0 && is_punct(toks, j - 1, ".") && is_punct(toks, j + 1, "(") {
                if let Some(stripped) = taint::stripped_unit(&tok.text) {
                    let mark = match stripped {
                        Some(u) => u.strip_mark(),
                        None => {
                            // Bare `.as_f64()`: the receiver's suffix may
                            // still name the dimension.
                            let recv_unit = (j >= 2)
                                .then(|| &toks[j - 2])
                                .filter(|r| r.kind == TokKind::Ident)
                                .and_then(|r| taint::unit_for_suffix(&r.text));
                            match recv_unit {
                                Some(u) => u.strip_mark(),
                                None => TaintSet::STRIP_ANY,
                            }
                        }
                    };
                    t = t.union(mark);
                }
            }
        }
        j += 1;
    }
    // If the whole expression is one sanctioned conversion call, its
    // result is dimensioned again: strip marks clear. Nondeterminism
    // marks always survive.
    if let Some(path) = outermost_call_path(toks, lo, hi) {
        let last = path.last().map(String::as_str).unwrap_or("");
        let is_ctor = path.len() >= 2
            && taint::unit_for_type(&path[path.len() - 2]).is_some()
            && taint::is_unit_ctor_method(last);
        if taint::is_convert_sanitizer(last) || is_ctor {
            t = t.minus(TaintSet::STRIP_ALL);
        }
    }
    t
}

/// If `toks[lo..=hi]` is exactly `seg(::seg)* ( ... )`, the path segments.
fn outermost_call_path(toks: &[Tok], lo: usize, hi: usize) -> Option<Vec<String>> {
    let mut segs = Vec::new();
    let mut j = lo;
    loop {
        let t = toks.get(j)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        segs.push(t.text.clone());
        j += 1;
        if is_punct(toks, j, "::") {
            j += 1;
            continue;
        }
        break;
    }
    if !is_punct(toks, j, "(") {
        return None;
    }
    // The call's closing paren must be the last token of the range.
    let mut depth = 0usize;
    let mut k = j;
    while k <= hi {
        let t = toks.get(k)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return (k == hi).then_some(segs);
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    None
}

fn is_punct(toks: &[Tok], i: usize, s: &str) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct && t.text == s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{self, ENTRY};
    use crate::lexer::lex;
    use crate::parser::{self, ItemKind};

    const FC: FlowConfig = FlowConfig { env_source: true };

    fn states_of(body: &str) -> (Vec<State>, Cfg, Vec<Tok>) {
        let src = format!("fn t() {{ {body} }}");
        let lexed = lex(&src);
        let items = parser::parse_items(&lexed.toks);
        let it = items.iter().find(|i| matches!(i.kind, ItemKind::Fn(_))).expect("fn");
        let (lo, hi) = cfg::body_range(&lexed.toks, it.start, it.end).expect("body");
        let g = cfg::build(&lexed.toks, lo, hi);
        let s = analyze(&g, &lexed.toks, FC);
        (s, g, lexed.toks)
    }

    /// The state *after* executing every statement of the entry block.
    fn exit_state_of(body: &str) -> State {
        let (states, g, toks) = states_of(body);
        let mut s = states[ENTRY].clone();
        for stmt in &g.blocks[ENTRY].stmts {
            transfer(stmt, &toks, &mut s, FC);
        }
        s
    }

    #[test]
    fn clock_source_propagates_through_bindings() {
        let s = exit_state_of("let t0 = Instant::now(); let d = t0.elapsed(); let x = d;");
        assert_eq!(s.get("t0"), Some(&TaintSet::CLOCK));
        assert_eq!(s.get("d"), Some(&TaintSet::CLOCK));
        assert_eq!(s.get("x"), Some(&TaintSet::CLOCK));
    }

    #[test]
    fn env_source_respects_the_config() {
        let s = exit_state_of("let v = env::var(\"X\");");
        assert_eq!(s.get("v"), Some(&TaintSet::ENV));
        let src = "fn t() { let v = env::var(\"X\"); }";
        let lexed = lex(src);
        let items = parser::parse_items(&lexed.toks);
        let it = &items[0];
        let (lo, hi) = cfg::body_range(&lexed.toks, it.start, it.end).unwrap();
        let g = cfg::build(&lexed.toks, lo, hi);
        let mut st = State::new();
        for stmt in &g.blocks[ENTRY].stmts {
            transfer(stmt, &lexed.toks, &mut st, FlowConfig { env_source: false });
        }
        assert_eq!(st.get("v"), Some(&TaintSet::EMPTY), "bins: env is explicit input");
    }

    #[test]
    fn strip_marks_name_the_dimension_and_ctors_launder() {
        let s = exit_state_of("let raw = budget.as_secs(); let again = Secs::new(raw);");
        assert_eq!(s.get("raw"), Some(&TaintSet::STRIP_SECS));
        assert_eq!(s.get("again"), Some(&TaintSet::EMPTY), "ctor re-dimensions");
    }

    #[test]
    fn as_f64_uses_the_receiver_suffix() {
        let s = exit_state_of("let a = kv_bytes.as_f64(); let b = thing.as_f64();");
        assert_eq!(s.get("a"), Some(&taint::Unit::Bytes.strip_mark()));
        assert_eq!(s.get("b"), Some(&TaintSet::STRIP_ANY));
    }

    #[test]
    fn sanitizers_clear_strips_but_never_clock() {
        let s = exit_state_of(
            "let raw = t.as_secs(); let ok = convert::round_usize(raw); \
             let bad = Instant::now(); let still = convert::round_usize(bad);",
        );
        assert_eq!(s.get("ok"), Some(&TaintSet::EMPTY));
        assert_eq!(s.get("still"), Some(&TaintSet::CLOCK), "nondet survives laundering");
    }

    #[test]
    fn branches_join_by_union() {
        let s = {
            let (states, g, toks) = states_of(
                "let mut x = 0.0; if c { x = Instant::now(); } else { x = y.as_secs(); } sink(x);",
            );
            // Find the join block: the one whose entry state has x joined.
            let mut best = TaintSet::EMPTY;
            for (bi, st) in states.iter().enumerate() {
                let _ = bi;
                if let Some(&v) = st.get("x") {
                    best = best.union(v);
                }
            }
            let _ = (g, toks);
            best
        };
        assert!(s.intersects(TaintSet::CLOCK) && s.intersects(TaintSet::STRIP_SECS), "{s:?}");
    }

    #[test]
    fn compound_assign_unions_the_old_value() {
        let s = exit_state_of("let mut acc = 0.0; let d = t.as_secs(); acc += d; acc = 0.0;");
        // The final strong update clears it again.
        assert_eq!(s.get("acc"), Some(&TaintSet::EMPTY));
        let s2 = exit_state_of("let mut acc = 0.0; let d = t.as_secs(); acc += d;");
        assert_eq!(s2.get("acc"), Some(&TaintSet::STRIP_SECS));
    }

    #[test]
    fn loop_fixpoint_terminates_and_propagates() {
        let (states, _, _) =
            states_of("let mut x = 0.0; loop { x = Instant::now(); if c { break; } } sink(x);");
        let joined =
            states.iter().filter_map(|st| st.get("x")).fold(TaintSet::EMPTY, |a, &b| a.union(b));
        assert!(joined.intersects(TaintSet::CLOCK));
    }
}
