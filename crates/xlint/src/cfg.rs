//! Statement-level control-flow graphs over `fn` bodies.
//!
//! The flow rules (D4/U3/P3) need more than a token scan: they must know
//! which statements can *follow* which. This module lowers a fn body's
//! token range into basic blocks of statements connected by successor
//! edges. It is deliberately conservative, not a full Rust parser:
//!
//! * `let` / assignment / expression / `return` statements are split at
//!   depth-0 `;` — a conditional *inside* an initializer
//!   (`let x = if c { a } else { b };`) stays one straight-line
//!   statement, which over-approximates the taint join of its arms;
//! * `if`/`else if`/`else`, `match` (arms as parallel blocks, pattern
//!   bindings modelled as bindings from the scrutinee), `loop`/`while`/
//!   `for` (with a back edge and a conservative exit edge), labeled and
//!   plain `break`/`continue`, `return` and `?` (an extra edge to the
//!   exit block) are lowered structurally;
//! * anything unrecognized degrades to a plain statement with
//!   fall-through — unknown syntax can hide flow, never invent it.
//!
//! Construction is bounded (recursion depth, strictly advancing cursor)
//! and panic-free on arbitrary token soup; a property test pins this.

use crate::lexer::{self, Tok, TokKind};
use crate::parser::{self, ItemKind};

/// Index of the entry block in [`Cfg::blocks`].
pub(crate) const ENTRY: usize = 0;
/// Index of the synthetic exit block (always empty, no successors).
pub(crate) const EXIT: usize = 1;

/// Bound on structural nesting; deeper constructs degrade to straight-line.
const MAX_DEPTH: usize = 64;

/// What a statement does to the abstract state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StmtKind {
    /// `let <pat> = <init>;` — binds `names` from the init range.
    Let {
        /// Identifiers bound by the pattern.
        names: Vec<String>,
        /// Token range of the initializer (inclusive; empty if lo > hi).
        init_lo: usize,
        /// End of the initializer range.
        init_hi: usize,
    },
    /// `name = rhs;` / `name += rhs;` — updates one binding.
    Assign {
        /// The assigned binding.
        name: String,
        /// Token range of the right-hand side (inclusive).
        rhs_lo: usize,
        /// End of the right-hand side range.
        rhs_hi: usize,
        /// Compound (`+=` etc.): the old value joins in.
        compound: bool,
    },
    /// A branch/loop condition or a match-arm pattern: may bind `names`
    /// from the scrutinee/iterator expression range.
    Cond {
        /// Identifiers bound (if-let / while-let / for / match arms).
        names: Vec<String>,
        /// Token range of the decided expression (inclusive).
        expr_lo: usize,
        /// End of the decided expression range.
        expr_hi: usize,
    },
    /// Any other expression statement.
    Expr,
    /// `return ...;` (the block edge to exit carries the control effect).
    Return,
}

/// One statement: its full token span and its abstract effect.
#[derive(Debug, Clone)]
pub(crate) struct Stmt {
    /// First token of the statement (absolute index).
    pub lo: usize,
    /// Last token of the statement (absolute index, inclusive).
    pub hi: usize,
    /// 1-based source line of the first token.
    pub line: usize,
    /// Abstract effect.
    pub kind: StmtKind,
}

/// A basic block: straight-line statements plus successor edges.
#[derive(Debug, Clone, Default)]
pub(crate) struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A fn body's control-flow graph. Block [`ENTRY`] is the entry,
/// [`EXIT`] the synthetic exit.
#[derive(Debug, Clone, Default)]
pub(crate) struct Cfg {
    /// All blocks; indices are stable.
    pub blocks: Vec<Block>,
}

/// An active loop during lowering: where `continue` and `break` go.
struct LoopCtx {
    label: Option<String>,
    head: usize,
    exit: usize,
}

struct Builder<'a> {
    toks: &'a [Tok],
    blocks: Vec<Block>,
    loops: Vec<LoopCtx>,
}

/// Lowers `toks[lo..hi]` (a fn body's interior, braces excluded) to a CFG.
pub(crate) fn build(toks: &[Tok], lo: usize, hi: usize) -> Cfg {
    let mut b =
        Builder { toks, blocks: vec![Block::default(), Block::default()], loops: Vec::new() };
    let last = b.lower(lo, hi.min(toks.len()), ENTRY, 0);
    b.edge(last, EXIT);
    Cfg { blocks: b.blocks }
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if let Some(b) = self.blocks.get_mut(from) {
            if !b.succs.contains(&to) {
                b.succs.push(to);
            }
        }
    }

    fn push(&mut self, block: usize, stmt: Stmt) {
        if let Some(b) = self.blocks.get_mut(block) {
            b.stmts.push(stmt);
        }
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Punct && t.text == s)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Ident && t.text == s)
    }

    fn line(&self, i: usize) -> usize {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Index of the token closing the brace opened at `open`, capped at
    /// `hi` (exclusive). Saturates to `hi - 1` on malformed input.
    fn close_brace(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < hi {
            if let Some(t) = self.toks.get(j) {
                if t.kind == TokKind::Punct {
                    if t.text == "{" {
                        depth += 1;
                    } else if t.text == "}" {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return j;
                        }
                    }
                }
            }
            j += 1;
        }
        hi.saturating_sub(1).max(open)
    }

    /// Index of the `;` ending the statement starting at `from` (all
    /// bracket kinds counted as depth), or the last token before `hi`.
    fn stmt_end(&self, from: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut j = from;
        while j < hi {
            if let Some(t) = self.toks.get(j) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        ";" if depth == 0 => return j,
                        _ => {}
                    }
                }
            }
            j += 1;
        }
        hi.saturating_sub(1).max(from)
    }

    /// Whether any token in `lo..=hi` is a `?` at any depth (an implicit
    /// early return on the error path).
    fn has_try(&self, lo: usize, hi: usize) -> bool {
        (lo..=hi.min(self.toks.len().saturating_sub(1))).any(
            |j| matches!(self.toks.get(j), Some(t) if t.kind == TokKind::Punct && t.text == "?"),
        )
    }

    /// After a `?`-bearing statement the error path leaves the fn: split
    /// the block with edges to both the continuation and the exit.
    fn split_for_try(&mut self, cur: usize) -> usize {
        let next = self.new_block();
        self.edge(cur, next);
        self.edge(cur, EXIT);
        next
    }

    /// Identifiers bound by a pattern in `lo..hi` (exclusive): lowercase-
    /// or `_`-prefixed idents (variants and types are capitalized in all
    /// linted code), keywords and the wildcard excluded.
    fn pattern_names(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut names = Vec::new();
        for j in lo..hi.min(self.toks.len()) {
            let t = &self.toks[j];
            if t.kind != TokKind::Ident {
                continue;
            }
            let first = t.text.chars().next().unwrap_or('A');
            if !(first.is_lowercase() || first == '_') || t.text == "_" {
                continue;
            }
            if matches!(t.text.as_str(), "mut" | "ref" | "box" | "in" | "if" | "as") {
                continue;
            }
            if !names.contains(&t.text) {
                names.push(t.text.clone());
            }
        }
        names
    }

    /// Lowers `toks[i..hi]` starting in block `cur`; returns the block
    /// that is open when the range ends (always a valid block — code
    /// after a diverging statement lands in a fresh predecessor-less
    /// block, which the fixpoint simply never reaches).
    fn lower(&mut self, mut i: usize, hi: usize, mut cur: usize, depth: usize) -> usize {
        let hi = hi.min(self.toks.len());
        if depth > MAX_DEPTH {
            // Too deep: degrade the whole range to one opaque statement.
            if i < hi {
                self.push(
                    cur,
                    Stmt { lo: i, hi: hi - 1, line: self.line(i), kind: StmtKind::Expr },
                );
            }
            return cur;
        }
        while i < hi {
            let t = &self.toks[i];
            // Skip separators and attributes outliving the parser.
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | ",") {
                i += 1;
                continue;
            }
            // Bare / unsafe / async block: same flow, recursed.
            if t.kind == TokKind::Punct && t.text == "{" {
                let close = self.close_brace(i, hi);
                cur = self.lower(i + 1, close, cur, depth + 1);
                i = close + 1;
                continue;
            }
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "unsafe" | "async")
                && self.is_punct(i + 1, "{")
            {
                i += 1;
                continue;
            }
            // Loop label: 'name : loop/while/for.
            if t.kind == TokKind::Lifetime && self.is_punct(i + 1, ":") {
                let label = Some(t.text.trim_start_matches('\'').to_string());
                if self.toks.get(i + 2).is_some_and(|k| {
                    k.kind == TokKind::Ident && matches!(k.text.as_str(), "loop" | "while" | "for")
                }) {
                    let (ni, nc) = self.lower_loop(i + 2, hi, cur, depth, label);
                    i = ni.max(i + 3);
                    cur = nc;
                    continue;
                }
                i += 2;
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "let" => {
                        i = self.lower_let(i, hi, &mut cur);
                        continue;
                    }
                    "return" => {
                        let end = self.stmt_end(i, hi);
                        self.push(
                            cur,
                            Stmt { lo: i, hi: end, line: t.line, kind: StmtKind::Return },
                        );
                        self.edge(cur, EXIT);
                        cur = self.new_block();
                        i = end + 1;
                        continue;
                    }
                    "break" | "continue" => {
                        let is_break = t.text == "break";
                        let label = match self.toks.get(i + 1) {
                            Some(l) if l.kind == TokKind::Lifetime => {
                                Some(l.text.trim_start_matches('\'').to_string())
                            }
                            _ => None,
                        };
                        let end = self.stmt_end(i, hi);
                        self.push(cur, Stmt { lo: i, hi: end, line: t.line, kind: StmtKind::Expr });
                        let target = self
                            .loops
                            .iter()
                            .rev()
                            .find(|c| label.is_none() || c.label == label)
                            .map(|c| if is_break { c.exit } else { c.head })
                            .unwrap_or(EXIT);
                        self.edge(cur, target);
                        cur = self.new_block();
                        i = end + 1;
                        continue;
                    }
                    "if" => {
                        let (ni, nc) = self.lower_if(i, hi, cur, depth);
                        i = ni.max(i + 1);
                        cur = nc;
                        continue;
                    }
                    "match" => {
                        let (ni, nc) = self.lower_match(i, hi, cur, depth);
                        i = ni.max(i + 1);
                        cur = nc;
                        continue;
                    }
                    "loop" | "while" | "for" => {
                        let (ni, nc) = self.lower_loop(i, hi, cur, depth, None);
                        i = ni.max(i + 1);
                        cur = nc;
                        continue;
                    }
                    _ => {}
                }
            }
            // Generic statement: assignment or plain expression.
            let end = self.stmt_end(i, hi);
            let kind = self.classify_assign(i, end);
            let has_try = self.has_try(i, end);
            self.push(cur, Stmt { lo: i, hi: end, line: t.line, kind });
            if has_try {
                cur = self.split_for_try(cur);
            }
            i = end + 1;
        }
        cur
    }

    /// `name = rhs` / `name <op>= rhs` at statement position.
    fn classify_assign(&self, lo: usize, hi: usize) -> StmtKind {
        if !matches!(self.toks.get(lo), Some(t) if t.kind == TokKind::Ident) {
            return StmtKind::Expr;
        }
        let name = self.toks[lo].text.clone();
        if self.is_punct(lo + 1, "=") && lo + 2 <= hi {
            return StmtKind::Assign { name, rhs_lo: lo + 2, rhs_hi: hi, compound: false };
        }
        let op = matches!(self.toks.get(lo + 1),
            Some(t) if t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"));
        if op && self.is_punct(lo + 2, "=") && lo + 3 <= hi {
            return StmtKind::Assign { name, rhs_lo: lo + 3, rhs_hi: hi, compound: true };
        }
        StmtKind::Expr
    }

    /// `let <pat>[: ty] = <init>;` — returns the index after the statement.
    fn lower_let(&mut self, i: usize, hi: usize, cur: &mut usize) -> usize {
        let line = self.line(i);
        // Scan the pattern to the depth-0 `=` (or `;` for `let x;`),
        // collecting binding names until a depth-0 `:` opens the type.
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut pat_hi = j;
        let mut eq = None;
        let mut in_type = false;
        let mut names = Vec::new();
        while j < hi {
            let t = &self.toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "=" if depth == 0 => {
                        eq = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    ":" if depth == 0 => in_type = true,
                    _ => {}
                }
            }
            if !in_type {
                pat_hi = j + 1;
            }
            j += 1;
        }
        for n in self.pattern_names(i + 1, pat_hi) {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        let Some(eq) = eq else {
            // `let x;` — an empty initializer binds nothing trackable.
            let end = self.stmt_end(i, hi);
            self.push(
                *cur,
                Stmt {
                    lo: i,
                    hi: end,
                    line,
                    kind: StmtKind::Let { names, init_lo: 1, init_hi: 0 },
                },
            );
            return end + 1;
        };
        let end = self.stmt_end(eq + 1, hi);
        let init_hi = if end > eq && self.is_punct(end, ";") { end - 1 } else { end };
        let has_try = self.has_try(i, end);
        self.push(
            *cur,
            Stmt { lo: i, hi: end, line, kind: StmtKind::Let { names, init_lo: eq + 1, init_hi } },
        );
        if has_try {
            *cur = self.split_for_try(*cur);
        }
        end + 1
    }

    /// `if [let <pat> =] <cond> { .. } [else if .. | else { .. }]`.
    /// Returns (index after the construct, the join block).
    fn lower_if(
        &mut self,
        mut i: usize,
        hi: usize,
        mut cur: usize,
        depth: usize,
    ) -> (usize, usize) {
        let join = self.new_block();
        loop {
            // i is at `if`.
            let mut j = i + 1;
            let mut names = Vec::new();
            if self.is_ident(j, "let") {
                // Pattern up to the depth-0 `=`.
                let mut d = 0usize;
                let pat_lo = j + 1;
                let mut k = pat_lo;
                while k < hi {
                    let t = &self.toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" => d += 1,
                            ")" | "]" => d = d.saturating_sub(1),
                            "=" if d == 0 => break,
                            "{" if d == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                names = self.pattern_names(pat_lo, k);
                j = if self.is_punct(k, "=") { k + 1 } else { k };
            }
            // Condition up to the depth-0 `{`.
            let cond_lo = j;
            let mut d = 0usize;
            let mut open = j;
            while open < hi {
                let t = &self.toks[open];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => d += 1,
                        ")" | "]" => d = d.saturating_sub(1),
                        "{" if d == 0 => break,
                        ";" if d == 0 => break,
                        _ => {}
                    }
                }
                open += 1;
            }
            let cond_hi = open.saturating_sub(1).max(cond_lo);
            self.push(
                cur,
                Stmt {
                    lo: i,
                    hi: cond_hi,
                    line: self.line(i),
                    kind: StmtKind::Cond { names, expr_lo: cond_lo, expr_hi: cond_hi },
                },
            );
            if self.has_try(cond_lo, cond_hi) {
                self.edge(cur, EXIT);
            }
            if !self.is_punct(open, "{") {
                // Malformed: fall through.
                self.edge(cur, join);
                return (open + 1, join);
            }
            let close = self.close_brace(open, hi);
            let then_blk = self.new_block();
            self.edge(cur, then_blk);
            let then_end = self.lower(open + 1, close, then_blk, depth + 1);
            self.edge(then_end, join);
            i = close + 1;
            if self.is_ident(i, "else") {
                if self.is_ident(i + 1, "if") {
                    let chain = self.new_block();
                    self.edge(cur, chain);
                    cur = chain;
                    i += 1;
                    continue;
                }
                if self.is_punct(i + 1, "{") {
                    let eclose = self.close_brace(i + 1, hi);
                    let else_blk = self.new_block();
                    self.edge(cur, else_blk);
                    let else_end = self.lower(i + 2, eclose, else_blk, depth + 1);
                    self.edge(else_end, join);
                    return (eclose + 1, join);
                }
            }
            // No else: the false path falls through.
            self.edge(cur, join);
            return (i, join);
        }
    }

    /// `match <scrutinee> { <pat> => <body>, ... }` — each arm is a
    /// parallel block whose pattern binds from the scrutinee.
    fn lower_match(&mut self, i: usize, hi: usize, cur: usize, depth: usize) -> (usize, usize) {
        let scrut_lo = i + 1;
        let mut d = 0usize;
        let mut open = scrut_lo;
        while open < hi {
            let t = &self.toks[open];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => d += 1,
                    ")" | "]" => d = d.saturating_sub(1),
                    "{" if d == 0 => break,
                    ";" if d == 0 => break,
                    _ => {}
                }
            }
            open += 1;
        }
        let scrut_hi = open.saturating_sub(1).max(scrut_lo);
        self.push(
            cur,
            Stmt {
                lo: i,
                hi: scrut_hi,
                line: self.line(i),
                kind: StmtKind::Cond { names: Vec::new(), expr_lo: scrut_lo, expr_hi: scrut_hi },
            },
        );
        if self.has_try(scrut_lo, scrut_hi) {
            self.edge(cur, EXIT);
        }
        let join = self.new_block();
        if !self.is_punct(open, "{") {
            self.edge(cur, join);
            return (open + 1, join);
        }
        let close = self.close_brace(open, hi);
        let mut j = open + 1;
        let mut arms = 0usize;
        while j < close {
            // Pattern (with optional guard) up to the depth-0 `=>`.
            let pat_lo = j;
            let mut d = 0usize;
            let mut arrow = j;
            while arrow < close {
                let t = &self.toks[arrow];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d = d.saturating_sub(1),
                        "=>" if d == 0 => break,
                        _ => {}
                    }
                }
                arrow += 1;
            }
            if arrow >= close {
                break;
            }
            let names = self.pattern_names(pat_lo, arrow);
            let arm_blk = self.new_block();
            self.edge(cur, arm_blk);
            let pat_hi = arrow.saturating_sub(1).max(pat_lo);
            self.push(
                arm_blk,
                Stmt {
                    lo: pat_lo,
                    hi: pat_hi,
                    line: self.line(pat_lo),
                    kind: StmtKind::Cond { names, expr_lo: scrut_lo, expr_hi: scrut_hi },
                },
            );
            // Arm body: a block, or an expression up to the depth-0 `,`.
            let body_lo = arrow + 1;
            let body_hi;
            if self.is_punct(body_lo, "{") {
                let bclose = self.close_brace(body_lo, close);
                let end = self.lower(body_lo + 1, bclose, arm_blk, depth + 1);
                self.edge(end, join);
                body_hi = bclose;
            } else {
                let mut d = 0usize;
                let mut k = body_lo;
                while k < close {
                    let t = &self.toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => d += 1,
                            ")" | "]" | "}" => d = d.saturating_sub(1),
                            "," if d == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                let end = self.lower(body_lo, k, arm_blk, depth + 1);
                self.edge(end, join);
                body_hi = k;
            }
            arms += 1;
            j = (body_hi + 1).max(j + 1);
        }
        if arms == 0 {
            self.edge(cur, join);
        }
        (close + 1, join)
    }

    /// `loop { .. }` / `while [let] <cond> { .. }` / `for <pat> in <iter>
    /// { .. }` — head block with a back edge and a conservative exit edge.
    fn lower_loop(
        &mut self,
        i: usize,
        hi: usize,
        cur: usize,
        depth: usize,
        label: Option<String>,
    ) -> (usize, usize) {
        let kw = self.toks.get(i).map(|t| t.text.clone()).unwrap_or_default();
        let head = self.new_block();
        self.edge(cur, head);
        let join = self.new_block();
        // Header: find the body `{`, emitting a Cond for while/for.
        let mut j = i + 1;
        let mut names = Vec::new();
        let mut expr_lo = j;
        if kw == "while" && self.is_ident(j, "let") {
            let pat_lo = j + 1;
            let mut d = 0usize;
            let mut k = pat_lo;
            while k < hi {
                let t = &self.toks[k];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => d += 1,
                        ")" | "]" => d = d.saturating_sub(1),
                        "=" if d == 0 => break,
                        "{" if d == 0 => break,
                        _ => {}
                    }
                }
                k += 1;
            }
            names = self.pattern_names(pat_lo, k);
            j = if self.is_punct(k, "=") { k + 1 } else { k };
            expr_lo = j;
        } else if kw == "for" {
            let pat_lo = j;
            let mut k = j;
            while k < hi && !self.is_ident(k, "in") && !self.is_punct(k, "{") {
                k += 1;
            }
            names = self.pattern_names(pat_lo, k);
            j = if self.is_ident(k, "in") { k + 1 } else { k };
            expr_lo = j;
        }
        let mut d = 0usize;
        let mut open = j;
        while open < hi {
            let t = &self.toks[open];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => d += 1,
                    ")" | "]" => d = d.saturating_sub(1),
                    "{" if d == 0 => break,
                    ";" if d == 0 => break,
                    _ => {}
                }
            }
            open += 1;
        }
        if kw != "loop" {
            let expr_hi = open.saturating_sub(1).max(expr_lo);
            self.push(
                head,
                Stmt {
                    lo: i,
                    hi: expr_hi,
                    line: self.line(i),
                    kind: StmtKind::Cond { names, expr_lo, expr_hi },
                },
            );
            if self.has_try(expr_lo, expr_hi) {
                self.edge(head, EXIT);
            }
        }
        if !self.is_punct(open, "{") {
            self.edge(head, join);
            return (open + 1, join);
        }
        let close = self.close_brace(open, hi);
        self.loops.push(LoopCtx { label, head, exit: join });
        let body_blk = self.new_block();
        self.edge(head, body_blk);
        let body_end = self.lower(open + 1, close, body_blk, depth + 1);
        self.edge(body_end, head);
        self.loops.pop();
        // Conservative: every loop may run zero times / terminate.
        self.edge(head, join);
        (close + 1, join)
    }
}

/// Renders a CFG as a stable, diffable text dump (golden tests).
pub(crate) fn render(cfg: &Cfg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let tag = match bi {
            ENTRY => " (entry)",
            EXIT => " (exit)",
            _ => "",
        };
        let _ = writeln!(out, "b{bi}{tag}:");
        for s in &block.stmts {
            let desc = match &s.kind {
                StmtKind::Let { names, .. } => format!("let {}", render_names(names)),
                StmtKind::Assign { name, compound, .. } => {
                    format!("assign{} {name}", if *compound { "(op)" } else { "" })
                }
                StmtKind::Cond { names, .. } if names.is_empty() => "cond".to_string(),
                StmtKind::Cond { names, .. } => format!("cond bind {}", render_names(names)),
                StmtKind::Expr => "expr".to_string(),
                StmtKind::Return => "return".to_string(),
            };
            let _ = writeln!(out, "  L{} {desc}", s.line);
        }
        let succs: Vec<String> = block.succs.iter().map(|s| format!("b{s}")).collect();
        let _ = writeln!(
            out,
            "  -> {}",
            if succs.is_empty() { "∅".to_string() } else { succs.join(" ") }
        );
    }
    out
}

fn render_names(names: &[String]) -> String {
    if names.is_empty() {
        "_".to_string()
    } else {
        names.join(", ")
    }
}

/// Lexes `src`, builds a CFG for every `fn` item, and renders them all —
/// the public golden-dump entry point for tests and debugging.
pub fn dump_source(src: &str) -> String {
    use std::fmt::Write as _;
    let lexed = lexer::lex(src);
    let items = parser::parse_items(&lexed.toks);
    let mut out = String::new();
    for it in &items {
        let ItemKind::Fn(_) = it.kind else { continue };
        let Some((body_lo, body_hi)) = body_range(&lexed.toks, it.start, it.end) else { continue };
        let cfg = build(&lexed.toks, body_lo, body_hi);
        let _ = writeln!(out, "fn {}:", it.name);
        for line in render(&cfg).lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

/// The interior token range of a fn item's body: the first depth-0 `{`
/// between `start` and `end` opens it; `end` closes it. `None` for
/// bodyless declarations (`fn f();` in traits).
pub(crate) fn body_range(toks: &[Tok], start: usize, end: usize) -> Option<(usize, usize)> {
    if !matches!(toks.get(end), Some(t) if t.kind == TokKind::Punct && t.text == "}") {
        return None;
    }
    let mut depth = 0usize;
    let mut j = start;
    while j < end {
        let t = toks.get(j)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => return Some((j + 1, end)),
                _ => {}
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("fn t() {{ {body} }}");
        let lexed = lex(&src);
        let items = parser::parse_items(&lexed.toks);
        let it = items.iter().find(|i| matches!(i.kind, ItemKind::Fn(_))).expect("fn parsed");
        let (lo, hi) = body_range(&lexed.toks, it.start, it.end).expect("body");
        build(&lexed.toks, lo, hi)
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of("let a = 1; let b = a + 2; use_it(b);");
        assert_eq!(cfg.blocks[ENTRY].stmts.len(), 3);
        assert_eq!(cfg.blocks[ENTRY].succs, vec![EXIT]);
        match &cfg.blocks[ENTRY].stmts[0].kind {
            StmtKind::Let { names, .. } => assert_eq!(names, &["a".to_string()]),
            k => panic!("expected let, got {k:?}"),
        }
    }

    #[test]
    fn if_else_diamonds_join() {
        let cfg = cfg_of("let a = 1; if c { f(a); } else { g(a); } h();");
        // entry(cond) -> then, else; both -> join -> exit.
        let entry = &cfg.blocks[ENTRY];
        assert_eq!(entry.succs.len(), 2, "{cfg:?}");
        assert!(matches!(entry.stmts.last().map(|s| &s.kind), Some(StmtKind::Cond { .. })));
        let join = entry
            .succs
            .iter()
            .map(|&s| &cfg.blocks[s])
            .flat_map(|b| b.succs.clone())
            .collect::<Vec<_>>();
        assert!(join.windows(2).all(|w| w[0] == w[1]), "both arms join: {cfg:?}");
    }

    #[test]
    fn return_edges_to_exit_and_question_splits() {
        let cfg = cfg_of("if c { return; } let v = fallible()?; use_it(v);");
        let to_exit = cfg.blocks.iter().filter(|b| b.succs.contains(&EXIT)).count();
        assert!(to_exit >= 2, "return and ? both reach exit: {cfg:?}");
    }

    #[test]
    fn loops_have_back_edges() {
        let cfg = cfg_of("while cond { body(); } after();");
        let has_cycle = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(bi, b)| b.succs.iter().any(|&s| s <= bi && s != EXIT && s != ENTRY));
        assert!(has_cycle, "loop produces a back edge: {cfg:?}");
    }

    #[test]
    fn match_arms_bind_from_the_scrutinee() {
        let cfg = cfg_of("match probe() { Some(x) => use_it(x), None => {} }");
        let binds: Vec<&StmtKind> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter().map(|s| &s.kind))
            .filter(|k| matches!(k, StmtKind::Cond { names, .. } if !names.is_empty()))
            .collect();
        assert_eq!(binds.len(), 1, "{cfg:?}");
        match binds[0] {
            StmtKind::Cond { names, .. } => assert_eq!(names, &["x".to_string()]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn labeled_break_targets_the_outer_loop() {
        let cfg = cfg_of("'outer: loop { loop { break 'outer; } } after();");
        // The inner break must reach a block that is NOT the inner loop's
        // join; structurally we just require the dump to be stable and the
        // graph to terminate at exit.
        assert!(cfg.blocks.iter().any(|b| b.succs.contains(&EXIT)));
    }

    #[test]
    fn builder_survives_soup() {
        for body in
            ["if { { {", "match ) => ,", "let = = ;", "} } }", "for in in {", "'a: 'b: loop"]
        {
            let _ = cfg_of(body);
        }
        let _ = dump_source("fn (");
        let _ = dump_source("");
    }

    #[test]
    fn dump_is_stable() {
        let src = "fn f() { if a { g(); } }";
        assert_eq!(dump_source(src), dump_source(src));
        assert!(dump_source(src).contains("fn f:"));
    }
}
