//! A minimal Rust lexer for lint-grade token scanning.
//!
//! The lexer strips comments and string/char literals (their contents can
//! never trigger a rule), keeps line numbers, and collects
//! `// xlint::allow(RULE, reason)` pragmas from the comments it strips.
//! It is *not* a full Rust lexer — it only needs to be faithful enough
//! that identifier/operator/literal boundaries and test-region detection
//! are correct on well-formed Rust source.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `fn`, `HashMap`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`0.5`, `1e-3`, `2f64`).
    Float,
    /// A string/char/byte literal (contents dropped).
    Literal,
    /// A lifetime (`'a`) — kept distinct so it never looks like a char.
    Lifetime,
    /// Operator or punctuation; two-char operators (`==`, `!=`, `::`,
    /// `->`, `=>`, `<=`, `>=`, `&&`, `||`) arrive as one token.
    Punct,
}

/// One lexed token: kind, verbatim text (empty for [`TokKind::Literal`])
/// and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Verbatim text; literals are reduced to an empty placeholder.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// An `// xlint::allow(RULE, reason)` pragma collected during lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// The rule id it suppresses (as written, e.g. `D1`).
    pub rule: String,
    /// The mandatory human reason; empty when the author omitted it
    /// (reported as a malformed pragma).
    pub reason: String,
}

/// Lexer output: the token stream plus the pragmas found in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Allow-pragmas in source order.
    pub pragmas: Vec<Pragma>,
}

/// Lexes `src`, stripping comments/literals and collecting pragmas.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();

    let two_char_ops = ["==", "!=", "::", "->", "=>", "<=", ">=", "&&", "||", ".."];

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments) — scan for a pragma, then skip.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            let comment: String = bytes[start..i].iter().collect();
            if let Some(p) = parse_pragma(&comment, line) {
                out.pragmas.push(p);
            }
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings r"..." / r#"..."# (and br variants).
        if (c == 'r' || c == 'b') && is_raw_string_start(&bytes, i) {
            let (ni, nl) = skip_raw_string(&bytes, i, line);
            out.toks.push(Tok { kind: TokKind::Literal, text: String::new(), line });
            i = ni;
            line = nl;
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let start_line = line;
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                match bytes[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.toks.push(Tok { kind: TokKind::Literal, text: String::new(), line: start_line });
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            if is_lifetime(&bytes, i) {
                let start = i;
                i += 1;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.toks.push(Tok { kind: TokKind::Lifetime, text, line });
                continue;
            }
            // Char literal: 'x', '\n', '\u{1F600}'.
            i += 1;
            while i < n {
                match bytes[i] {
                    '\\' => i += 2,
                    '\'' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.toks.push(Tok { kind: TokKind::Literal, text: String::new(), line });
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            out.toks.push(Tok { kind: TokKind::Ident, text, line });
            continue;
        }
        // Number: int or float.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            let hex = c == '0' && i + 1 < n && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X');
            i += 1;
            while i < n {
                let d = bytes[i];
                if d.is_ascii_alphanumeric() || d == '_' {
                    if !hex && (d == 'e' || d == 'E') {
                        // Exponent only when followed by a digit or sign+digit.
                        let sign = i + 1 < n && (bytes[i + 1] == '+' || bytes[i + 1] == '-');
                        let digit_at = if sign { i + 2 } else { i + 1 };
                        if digit_at < n && bytes[digit_at].is_ascii_digit() {
                            is_float = true;
                            i = digit_at + 1;
                            continue;
                        }
                    }
                    i += 1;
                } else if d == '.'
                    && !hex
                    && !is_float
                    && i + 1 < n
                    && (bytes[i + 1].is_ascii_digit()
                        || !(bytes[i + 1].is_alphanumeric()
                            || bytes[i + 1] == '_'
                            || bytes[i + 1] == '.'))
                {
                    // `1.5` or trailing `1.` — but not `1..x` or `1.max()`.
                    is_float = true;
                    i += 1;
                } else {
                    break;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            if text.contains("f32") || text.contains("f64") {
                is_float = true;
            }
            let kind = if is_float { TokKind::Float } else { TokKind::Int };
            out.toks.push(Tok { kind, text, line });
            continue;
        }
        // Operators and punctuation.
        if i + 1 < n {
            let pair: String = [c, bytes[i + 1]].iter().collect();
            if two_char_ops.contains(&pair.as_str()) {
                out.toks.push(Tok { kind: TokKind::Punct, text: pair, line });
                i += 2;
                continue;
            }
        }
        out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

/// Parses `// xlint::allow(RULE, reason)` (leading `/` and `!` noise from
/// doc comments tolerated). Returns `None` for ordinary comments.
fn parse_pragma(comment: &str, line: usize) -> Option<Pragma> {
    let body = comment.trim_start_matches(['/', '!']).trim();
    let rest = body.strip_prefix("xlint::allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    Some(Pragma { line, rule: rule.to_string(), reason: reason.to_string() })
}

/// Whether `bytes[i..]` starts a raw (byte) string: `r"`, `r#`, `br"`, `br#`.
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != 'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

/// Skips a raw string starting at `i`; returns (next index, next line).
fn skip_raw_string(bytes: &[char], i: usize, line: usize) -> (usize, usize) {
    let mut j = i;
    let mut l = line;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < bytes.len() {
        if bytes[j] == '\n' {
            l += 1;
            j += 1;
        } else if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < bytes.len() && bytes[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, l);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, l)
}

/// Whether the `'` at `i` begins a lifetime rather than a char literal.
///
/// A lifetime is `'` followed by an identifier char that is *not*
/// terminated by a closing `'` right after one char (`'a'` is a char,
/// `'a` / `'static` are lifetimes).
fn is_lifetime(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    if i + 1 >= n {
        return false;
    }
    let c1 = bytes[i + 1];
    if !(c1.is_alphabetic() || c1 == '_') {
        return false;
    }
    // 'x' (char) has a quote right after one identifier char.
    !(i + 2 < n && bytes[i + 2] == '\'')
}

/// Marks the token ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// Returns a boolean per token: `true` when the token lives inside a
/// test-only item (attribute included). Attributes followed by an item
/// without braces (e.g. `#[cfg(test)] use x;`) are skipped up to the `;`.
pub fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_test_attr_start(toks, i) {
            let attr_end = match close_bracket(toks, i + 1) {
                Some(e) => e,
                None => break,
            };
            // Find the extent of the annotated item: the matching `}` of
            // its first top-level `{`, or a `;` before any brace opens.
            let mut j = attr_end + 1;
            let mut depth = 0usize;
            let mut opened = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" => {
                            depth += 1;
                            opened = true;
                        }
                        "}" => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break;
                            }
                        }
                        ";" if !opened => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            let end = j.min(toks.len().saturating_sub(1));
            for flag in in_test.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Whether tokens at `i` start `#[test]`, `#[cfg(test)]` or any
/// `#[cfg(...test...)]` attribute (e.g. `#[cfg(all(test, unix))]`).
fn is_test_attr_start(toks: &[Tok], i: usize) -> bool {
    if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
        return false;
    }
    let Some(open) = toks.get(i + 1) else { return false };
    if !(open.kind == TokKind::Punct && open.text == "[") {
        return false;
    }
    let Some(head) = toks.get(i + 2) else { return false };
    if head.kind != TokKind::Ident {
        return false;
    }
    match head.text.as_str() {
        "test" => true,
        "cfg" => {
            let end = close_bracket(toks, i + 1).unwrap_or(i + 2);
            let attr = &toks[i + 2..=end];
            attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "test")
                && !attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "not")
        }
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open` (which must be a `[`).
fn close_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
            let c = 'H';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = lex("let a = 1.5; let b = 0..10; let c = 1e-3; let d = 2f64; let e = 7;").toks;
        let floats: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Float).map(|t| t.text.clone()).collect();
        assert_eq!(floats, vec!["1.5", "1e-3", "2f64"]);
        let ints: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Int).map(|t| t.text.clone()).collect();
        assert_eq!(ints, vec!["0", "10", "7"]);
    }

    #[test]
    fn pragmas_are_collected() {
        let src = "let x = 1; // xlint::allow(D1, bounded cache, never iterated)\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].rule, "D1");
        assert_eq!(lexed.pragmas[0].reason, "bounded cache, never iterated");
        assert_eq!(lexed.pragmas[0].line, 1);
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn lib2() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        for (t, &in_test) in lexed.toks.iter().zip(&regions) {
            if t.text == "unwrap" {
                assert!(in_test, "unwrap inside #[cfg(test)] must be marked");
            }
            if t.text == "lib2" || t.text == "lib" {
                assert!(!in_test, "{} is library code", t.text);
            }
        }
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"one\ntwo\";\nlet b = 3;";
        let toks = lex(src).toks;
        let b = toks.iter().find(|t| t.text == "b").map(|t| t.line);
        assert_eq!(b, Some(3));
    }
}
