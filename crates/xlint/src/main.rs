//! The `xlint` command-line entry point.
//!
//! ```text
//! xlint --workspace [--json | --sarif] [--baseline PATH] [--no-cache]
//!                                                          lint every first-party crate
//! xlint --workspace --write-baseline PATH                  regenerate the suppression budget
//! xlint --workspace --fix [--apply]                        plan (or write) mechanical fixes
//! xlint [--json | --sarif] FILE...                         lint explicit files
//! ```
//!
//! Workspace passes go through the incremental cache under
//! `target/xlint-cache/` unless `--no-cache` is given; `--json`/`--sarif`
//! then report the hit/miss counters. `--baseline` enforces the
//! suppression-budget ratchet (rule X1): per-crate pragma counts may not
//! exceed the committed budget in `xlint-baseline.toml`. `--fix` prints
//! unified diffs for the mechanically fixable findings (stale pragmas,
//! `let _ =` discards inside `Result` fns) and exits 1 while any are
//! pending; `--fix --apply` writes them. Exit status: 0 clean, 1
//! findings (or pending fixes), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use exegpt_xlint::{baseline, find_workspace_root, fix, lint_files, lint_workspace_cached, Report};

/// Parsed command line.
#[derive(Debug, PartialEq, Eq)]
struct Args {
    json: bool,
    sarif: bool,
    workspace: bool,
    no_cache: bool,
    fix: bool,
    apply: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    paths: Vec<PathBuf>,
    help: bool,
}

fn parse_args<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        json: false,
        sarif: false,
        workspace: false,
        no_cache: false,
        fix: false,
        apply: false,
        baseline: None,
        write_baseline: None,
        paths: Vec::new(),
        help: false,
    };
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--sarif" => args.sarif = true,
            "--workspace" => args.workspace = true,
            "--no-cache" => args.no_cache = true,
            "--fix" => args.fix = true,
            "--apply" => args.apply = true,
            "--baseline" => match argv.next() {
                Some(path) => args.baseline = Some(PathBuf::from(path)),
                None => return Err("--baseline requires a path".to_string()),
            },
            "--write-baseline" => match argv.next() {
                Some(path) => args.write_baseline = Some(PathBuf::from(path)),
                None => return Err("--write-baseline requires a path".to_string()),
            },
            "--help" | "-h" => args.help = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.help {
        return Ok(args);
    }
    if args.json && args.sarif {
        return Err("--json and --sarif are mutually exclusive".to_string());
    }
    if !args.workspace && (args.baseline.is_some() || args.write_baseline.is_some()) {
        if args.paths.is_empty() {
            // A baseline only makes sense against the whole workspace; imply it.
            args.workspace = true;
        } else {
            return Err("--baseline/--write-baseline require --workspace".to_string());
        }
    }
    if args.baseline.is_some() && args.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".to_string());
    }
    if args.apply && !args.fix {
        return Err("--apply requires --fix".to_string());
    }
    if args.fix && !args.workspace {
        return Err("--fix requires --workspace".to_string());
    }
    if args.fix
        && (args.json || args.sarif || args.baseline.is_some() || args.write_baseline.is_some())
    {
        return Err(
            "--fix is incompatible with --json/--sarif/--baseline/--write-baseline".to_string()
        );
    }
    if args.no_cache && !args.workspace {
        return Err("--no-cache requires --workspace (file mode never caches)".to_string());
    }
    if !args.workspace && args.paths.is_empty() {
        return Err("pass --workspace or at least one file".to_string());
    }
    if args.workspace && !args.paths.is_empty() {
        return Err("--workspace does not take file arguments".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("xlint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        eprintln!(
            "usage: xlint --workspace [--json | --sarif] [--baseline PATH] [--no-cache] \
             | xlint --workspace --write-baseline PATH \
             | xlint --workspace --fix [--apply] \
             | xlint [--json | --sarif] FILE..."
        );
        return ExitCode::SUCCESS;
    }

    let mut workspace_root: Option<PathBuf> = None;
    let report: Result<Report, _> = if args.workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("xlint: cannot resolve current directory: {e}");
                return ExitCode::from(2);
            }
        };
        find_workspace_root(&cwd).and_then(|root| {
            let r = lint_workspace_cached(&root, !args.no_cache);
            workspace_root = Some(root);
            r
        })
    } else {
        lint_files(&args.paths)
    };

    let mut report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.fix {
        // parse_args guarantees --fix implies --workspace, so the root is set.
        let Some(root) = workspace_root else {
            eprintln!("xlint: --fix requires --workspace");
            return ExitCode::from(2);
        };
        let plans = fix::plan(&root, &report);
        if plans.is_empty() {
            eprintln!("xlint: no mechanically fixable findings");
            return ExitCode::SUCCESS;
        }
        if args.apply {
            return match fix::apply(&plans) {
                Ok(n) => {
                    eprintln!("xlint: fixed {n} file(s) — re-run xlint to confirm");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xlint: {e}");
                    ExitCode::from(2)
                }
            };
        }
        for plan in &plans {
            print!("{}", fix::render_diff(plan));
        }
        eprintln!(
            "xlint: {} file(s) have pending fixes — re-run with --fix --apply to write them",
            plans.len()
        );
        return ExitCode::FAILURE;
    }

    let counts = baseline::suppression_counts(&report);

    if let Some(path) = &args.write_baseline {
        if let Err(e) = std::fs::write(path, baseline::render_baseline(&counts)) {
            eprintln!("xlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "xlint: wrote suppression budget for {} unit(s) to {}",
            counts.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut ratchet_hints = Vec::new();
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xlint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match baseline::parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xlint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let label = path.to_string_lossy().replace('\\', "/");
        report.findings.extend(baseline::check_budget(&label, &counts, &base));
        report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        ratchet_hints = baseline::ratchet_candidates(&counts, &base);
    }

    if args.json {
        print!("{}", report.render_json());
    } else if args.sarif {
        print!("{}", report.render_sarif());
    } else {
        print!("{}", report.render_text());
        for (unit, live, budget) in &ratchet_hints {
            eprintln!(
                "xlint: note: `{unit}` uses {live} of {budget} budgeted suppressions — \
                 ratchet the baseline down with --write-baseline"
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn workspace_mode_parses() {
        let a = parse_args(argv(&["--workspace", "--json"])).expect("valid");
        assert!(a.workspace && a.json && a.paths.is_empty());
    }

    #[test]
    fn file_mode_parses_without_workspace_flag() {
        // Regression: explicit files without --workspace must be accepted.
        let a = parse_args(argv(&["src/lib.rs", "src/main.rs"])).expect("valid");
        assert!(!a.workspace);
        assert_eq!(a.paths.len(), 2);
    }

    #[test]
    fn empty_invocation_is_a_usage_error() {
        assert!(parse_args(argv(&[])).is_err());
        assert!(parse_args(argv(&["--json"])).is_err());
    }

    #[test]
    fn workspace_with_files_is_a_usage_error() {
        assert!(parse_args(argv(&["--workspace", "src/lib.rs"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse_args(argv(&["--frobnicate"])).is_err());
    }

    #[test]
    fn sarif_and_baseline_flags_parse() {
        let a = parse_args(argv(&["--workspace", "--sarif", "--baseline", "xlint-baseline.toml"]))
            .expect("valid");
        assert!(a.sarif);
        assert_eq!(a.baseline, Some(PathBuf::from("xlint-baseline.toml")));
        let w = parse_args(argv(&["--workspace", "--write-baseline", "b.toml"])).expect("valid");
        assert_eq!(w.write_baseline, Some(PathBuf::from("b.toml")));
    }

    #[test]
    fn fix_and_cache_flags_parse_and_validate() {
        let a =
            parse_args(argv(&["--workspace", "--fix", "--apply", "--no-cache"])).expect("valid");
        assert!(a.fix && a.apply && a.no_cache);
        assert!(parse_args(argv(&["--workspace", "--apply"])).is_err(), "--apply needs --fix");
        assert!(parse_args(argv(&["--fix", "f.rs"])).is_err(), "--fix needs --workspace");
        assert!(parse_args(argv(&["--no-cache", "f.rs"])).is_err(), "--no-cache needs workspace");
        assert!(
            parse_args(argv(&["--workspace", "--fix", "--json"])).is_err(),
            "--fix is a mutation mode, not a report format"
        );
        assert!(parse_args(argv(&["--workspace", "--fix", "--baseline", "b.toml"])).is_err());
    }

    #[test]
    fn baseline_flag_combinations_are_validated() {
        assert!(parse_args(argv(&["--workspace", "--baseline"])).is_err(), "missing value");
        assert!(parse_args(argv(&["--baseline", "b.toml", "f.rs"])).is_err(), "needs workspace");
        let implied = parse_args(argv(&["--baseline", "b.toml"])).expect("implies workspace");
        assert!(implied.workspace, "baseline without files implies a workspace pass");
        let implied = parse_args(argv(&["--write-baseline", "b.toml"])).expect("implies workspace");
        assert!(implied.workspace, "write-baseline without files implies a workspace pass");
        assert!(
            parse_args(argv(&[
                "--workspace",
                "--baseline",
                "a.toml",
                "--write-baseline",
                "b.toml"
            ]))
            .is_err(),
            "mutually exclusive"
        );
        assert!(parse_args(argv(&["--workspace", "--json", "--sarif"])).is_err());
    }
}
