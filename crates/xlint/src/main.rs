//! The `xlint` command-line entry point.
//!
//! ```text
//! xlint --workspace [--json]     lint every first-party crate
//! xlint [--json] FILE...         lint explicit files (fixtures, editors)
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use exegpt_xlint::{find_workspace_root, lint_files, lint_workspace, Report};

/// Parsed command line: `--json`, `--workspace`, explicit files.
#[derive(Debug, PartialEq, Eq)]
struct Args {
    json: bool,
    workspace: bool,
    paths: Vec<PathBuf>,
    help: bool,
}

fn parse_args<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args { json: false, workspace: false, paths: Vec::new(), help: false };
    for arg in argv {
        match arg.as_str() {
            "--json" => args.json = true,
            "--workspace" => args.workspace = true,
            "--help" | "-h" => args.help = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.help {
        return Ok(args);
    }
    if !args.workspace && args.paths.is_empty() {
        return Err("pass --workspace or at least one file".to_string());
    }
    if args.workspace && !args.paths.is_empty() {
        return Err("--workspace does not take file arguments".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("xlint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        eprintln!("usage: xlint --workspace [--json] | xlint [--json] FILE...");
        return ExitCode::SUCCESS;
    }

    let report: Result<Report, _> = if args.workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("xlint: cannot resolve current directory: {e}");
                return ExitCode::from(2);
            }
        };
        find_workspace_root(&cwd).and_then(|root| lint_workspace(&root))
    } else {
        lint_files(&args.paths)
    };

    match report {
        Ok(r) => {
            if args.json {
                print!("{}", r.render_json());
            } else {
                print!("{}", r.render_text());
            }
            if r.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xlint: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn workspace_mode_parses() {
        let a = parse_args(argv(&["--workspace", "--json"])).expect("valid");
        assert!(a.workspace && a.json && a.paths.is_empty());
    }

    #[test]
    fn file_mode_parses_without_workspace_flag() {
        // Regression: explicit files without --workspace must be accepted.
        let a = parse_args(argv(&["src/lib.rs", "src/main.rs"])).expect("valid");
        assert!(!a.workspace);
        assert_eq!(a.paths.len(), 2);
    }

    #[test]
    fn empty_invocation_is_a_usage_error() {
        assert!(parse_args(argv(&[])).is_err());
        assert!(parse_args(argv(&["--json"])).is_err());
    }

    #[test]
    fn workspace_with_files_is_a_usage_error() {
        assert!(parse_args(argv(&["--workspace", "src/lib.rs"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse_args(argv(&["--frobnicate"])).is_err());
    }
}
