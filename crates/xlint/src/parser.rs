//! Item-level parsing on top of the token stream.
//!
//! The lexer gives a flat token stream; this module
//! recovers the *item structure* lint rules need: `use` declarations with
//! their full paths, `mod`/`impl`/`trait` blocks (recursed into, so impl
//! methods are first-class), and `fn` items with the two signature facts
//! that matter for rule P2 — does it return `Result`, and is it
//! `#[must_use]`. It is not a full Rust parser: it only needs to be
//! faithful on well-formed source and *panic-free* on arbitrary input
//! (pinned by a property test), since the linter runs over fixtures and
//! fuzz-shaped token soup as well as the real workspace.

use crate::lexer::{Tok, TokKind};

/// Item visibility, as far as lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Unrestricted `pub`.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in ...)`.
    Restricted,
    /// No visibility modifier.
    Private,
}

/// The signature facts rule P2 needs about a `fn` item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FnSig {
    /// The declared return type's head is `Result` (incl. `io::Result`).
    pub returns_result: bool,
    /// The item carries a `#[must_use]` attribute.
    pub must_use: bool,
}

/// What kind of item was parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `use path::to::{Things};` — `name` holds the rendered path.
    Use,
    /// `mod name;` or `mod name { ... }`.
    Mod {
        /// Whether the module body is inline (`{ ... }` vs `;`).
        inline: bool,
    },
    /// A function or method.
    Fn(FnSig),
    /// `struct` definition.
    Struct,
    /// `enum` definition.
    Enum,
    /// `trait` definition (recursed into for default methods).
    Trait,
    /// `impl` block (recursed into for methods); `name` is the header.
    Impl,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `macro_rules!` definition.
    MacroDef,
    /// `extern crate` declaration.
    ExternCrate,
}

/// One parsed item with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Item name (path text for `use`, header text for `impl`).
    pub name: String,
    /// Visibility modifier.
    pub vis: Visibility,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// 1-based line of the item's last token (`;` or closing `}`).
    pub end_line: usize,
    /// Token index of the item keyword.
    pub start: usize,
    /// Token index of the item's last token.
    pub end: usize,
}

/// Recursion is bounded so adversarial nesting (`mod a{mod b{...`) can
/// never overflow the stack; items below the bound are simply not listed.
const MAX_DEPTH: usize = 64;

/// Parses the item list of a token stream. Items nested in `mod`, `impl`
/// and `trait` bodies are included (flat, in source order); items inside
/// `fn` bodies are not.
pub fn parse_items(toks: &[Tok]) -> Vec<Item> {
    let mut out = Vec::new();
    parse_into(toks, 0, 0, &mut out);
    out
}

/// Lexes `src` and parses its items in one step — the public entry point
/// for tests and tools (the token types themselves stay crate-private).
pub fn parse_source(src: &str) -> Vec<Item> {
    parse_items(&crate::lexer::lex(src).toks)
}

/// Core scanner over `toks[lo..]` (absolute indices via `base + i` are
/// already folded into `lo`); appends parsed items to `out`.
fn parse_into(toks: &[Tok], lo: usize, depth: usize, out: &mut Vec<Item>) {
    if depth > MAX_DEPTH {
        return;
    }
    let mut i = lo;
    let mut pending_must_use = false;
    while i < toks.len() {
        // Attribute group: remember `must_use`, skip to the matching `]`.
        if is_punct(toks, i, "#") {
            let open = if is_punct(toks, i + 1, "!") { i + 2 } else { i + 1 };
            if is_punct(toks, open, "[") {
                let close = match_close(toks, open, "[", "]");
                let attr = toks.get(open + 1..close).unwrap_or(&[]);
                if attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "must_use") {
                    pending_must_use = true;
                }
                i = close + 1;
                continue;
            }
            i += 1;
            continue;
        }
        let (vis, after_vis) = parse_visibility(toks, i);
        let mut j = after_vis;
        // Modifiers before the item keyword.
        while matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern" | "default"))
        {
            // `const` is itself an item keyword unless followed by fn/etc.;
            // disambiguate: `const NAME` / `const _` starts a const item.
            if toks[j].text == "const"
                && matches!(toks.get(j + 1), Some(t) if t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "fn" | "unsafe" | "extern" | "async"))
            {
                break;
            }
            // `extern "C" fn` / `extern crate`.
            if toks[j].text == "extern"
                && matches!(toks.get(j + 1), Some(t) if t.kind == TokKind::Ident && t.text == "crate")
            {
                break;
            }
            j += 1;
            // Skip the ABI literal of `extern "C"`.
            if matches!(toks.get(j), Some(t) if t.kind == TokKind::Literal) {
                j += 1;
            }
        }
        let Some(kw) = toks.get(j) else { break };
        if kw.kind != TokKind::Ident {
            i = i.max(j) + 1;
            continue;
        }
        let parsed = match kw.text.as_str() {
            "use" => parse_terminated(toks, i, j, ItemKind::Use, vis, use_path(toks, j + 1)),
            "mod" => parse_mod(toks, i, j, vis, depth, out),
            "fn" => parse_fn(toks, i, j, vis, pending_must_use),
            "struct" => parse_terminated(toks, i, j, ItemKind::Struct, vis, name_after(toks, j)),
            "enum" => parse_terminated(toks, i, j, ItemKind::Enum, vis, name_after(toks, j)),
            "union" => parse_terminated(toks, i, j, ItemKind::Struct, vis, name_after(toks, j)),
            "trait" => parse_block_recursing(toks, i, j, ItemKind::Trait, vis, depth, out),
            "impl" => parse_block_recursing(toks, i, j, ItemKind::Impl, vis, depth, out),
            "const" => parse_terminated(toks, i, j, ItemKind::Const, vis, name_after(toks, j)),
            "static" => parse_terminated(toks, i, j, ItemKind::Static, vis, name_after(toks, j)),
            "type" => parse_terminated(toks, i, j, ItemKind::TypeAlias, vis, name_after(toks, j)),
            "macro_rules" => {
                parse_terminated(toks, i, j + 1, ItemKind::MacroDef, vis, name_after(toks, j + 1))
            }
            "extern" => parse_terminated(
                toks,
                i,
                j + 1,
                ItemKind::ExternCrate,
                vis,
                name_after(toks, j + 1),
            ),
            _ => None,
        };
        match parsed {
            Some(item) => {
                let next = item.end + 1;
                out.push(item);
                pending_must_use = false;
                i = next;
            }
            None => {
                pending_must_use = false;
                i = j + 1;
            }
        }
    }
}

/// Parses an optional `pub` / `pub(...)` prefix at `i`; returns the
/// visibility and the index after it.
fn parse_visibility(toks: &[Tok], i: usize) -> (Visibility, usize) {
    if !matches!(toks.get(i), Some(t) if t.kind == TokKind::Ident && t.text == "pub") {
        return (Visibility::Private, i);
    }
    if is_punct(toks, i + 1, "(") {
        let close = match_close(toks, i + 1, "(", ")");
        return (Visibility::Restricted, close + 1);
    }
    (Visibility::Pub, i + 1)
}

/// Generic item body/terminator finder: the item ends at the matching `}`
/// of the first `{` seen at nesting depth 0, or at a `;` at depth 0.
/// Returns the token index of that final token (or the last token of the
/// stream on malformed input — never past the end).
fn item_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0usize;
    let mut j = from;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" if depth == 0 => return match_close(toks, j, "{", "}"),
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the token closing the bracket opened at `open` (which should
/// hold `open_s`). Saturates to the last token on malformed input.
fn match_close(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct {
            if t.text == open_s {
                depth += 1;
            } else if t.text == close_s {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

fn is_punct(toks: &[Tok], i: usize, s: &str) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct && t.text == s)
}

/// The identifier right after index `kw` (e.g. the item name), or `?`.
fn name_after(toks: &[Tok], kw: usize) -> String {
    match toks.get(kw + 1) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => "?".to_string(),
    }
}

/// Renders a `use` path from `from` up to the terminating `;`:
/// `use std :: collections :: { HashMap , BTreeMap }` becomes
/// `std::collections::{HashMap, BTreeMap}`.
fn use_path(toks: &[Tok], from: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = from;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct && t.text == ";" {
            break;
        }
        parts.push(&t.text);
        j += 1;
    }
    let mut out = String::new();
    for (k, p) in parts.iter().enumerate() {
        if k > 0 {
            let prev = parts[k - 1];
            let word_boundary = prev.chars().next_back().is_some_and(char::is_alphanumeric)
                && p.chars().next().is_some_and(char::is_alphanumeric);
            if word_boundary || prev == "," {
                out.push(' ');
            }
        }
        out.push_str(p);
    }
    out
}

/// Builds a `;`- or `{}`-terminated item whose span starts at `start`.
fn parse_terminated(
    toks: &[Tok],
    start: usize,
    kw: usize,
    kind: ItemKind,
    vis: Visibility,
    name: String,
) -> Option<Item> {
    let end = item_end(toks, kw + 1);
    Some(Item {
        kind,
        name,
        vis,
        line: toks.get(kw)?.line,
        end_line: toks.get(end).map_or(0, |t| t.line),
        start,
        end,
    })
}

/// Parses a `mod` item, recursing into an inline body.
fn parse_mod(
    toks: &[Tok],
    start: usize,
    kw: usize,
    vis: Visibility,
    depth: usize,
    out: &mut Vec<Item>,
) -> Option<Item> {
    let name = name_after(toks, kw);
    let end = item_end(toks, kw + 1);
    let inline = matches!(toks.get(end), Some(t) if t.text == "}");
    if inline {
        // Body tokens live between the opening `{` and `end`; the opening
        // brace is the first `{` after the name.
        let mut open = kw + 1;
        while open < end && !is_punct(toks, open, "{") {
            open += 1;
        }
        if open < end {
            parse_slice(toks, open + 1, end, depth + 1, out);
        }
    }
    Some(Item {
        kind: ItemKind::Mod { inline },
        name,
        vis,
        line: toks.get(kw)?.line,
        end_line: toks.get(end).map_or(0, |t| t.line),
        start,
        end,
    })
}

/// Parses a `trait`/`impl` block, recursing into the body for methods.
fn parse_block_recursing(
    toks: &[Tok],
    start: usize,
    kw: usize,
    kind: ItemKind,
    vis: Visibility,
    depth: usize,
    out: &mut Vec<Item>,
) -> Option<Item> {
    let end = item_end(toks, kw + 1);
    let mut open = kw + 1;
    let mut bracket = 0usize;
    while open < end {
        match (toks[open].kind, toks[open].text.as_str()) {
            (TokKind::Punct, "(" | "[") => bracket += 1,
            (TokKind::Punct, ")" | "]") => bracket = bracket.saturating_sub(1),
            (TokKind::Punct, "{") if bracket == 0 => break,
            _ => {}
        }
        open += 1;
    }
    // Header text: tokens between the keyword and the body (for impl this
    // is `<generics> Type` or `<generics> Trait for Type`).
    let name = render_tokens(&toks[(kw + 1).min(toks.len())..open.min(toks.len())]);
    if open < end {
        parse_slice(toks, open + 1, end, depth + 1, out);
    }
    Some(Item {
        kind,
        name,
        vis,
        line: toks.get(kw)?.line,
        end_line: toks.get(end).map_or(0, |t| t.line),
        start,
        end,
    })
}

/// Recurse over `toks[lo..hi]` without slicing (token indices stay
/// absolute): runs the item scanner but stops it at `hi` by temporarily
/// bounding the view.
fn parse_slice(toks: &[Tok], lo: usize, hi: usize, depth: usize, out: &mut Vec<Item>) {
    let hi = hi.min(toks.len());
    if lo >= hi {
        return;
    }
    // Parse the sub-slice, then rebase token indices to absolute.
    let mut nested = Vec::new();
    parse_into(&toks[..hi], lo, depth, &mut nested);
    out.extend(nested);
}

/// Joins token texts with minimal spacing (word boundaries only).
fn render_tokens(toks: &[Tok]) -> String {
    let mut out = String::new();
    for (k, t) in toks.iter().enumerate() {
        if k > 0 {
            let prev = &toks[k - 1].text;
            let boundary = prev.chars().next_back().is_some_and(char::is_alphanumeric)
                && t.text.chars().next().is_some_and(char::is_alphanumeric);
            if boundary {
                out.push(' ');
            }
        }
        out.push_str(&t.text);
    }
    out
}

/// Parses a `fn` item: name, `Result` return, span.
fn parse_fn(
    toks: &[Tok],
    start: usize,
    kw: usize,
    vis: Visibility,
    must_use: bool,
) -> Option<Item> {
    // `fn` followed by `(` is a function-pointer type, not an item.
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let mut j = kw + 2;
    // Skip generics `<...>` (angle depth; `->`/`=>` lex as single tokens).
    if is_punct(toks, j, "<") {
        let mut angle = 0usize;
        while let Some(t) = toks.get(j) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle = angle.saturating_sub(1);
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
    }
    // Parameter list.
    if is_punct(toks, j, "(") {
        j = match_close(toks, j, "(", ")") + 1;
    }
    // Optional return type, up to body / `;` / `where`.
    let mut returns_result = false;
    if is_punct(toks, j, "->") {
        j += 1;
        let mut angle = 0usize;
        while let Some(t) = toks.get(j) {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{" | ";") => break,
                (TokKind::Ident, "where") => break,
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => angle = angle.saturating_sub(1),
                (TokKind::Ident, "Result") if angle == 0 => returns_result = true,
                _ => {}
            }
            j += 1;
        }
    }
    let end = item_end(toks, j);
    Some(Item {
        kind: ItemKind::Fn(FnSig { returns_result, must_use }),
        name,
        vis,
        line: toks.get(kw)?.line,
        end_line: toks.get(end).map_or(0, |t| t.line),
        start,
        end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<Item> {
        parse_items(&lex(src).toks)
    }

    #[test]
    fn use_items_render_their_paths() {
        let it = items("use std::collections::BTreeMap;\nuse exegpt_sim::{Simulator, Estimate};");
        assert_eq!(it.len(), 2);
        assert_eq!(it[0].kind, ItemKind::Use);
        assert_eq!(it[0].name, "std::collections::BTreeMap");
        assert_eq!(it[1].name, "exegpt_sim::{Simulator, Estimate}");
    }

    #[test]
    fn fn_signature_facts_are_extracted() {
        let it = items(
            "pub fn plain(x: usize) -> usize { x }\n\
             fn fallible() -> Result<u32, String> { Ok(1) }\n\
             #[must_use]\nfn scored() -> u32 { 7 }\n\
             fn nested() -> Option<Result<u8, ()>> { None }",
        );
        let sig = |name: &str| {
            it.iter()
                .find_map(|i| match (&i.kind, i.name.as_str()) {
                    (ItemKind::Fn(s), n) if n == name => Some(*s),
                    _ => None,
                })
                .expect("fn item present")
        };
        assert!(!sig("plain").returns_result);
        assert!(sig("fallible").returns_result);
        assert!(sig("scored").must_use);
        assert!(!sig("nested").returns_result, "Result nested in Option is not a Result return");
        assert_eq!(it[0].vis, Visibility::Pub);
        assert_eq!(it[1].vis, Visibility::Private);
    }

    #[test]
    fn impl_methods_are_recursed_into() {
        let it = items(
            "struct S;\nimpl S {\n  pub fn save(&self) -> Result<(), String> { Ok(()) }\n  \
             fn peek(&self) -> u32 { 0 }\n}",
        );
        let fns: Vec<&Item> = it.iter().filter(|i| matches!(i.kind, ItemKind::Fn(_))).collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "save");
        assert!(matches!(fns[0].kind, ItemKind::Fn(s) if s.returns_result));
    }

    #[test]
    fn mod_spans_cover_nested_items() {
        let src = "mod outer {\n  mod inner {\n    fn f() {}\n  }\n}\nmod filed;";
        let it = items(src);
        let outer = it.iter().find(|i| i.name == "outer").expect("outer");
        assert!(matches!(outer.kind, ItemKind::Mod { inline: true }));
        assert_eq!((outer.line, outer.end_line), (1, 5));
        assert!(it.iter().any(|i| i.name == "inner"));
        assert!(it.iter().any(|i| i.name == "f"));
        let filed = it.iter().find(|i| i.name == "filed").expect("filed");
        assert!(matches!(filed.kind, ItemKind::Mod { inline: false }));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let it = items("type Cb = fn(usize) -> bool;\nfn real(cb: fn(u8) -> u8) {}");
        let fns: Vec<&Item> = it.iter().filter(|i| matches!(i.kind, ItemKind::Fn(_))).collect();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }
}
