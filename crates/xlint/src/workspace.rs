//! The workspace model: the declared crate-layering DAG and the
//! manifest-level import check behind rule L1.
//!
//! The 15-crate workspace is layered (DESIGN.md §6.1a): every crate may
//! depend only on crates in *strictly lower* layers, so the import graph
//! is a DAG by construction and a change that introduces an upward (or
//! undeclared) edge is a lint finding, not a review comment. Two probes
//! enforce the same declared layering:
//!
//! * **manifests** — `[dependencies]` entries of every `crates/*/Cargo.toml`
//!   (dev-dependencies are exempt: test code may look upward);
//! * **sources** — any `exegpt_*` / `exegpt` path mention in non-test
//!   library code (see `l1_scan` in the rules module).

use std::path::Path;

use crate::rules::{Finding, Rule};
use crate::XlintError;

/// One workspace crate: directory name under `crates/`, the identifier it
/// is imported as, and its declared layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrateInfo {
    /// Directory name under `crates/` (also the package-name suffix).
    pub dir: &'static str,
    /// The path identifier Rust code imports it as.
    pub ident: &'static str,
    /// Declared layer; imports must point strictly downward.
    pub layer: u8,
}

/// The declared layering, bottom (0) to top. Package name is
/// `exegpt-<dir>` except `core`, whose package and ident are `exegpt`.
pub const CRATES: &[CrateInfo] = &[
    CrateInfo { dir: "units", ident: "exegpt_units", layer: 0 },
    CrateInfo { dir: "dist", ident: "exegpt_dist", layer: 0 },
    CrateInfo { dir: "model", ident: "exegpt_model", layer: 0 },
    CrateInfo { dir: "xlint", ident: "exegpt_xlint", layer: 0 },
    CrateInfo { dir: "cluster", ident: "exegpt_cluster", layer: 1 },
    CrateInfo { dir: "profiler", ident: "exegpt_profiler", layer: 2 },
    CrateInfo { dir: "sim", ident: "exegpt_sim", layer: 3 },
    CrateInfo { dir: "workload", ident: "exegpt_workload", layer: 4 },
    CrateInfo { dir: "core", ident: "exegpt", layer: 5 },
    CrateInfo { dir: "runner", ident: "exegpt_runner", layer: 6 },
    CrateInfo { dir: "faults", ident: "exegpt_faults", layer: 7 },
    CrateInfo { dir: "serve", ident: "exegpt_serve", layer: 8 },
    CrateInfo { dir: "baselines", ident: "exegpt_baselines", layer: 8 },
    CrateInfo { dir: "fleet", ident: "exegpt_fleet", layer: 9 },
    CrateInfo { dir: "scenario", ident: "exegpt_scenario", layer: 10 },
    CrateInfo { dir: "bench", ident: "exegpt_bench", layer: 10 },
];

/// A compact rendering of the layer order, used in L1 suggestions.
pub const LAYER_ORDER: &str = "units/dist/model → cluster → profiler → sim → workload → \
                               core → runner → faults → serve/baselines → fleet → \
                               scenario/bench";

/// Index of the crate whose directory under `crates/` is `dir`.
pub fn crate_index_for_dir(dir: &str) -> Option<usize> {
    CRATES.iter().position(|c| c.dir == dir)
}

/// Index of the crate imported under path identifier `ident`.
pub fn crate_index_for_ident(ident: &str) -> Option<usize> {
    CRATES.iter().position(|c| c.ident == ident)
}

/// Index of the crate with Cargo package name `package`
/// (`exegpt` / `exegpt-<dir>`).
pub fn crate_index_for_package(package: &str) -> Option<usize> {
    if package == "exegpt" {
        return crate_index_for_dir("core");
    }
    package.strip_prefix("exegpt-").and_then(crate_index_for_dir)
}

/// Whether crate `from` may import crate `to` under the declared DAG:
/// strictly downward in layer (self-references are vacuously allowed).
pub fn import_allowed(from: usize, to: usize) -> bool {
    from == to || CRATES[to].layer < CRATES[from].layer
}

/// Builds the L1 finding for an upward/undeclared import edge.
pub fn layering_finding(file: &str, line: usize, from: usize, to: usize) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: Rule::L1,
        message: format!(
            "`{}` (layer {}) must not import `{}` (layer {}): upward cross-crate edge",
            CRATES[from].dir, CRATES[from].layer, CRATES[to].dir, CRATES[to].layer,
        ),
        suggestion: format!(
            "depend only on strictly lower layers ({LAYER_ORDER}), or move the shared \
             code down a layer"
        ),
    }
}

/// Lints every `crates/*/Cargo.toml` against the declared DAG: each
/// `[dependencies]` entry naming a workspace crate must point strictly
/// downward, and every `exegpt-*` dependency must be a known crate.
/// `[dev-dependencies]` are exempt (tests may look upward).
pub fn lint_manifests(root: &Path) -> Result<Vec<Finding>, XlintError> {
    let mut findings = Vec::new();
    for info in CRATES {
        let path = root.join("crates").join(info.dir).join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // a crate listed here but absent on disk is not a lint error
        };
        let label = format!("crates/{}/Cargo.toml", info.dir);
        let me = crate_index_for_dir(info.dir).unwrap_or(0);
        findings.extend(lint_manifest_text(&label, me, &text));
    }
    Ok(findings)
}

/// The manifest check proper, split out so fixtures can feed synthetic
/// manifests. `me` is the owning crate's index into [`CRATES`].
pub fn lint_manifest_text(label: &str, me: usize, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dependencies = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('[') {
            // Only the real `[dependencies]` table is layered; dev- and
            // build-dependencies (and target tables) are exempt.
            in_dependencies = line == "[dependencies]";
            continue;
        }
        if !in_dependencies || !line.contains('=') {
            continue;
        }
        let key = line.split(['=', '.', ' ']).next().unwrap_or("").trim_matches('"');
        if !key.starts_with("exegpt") {
            continue;
        }
        match crate_index_for_package(key) {
            Some(to) if import_allowed(me, to) => {}
            Some(to) => findings.push(layering_finding(label, lineno + 1, me, to)),
            None => findings.push(Finding {
                file: label.to_string(),
                line: lineno + 1,
                rule: Rule::L1,
                message: format!("dependency `{key}` is not a declared workspace crate"),
                suggestion: "add the crate to the declared layering in \
                             crates/xlint/src/workspace.rs (with a layer) or remove the edge"
                    .to_string(),
            }),
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(dir: &str) -> usize {
        crate_index_for_dir(dir).expect("known crate")
    }

    #[test]
    fn declared_layers_match_the_shipped_manifests() {
        // The real manifests are checked end-to-end by the fixtures test;
        // here, pin a few edges of the declared DAG itself.
        assert!(import_allowed(idx("cluster"), idx("model")));
        assert!(import_allowed(idx("serve"), idx("faults")));
        assert!(import_allowed(idx("workload"), idx("sim")));
        assert!(import_allowed(idx("bench"), idx("fleet")));
        assert!(!import_allowed(idx("sim"), idx("workload")));
        assert!(!import_allowed(idx("core"), idx("fleet")));
        assert!(!import_allowed(idx("faults"), idx("serve")));
        assert!(!import_allowed(idx("serve"), idx("baselines")), "same layer is not an edge");
    }

    #[test]
    fn package_names_resolve_including_the_core_alias() {
        assert_eq!(crate_index_for_package("exegpt"), crate_index_for_dir("core"));
        assert_eq!(crate_index_for_package("exegpt-sim"), crate_index_for_dir("sim"));
        assert_eq!(crate_index_for_package("exegpt-nope"), None);
        assert_eq!(crate_index_for_ident("exegpt"), crate_index_for_dir("core"));
        assert_eq!(crate_index_for_ident("exegpt_fleet"), crate_index_for_dir("fleet"));
    }

    #[test]
    fn manifest_text_flags_upward_and_undeclared_edges() {
        let text = "[package]\nname = \"exegpt-sim\"\n\n[dependencies]\n\
                    exegpt-model.workspace = true\nexegpt-workload.workspace = true\n\
                    exegpt-mystery.workspace = true\nserde.workspace = true\n\n\
                    [dev-dependencies]\nexegpt-fleet.workspace = true\n";
        let f = lint_manifest_text("crates/sim/Cargo.toml", idx("sim"), text);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("workload"), "upward edge flagged: {}", f[0].message);
        assert!(f[1].message.contains("exegpt-mystery"), "undeclared dep flagged");
        assert!(f.iter().all(|x| x.rule == Rule::L1), "dev-dependency on fleet is exempt: {f:?}");
    }
}
