//! The taint lattice the flow rules run on.
//!
//! Values are tracked per local binding as a small bitset of *marks*
//! (DESIGN.md §6.3). Two families:
//!
//! * **nondeterminism marks** — the value derives from a wall-clock read
//!   (`Instant::now`, `SystemTime`), an OS-entropy draw (`thread_rng`,
//!   `from_entropy`) or an environment read (`env::var` & friends).
//!   Rule D4 forbids such values from reaching event emission, metrics
//!   writes or plan APIs. Nothing launders these marks away.
//! * **unit-strip marks** — the value was pulled out of an
//!   `exegpt_units` newtype (`.as_secs()`, `.as_f64()`, ...) and is a
//!   raw float of a *known dimension*. Rule U3 forbids re-entering a
//!   *different* unit's constructor with it; the `exegpt_dist::convert`
//!   helpers and the unit constructors themselves clear the strip marks
//!   (the value is dimensioned again).
//!
//! The join is set union, the lattice is finite (one `u16`), so every
//! worklist fixpoint over it terminates.

/// A set of taint marks. Join (`|`) is union; the empty set is bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord, Hash)]
pub struct TaintSet(u16);

impl TaintSet {
    /// The empty (bottom) set: a value with no tracked provenance.
    pub const EMPTY: TaintSet = TaintSet(0);
    /// Derived from a wall-clock read.
    pub const CLOCK: TaintSet = TaintSet(1 << 0);
    /// Derived from an OS-entropy draw.
    pub const ENTROPY: TaintSet = TaintSet(1 << 1);
    /// Derived from a process-environment read.
    pub const ENV: TaintSet = TaintSet(1 << 2);
    /// Stripped out of a `Secs` value.
    pub const STRIP_SECS: TaintSet = TaintSet(1 << 3);
    /// Stripped out of a `Bytes` value.
    pub const STRIP_BYTES: TaintSet = TaintSet(1 << 4);
    /// Stripped out of a `Tokens` value.
    pub const STRIP_TOKENS: TaintSet = TaintSet(1 << 5);
    /// Stripped out of a `Flops` value.
    pub const STRIP_FLOPS: TaintSet = TaintSet(1 << 6);
    /// Stripped out of *some* unit newtype whose dimension the analysis
    /// could not name (a bare `.as_f64()` on an unsuffixed receiver).
    pub const STRIP_ANY: TaintSet = TaintSet(1 << 7);

    /// Every nondeterminism mark (the D4 source family).
    pub const NONDET: TaintSet = TaintSet(Self::CLOCK.0 | Self::ENTROPY.0 | Self::ENV.0);
    /// Every *named* unit-strip mark (the U3 family, `STRIP_ANY` excluded:
    /// an unknown dimension can never witness a mismatch).
    pub const STRIP_NAMED: TaintSet = TaintSet(
        Self::STRIP_SECS.0 | Self::STRIP_BYTES.0 | Self::STRIP_TOKENS.0 | Self::STRIP_FLOPS.0,
    );
    /// Every unit-strip mark, named or anonymous.
    pub const STRIP_ALL: TaintSet = TaintSet(Self::STRIP_NAMED.0 | Self::STRIP_ANY.0);

    /// Set union (the lattice join).
    pub fn union(self, other: TaintSet) -> TaintSet {
        TaintSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: TaintSet) -> TaintSet {
        TaintSet(self.0 & other.0)
    }

    /// Set difference (`self` without any mark in `other`).
    pub fn minus(self, other: TaintSet) -> TaintSet {
        TaintSet(self.0 & !other.0)
    }

    /// Whether no mark is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self` and `other` share any mark.
    pub fn intersects(self, other: TaintSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Human-readable mark list for diagnostics, e.g. `clock+env`.
    pub fn describe(self) -> String {
        const NAMES: [(TaintSet, &str); 8] = [
            (TaintSet::CLOCK, "clock"),
            (TaintSet::ENTROPY, "entropy"),
            (TaintSet::ENV, "env"),
            (TaintSet::STRIP_SECS, "secs-stripped"),
            (TaintSet::STRIP_BYTES, "bytes-stripped"),
            (TaintSet::STRIP_TOKENS, "tokens-stripped"),
            (TaintSet::STRIP_FLOPS, "flops-stripped"),
            (TaintSet::STRIP_ANY, "unit-stripped"),
        ];
        let parts: Vec<&str> =
            NAMES.iter().filter(|(m, _)| self.intersects(*m)).map(|(_, n)| *n).collect();
        if parts.is_empty() {
            "untainted".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// The unit dimensions U3 tracks through strip/re-entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Wall/virtual time (`Secs`).
    Secs,
    /// Memory (`Bytes`).
    Bytes,
    /// Sequence lengths (`Tokens`).
    Tokens,
    /// Compute (`Flops`).
    Flops,
}

impl Unit {
    /// The strip mark carried by a raw float pulled out of this unit.
    pub fn strip_mark(self) -> TaintSet {
        match self {
            Unit::Secs => TaintSet::STRIP_SECS,
            Unit::Bytes => TaintSet::STRIP_BYTES,
            Unit::Tokens => TaintSet::STRIP_TOKENS,
            Unit::Flops => TaintSet::STRIP_FLOPS,
        }
    }

    /// The newtype's type name as written in source.
    pub fn type_name(self) -> &'static str {
        match self {
            Unit::Secs => "Secs",
            Unit::Bytes => "Bytes",
            Unit::Tokens => "Tokens",
            Unit::Flops => "Flops",
        }
    }
}

/// The unit named by an `exegpt_units` newtype type identifier.
pub fn unit_for_type(name: &str) -> Option<Unit> {
    match name {
        "Secs" => Some(Unit::Secs),
        "Bytes" => Some(Unit::Bytes),
        "Tokens" => Some(Unit::Tokens),
        "Flops" => Some(Unit::Flops),
        _ => None,
    }
}

/// Whether `name` is a unit-constructor method (`Secs::new`,
/// `Secs::from_millis`, ...): calling one re-dimensions the argument.
pub fn is_unit_ctor_method(name: &str) -> bool {
    matches!(name, "new" | "from_secs" | "from_millis" | "from_micros")
}

/// The unit stripped by a `.name()` accessor call. `as_f64` strips an
/// *unknown* dimension (`None` inner) — the receiver's name suffix may
/// still pin it down (see [`unit_for_suffix`]).
pub fn stripped_unit(accessor: &str) -> Option<Option<Unit>> {
    match accessor {
        "as_secs" | "as_millis" | "as_micros" => Some(Some(Unit::Secs)),
        "as_f64" => Some(None),
        _ => None,
    }
}

/// The unit suggested by an identifier's `_secs`/`_bytes`/... suffix
/// (the same vocabulary rule U2 keys on, plus tokens/flops).
pub fn unit_for_suffix(name: &str) -> Option<Unit> {
    let suffixed =
        |s: &str| name == s || (name.ends_with(s) && name[..name.len() - s.len()].ends_with('_'));
    if suffixed("secs") {
        Some(Unit::Secs)
    } else if suffixed("bytes") {
        Some(Unit::Bytes)
    } else if suffixed("tokens") || suffixed("toks") {
        Some(Unit::Tokens)
    } else if suffixed("flops") {
        Some(Unit::Flops)
    } else {
        None
    }
}

/// Whether `name` is one of the checked `exegpt_dist::convert` helpers:
/// passing a value through one launders its unit-strip marks (the helper
/// is the sanctioned, checked conversion point).
pub fn is_convert_sanitizer(name: &str) -> bool {
    matches!(
        name,
        "lossless_f64"
            | "widen_u64"
            | "narrow_usize"
            | "trunc_usize"
            | "trunc_u64"
            | "round_usize"
            | "ceil_usize"
            | "ceil_u64"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_union_and_minus_removes() {
        let t = TaintSet::CLOCK.union(TaintSet::STRIP_SECS);
        assert!(t.intersects(TaintSet::NONDET));
        assert!(t.intersects(TaintSet::STRIP_ALL));
        let cleaned = t.minus(TaintSet::STRIP_ALL);
        assert_eq!(cleaned, TaintSet::CLOCK, "strip marks clear, clock survives");
        assert!(TaintSet::EMPTY.is_empty());
    }

    #[test]
    fn describe_lists_marks() {
        assert_eq!(TaintSet::EMPTY.describe(), "untainted");
        assert_eq!(TaintSet::CLOCK.union(TaintSet::ENV).describe(), "clock+env");
        assert_eq!(Unit::Bytes.strip_mark().describe(), "bytes-stripped");
    }

    #[test]
    fn vocabularies_resolve() {
        assert_eq!(unit_for_type("Secs"), Some(Unit::Secs));
        assert_eq!(unit_for_type("BytesPerSec"), None, "rates are not re-entry targets");
        assert!(is_unit_ctor_method("from_millis"));
        assert!(!is_unit_ctor_method("max_zero"));
        assert_eq!(stripped_unit("as_secs"), Some(Some(Unit::Secs)));
        assert_eq!(stripped_unit("as_f64"), Some(None));
        assert_eq!(stripped_unit("as_str"), None);
        assert_eq!(unit_for_suffix("kv_bytes"), Some(Unit::Bytes));
        assert_eq!(unit_for_suffix("prompt_toks"), Some(Unit::Tokens));
        assert_eq!(unit_for_suffix("plain"), None);
        assert!(is_convert_sanitizer("trunc_usize"));
        assert!(!is_convert_sanitizer("transmute"));
    }
}
