//! Runtime plan invariants — the dynamic counterpart of `xlint`
//! (DESIGN.md §6).
//!
//! `xlint` statically rules out the constructs that most often corrupt the
//! cost model (nondeterministic maps, wall-clock reads, lossy casts, float
//! equality, library panics). [`PlanInvariants`] closes the loop at runtime:
//! every schedule the search returns is checked — under `debug_assertions`,
//! automatically inside [`Scheduler::schedule`](crate::Scheduler::schedule)
//! (and therefore every live reschedule) — against the structural properties
//! the paper's search relies on:
//!
//! * **Estimate sanity** — latency, throughput, and the timeline breakdown
//!   are finite and positive.
//! * **KV-capacity non-negativity** — the peak per-GPU footprint fits the
//!   usable capacity (the Figure 9 feasibility condition).
//! * **Stage-assignment completeness** — the pipeline plan distributes
//!   exactly the model's layers across exactly the layout's stages.
//! * **Probability mass** — the workload's `P_E(S)`/`P_D(S)` still sum to 1.
//! * **Latency monotonicity probe** — a neighbouring configuration with a
//!   larger `B_E` must not report drastically *lower* latency; that shape of
//!   reversal is the signature of a corrupted cost model, not of the benign
//!   small-tolerance violations the paper measures in Table 5.
//!
//! The check is cheap: the probe shares the simulator's evaluation cache, so
//! it costs at most one extra closed-form evaluation.

use exegpt_sim::{RraConfig, ScheduleConfig, Simulator, WaaConfig};
use exegpt_units::Secs;

use crate::scheduler::Schedule;

/// Tolerance for the probability-mass checks.
const PMF_EPS: f64 = 1e-6;

/// Relative slack for the latency monotonicity probe. The paper itself
/// measures small-tolerance monotonicity violations (Table 5), so the probe
/// only flags reversals far outside that band.
const MONOTONE_SLACK: f64 = 0.25;

/// Structural invariants every returned [`Schedule`] must satisfy.
///
/// # Example
///
/// ```no_run
/// use exegpt::{PlanInvariants, Scheduler, SchedulerOptions};
/// # fn demo(scheduler: &Scheduler) -> Result<(), exegpt::ScheduleError> {
/// let schedule = scheduler.schedule(&SchedulerOptions::bounded(exegpt_units::Secs::new(2.5)))?;
/// // `schedule()` already debug_asserts this; tests can call it directly.
/// assert!(PlanInvariants::check(scheduler.simulator(), &schedule).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PlanInvariants;

/// The violations a [`PlanInvariants::check`] found, in evaluation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    violations: Vec<String>,
}

impl InvariantReport {
    /// The individual violation messages.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

impl std::fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} plan invariant violation(s):", self.violations.len())?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl PlanInvariants {
    /// Checks every invariant; returns all violations, not just the first.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantReport`] listing each violated invariant.
    pub fn check(sim: &Simulator, schedule: &Schedule) -> Result<(), InvariantReport> {
        let mut v = Vec::new();
        check_estimate(schedule, &mut v);
        check_memory(schedule, &mut v);
        check_probability_mass(sim, &mut v);
        match schedule.config {
            ScheduleConfig::Rra(cfg) => check_rra_plan(sim, &cfg, schedule, &mut v),
            ScheduleConfig::Waa(cfg) => check_waa_plan(sim, &cfg, &mut v),
        }
        check_latency_monotone(sim, schedule, &mut v);
        if v.is_empty() {
            Ok(())
        } else {
            Err(InvariantReport { violations: v })
        }
    }
}

fn check_estimate(schedule: &Schedule, v: &mut Vec<String>) {
    let est = &schedule.estimate;
    for (name, value) in [("latency", est.latency), ("breakdown.period", est.breakdown.period)] {
        if !value.is_finite() || value <= Secs::ZERO {
            v.push(format!("{name} must be finite and positive, got {value}"));
        }
    }
    if !est.throughput.is_finite() || est.throughput <= 0.0 {
        v.push(format!("throughput must be finite and positive, got {}", est.throughput));
    }
    for (name, value) in [
        ("breakdown.encode_time", est.breakdown.encode_time),
        ("breakdown.decode_time", est.breakdown.decode_time),
    ] {
        if !value.is_finite() || value < Secs::ZERO {
            v.push(format!("{name} must be finite and non-negative, got {value}"));
        }
    }
    if est.breakdown.decode_batch == 0 {
        v.push("breakdown.decode_batch must be at least 1".into());
    }
    if est.breakdown.stages == 0 {
        v.push("breakdown.stages must be at least 1".into());
    }
}

fn check_memory(schedule: &Schedule, v: &mut Vec<String>) {
    let mem = &schedule.estimate.memory;
    if mem.capacity == 0 {
        v.push("memory.capacity must be positive".into());
    }
    if mem.peak() > mem.capacity {
        v.push(format!(
            "peak per-GPU footprint {} exceeds usable capacity {} (negative KV headroom)",
            mem.peak(),
            mem.capacity
        ));
    }
}

fn check_probability_mass(sim: &Simulator, v: &mut Vec<String>) {
    for (name, dist) in [("input", sim.workload().input()), ("output", sim.workload().output())] {
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        if (total - 1.0).abs() > PMF_EPS {
            v.push(format!("{name} length pmf sums to {total}, expected 1 ± {PMF_EPS}"));
        }
        if dist.iter().any(|(_, p)| !p.is_finite() || p < 0.0) {
            v.push(format!("{name} length pmf contains a negative or non-finite mass"));
        }
    }
}

fn check_rra_plan(sim: &Simulator, cfg: &RraConfig, schedule: &Schedule, v: &mut Vec<String>) {
    let b_d = schedule.estimate.breakdown.decode_batch;
    let plan = match sim.rra_plan(cfg, b_d) {
        Ok(p) => p,
        Err(e) => {
            v.push(format!("RRA plan for the returned schedule is unresolvable: {e}"));
            return;
        }
    };
    let stages = plan.layout.num_stages();
    check_alloc("RRA enc_alloc", &plan.enc_alloc, stages, sim.enc_layers_total(), v);
    check_alloc("RRA dec_alloc", &plan.dec_alloc, stages, sim.dec_layers_total(), v);
}

fn check_waa_plan(sim: &Simulator, cfg: &WaaConfig, v: &mut Vec<String>) {
    let plan = match sim.waa_plan(cfg) {
        Ok(p) => p,
        Err(e) => {
            v.push(format!("WAA plan for the returned schedule is unresolvable: {e}"));
            return;
        }
    };
    if plan.n_enc == 0 {
        v.push("WAA plan assigns no GPUs to the encoding group".into());
    }
    if plan.b_d == 0 {
        v.push("WAA plan derives an empty decode pool".into());
    }
    check_alloc(
        "WAA enc_alloc",
        &plan.enc_alloc,
        plan.enc_layout.num_stages(),
        sim.enc_layers_total(),
        v,
    );
    check_alloc(
        "WAA dec_alloc",
        &plan.dec_alloc,
        plan.dec_layout.num_stages(),
        sim.dec_layers_total(),
        v,
    );
}

fn check_alloc(
    name: &str,
    alloc: &[usize],
    stages: usize,
    total_layers: usize,
    v: &mut Vec<String>,
) {
    if alloc.len() != stages {
        v.push(format!(
            "{name} covers {} stages but the layout has {stages} (incomplete stage assignment)",
            alloc.len()
        ));
    }
    let assigned: usize = alloc.iter().sum();
    if assigned != total_layers {
        v.push(format!("{name} assigns {assigned} layers but the model traverses {total_layers}"));
    }
    if alloc.contains(&0) {
        v.push(format!("{name} leaves a stage with zero layers"));
    }
}

/// Probes the configuration one `B_E` step up: the cost model may wobble
/// within tolerance, but a *large* latency drop for a strictly bigger batch
/// means the estimate surface the branch-and-bound searched is corrupt.
fn check_latency_monotone(sim: &Simulator, schedule: &Schedule, v: &mut Vec<String>) {
    let base = schedule.estimate.latency;
    let neighbor = match schedule.config {
        ScheduleConfig::Rra(cfg) => sim.evaluate_rra(&RraConfig::new(cfg.b_e + 1, cfg.n_d, cfg.tp)),
        ScheduleConfig::Waa(cfg) => {
            sim.evaluate_waa(&WaaConfig::new(cfg.b_e + 1, cfg.b_m, cfg.tp, cfg.variant))
        }
    };
    // An infeasible neighbour (memory, profile range) is not a violation.
    if let Ok(n) = neighbor {
        let floor = base * (1.0 - MONOTONE_SLACK);
        if n.latency < floor {
            v.push(format!(
                "latency at B_E+1 ({}) undercuts the schedule's own latency ({base}) by more \
                 than {:.0}% — non-monotone estimate surface",
                n.latency,
                MONOTONE_SLACK * 100.0
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exegpt_sim::Estimate;

    fn broken_schedule(mut est: Estimate, config: ScheduleConfig) -> Schedule {
        est.latency = Secs::new(f64::NAN);
        Schedule { config, estimate: est, evals: 0, cache_hits: 0 }
    }

    #[test]
    fn report_renders_each_violation() {
        let report = InvariantReport { violations: vec!["a".into(), "b".into()] };
        let text = report.to_string();
        assert!(text.contains("2 plan invariant violation(s)"));
        assert!(text.contains("\n  - a"));
        assert!(text.contains("\n  - b"));
        assert_eq!(report.violations().len(), 2);
    }

    #[test]
    fn estimate_sanity_catches_nan_latency() {
        let est = Estimate {
            latency: Secs::new(f64::NAN),
            throughput: 1.0,
            memory: exegpt_sim::MemoryReport {
                encoder_gpu: Default::default(),
                decoder_gpu: Default::default(),
                capacity: 1,
            },
            breakdown: exegpt_sim::Breakdown {
                encode_time: Secs::new(0.1),
                decode_time: Secs::new(0.1),
                period: Secs::new(0.1),
                stages: 1,
                decode_batch: 1,
            },
        };
        let s = broken_schedule(
            est,
            ScheduleConfig::Rra(RraConfig::new(1, 1, exegpt_sim::TpConfig::none())),
        );
        let mut v = Vec::new();
        check_estimate(&s, &mut v);
        assert!(v.iter().any(|m| m.contains("latency")));
    }

    #[test]
    fn memory_check_flags_overflow() {
        let est = Estimate {
            latency: Secs::new(1.0),
            throughput: 1.0,
            memory: exegpt_sim::MemoryReport {
                encoder_gpu: exegpt_model::MemoryFootprint {
                    param_bytes: 10,
                    kv_bytes: 10,
                    activation_bytes: 10,
                },
                decoder_gpu: Default::default(),
                capacity: 20,
            },
            breakdown: exegpt_sim::Breakdown {
                encode_time: Secs::new(0.1),
                decode_time: Secs::new(0.1),
                period: Secs::new(0.1),
                stages: 1,
                decode_batch: 1,
            },
        };
        let s = Schedule {
            config: ScheduleConfig::Rra(RraConfig::new(1, 1, exegpt_sim::TpConfig::none())),
            estimate: est,
            evals: 0,
            cache_hits: 0,
        };
        let mut v = Vec::new();
        check_memory(&s, &mut v);
        assert!(v.iter().any(|m| m.contains("exceeds usable capacity")));
    }

    #[test]
    fn real_schedules_satisfy_every_invariant() {
        let engine = crate::Engine::builder()
            .model(exegpt_model::ModelConfig::opt_13b())
            .cluster(exegpt_cluster::ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
            .workload(exegpt_sim::Workload::new(
                exegpt_dist::LengthDist::truncated_normal(64.0, 16.0, 128).expect("valid"),
                exegpt_dist::LengthDist::truncated_normal(32.0, 8.0, 64).expect("valid"),
            ))
            .build()
            .expect("builds");
        let schedule = engine.schedule(Secs::INFINITY).expect("schedules");
        let verdict = PlanInvariants::check(engine.simulator(), &schedule);
        assert!(verdict.is_ok(), "{}", verdict.err().map(|r| r.to_string()).unwrap_or_default());
    }

    #[test]
    fn alloc_check_flags_missing_layers_and_empty_stages() {
        let mut v = Vec::new();
        check_alloc("test", &[2, 0, 1], 4, 5, &mut v);
        assert!(v.iter().any(|m| m.contains("incomplete stage assignment")));
        assert!(v.iter().any(|m| m.contains("assigns 3 layers")));
        assert!(v.iter().any(|m| m.contains("zero layers")));
        v.clear();
        check_alloc("test", &[2, 2, 1], 3, 5, &mut v);
        assert!(v.is_empty());
    }
}
