//! Black-box search baselines for the scheduling problem.
//!
//! §5 of the paper notes the optimization problem "can be solved by applying
//! black-box optimization techniques such as Bayesian optimization", before
//! motivating the monotonic branch-and-bound. This module provides the
//! black-box side of that comparison: a budgeted random search over the same
//! integer box, used by the `sched_cost` bench to quantify what exploiting
//! monotonicity buys.

use exegpt_units::Secs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bnb::{BnbResult, Perf};

/// Budgeted uniform random search over `range1 × range2`.
///
/// Evaluates `budget` points drawn uniformly (with a deterministic seed) and
/// returns the best feasible one, in the same [`BnbResult`] shape as
/// [`bnb::optimize`](crate::bnb::optimize) for apples-to-apples comparison.
///
/// # Example
///
/// ```
/// use exegpt::bnb::Perf;
/// use exegpt::search::random_search;
/// use exegpt_units::Secs;
///
/// let r = random_search((1, 32), (1, 32), Secs::new(10.0), 200, 7, |x, y| Perf {
///     latency: Secs::new((x + y) as f64),
///     throughput: (x * y) as f64,
/// })
/// .expect("something feasible");
/// assert!(r.perf.latency <= Secs::new(10.0));
/// ```
pub fn random_search<F>(
    range1: (usize, usize),
    range2: (usize, usize),
    latency_bound: Secs,
    budget: usize,
    seed: u64,
    eval: F,
) -> Option<BnbResult>
where
    F: Fn(usize, usize) -> Perf,
{
    assert!(range1.0 <= range1.1, "range1 must be non-empty");
    assert!(range2.0 <= range2.1, "range2 must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<((usize, usize), Perf)> = None;
    let mut evals = 0;
    for _ in 0..budget {
        let x = rng.gen_range(range1.0..=range1.1);
        let y = rng.gen_range(range2.0..=range2.1);
        evals += 1;
        let p = eval(x, y);
        if p.satisfies(latency_bound)
            && p.throughput.is_finite()
            && best.is_none_or(|(_, b)| p.throughput > b.throughput)
        {
            best = Some(((x, y), p));
        }
    }
    best.map(|(point, perf)| BnbResult { point, perf, evals, complete: true })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_feasible_points_and_is_deterministic() {
        let eval = |x: usize, y: usize| Perf {
            latency: Secs::new((x + y) as f64),
            throughput: (x * y) as f64,
        };
        let a = random_search((1, 64), (1, 64), Secs::new(40.0), 500, 3, eval).expect("feasible");
        let b = random_search((1, 64), (1, 64), Secs::new(40.0), 500, 3, eval).expect("feasible");
        assert_eq!(a.point, b.point);
        assert!(a.perf.latency <= Secs::new(40.0));
        assert_eq!(a.evals, 500);
    }

    #[test]
    fn infeasible_space_returns_none() {
        let r = random_search((1, 8), (1, 8), Secs::new(0.5), 100, 1, |x, y| Perf {
            latency: Secs::new((x + y) as f64),
            throughput: 1.0,
        });
        assert!(r.is_none());
    }

    #[test]
    fn underperforms_bnb_at_matched_budget_on_a_hard_surface() {
        // A surface with a thin high-throughput ridge along the constraint
        // boundary: random search rarely lands on it, B&B walks to it.
        let eval = |x: usize, y: usize| Perf {
            latency: Secs::new((3 * x + y) as f64),
            throughput: (x * x * y) as f64,
        };
        let bound = Secs::new(700.0);
        let bnb = crate::bnb::optimize(
            (1, 256),
            (1, 256),
            &crate::bnb::BnbOptions { latency_bound: bound, ..Default::default() },
            eval,
        )
        .expect("feasible");
        let rnd = random_search((1, 256), (1, 256), bound, bnb.evals, 11, eval).expect("feasible");
        assert!(
            bnb.perf.throughput >= rnd.perf.throughput,
            "bnb {} < random {}",
            bnb.perf.throughput,
            rnd.perf.throughput
        );
    }
}
