//! Dynamic workload adjustment (paper §5.2).
//!
//! Both RRA and WAA assume consistent average encoder/decoder batch sizes,
//! but individual queries vary in length. The runtime therefore adjusts the
//! encoder batch at every encoding opportunity so that (a) the *encoder
//! workload* — the sum of input lengths in the admitted batch — stays within
//! a threshold of its scheduled average, and (b) the *decoder batch* is
//! nudged back toward its scheduled size when early terminations run ahead
//! of or behind expectation.

use exegpt_dist::convert::lossless_f64;

/// Runtime controller keeping encoder/decoder workloads near schedule.
///
/// # Example
///
/// ```
/// use exegpt::DynamicAdjuster;
///
/// // Scheduled: admit 4 queries of ~128 tokens each per encoding phase.
/// let adj = DynamicAdjuster::new(4, 128.0, 0.15);
/// // A queue of short inputs: more of them fit in the workload budget.
/// let admitted = adj.select_batch(&[32; 32], 0, 0);
/// assert!(admitted.len() > 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicAdjuster {
    base_b_e: usize,
    mean_input_len: f64,
    threshold_frac: f64,
}

/// How many queued queries past the greedy frontier the selector may
/// inspect when topping up a batch.
const LOOKAHEAD: usize = 64;

impl DynamicAdjuster {
    /// Creates a controller for a schedule that admits `base_b_e` queries of
    /// mean input length `mean_input_len` per encoding phase, keeping the
    /// admitted workload within `threshold_frac` of the average.
    ///
    /// # Panics
    ///
    /// Panics if `mean_input_len` is not positive or `threshold_frac` is
    /// negative.
    pub fn new(base_b_e: usize, mean_input_len: f64, threshold_frac: f64) -> Self {
        assert!(mean_input_len > 0.0, "mean input length must be positive");
        assert!(threshold_frac >= 0.0, "threshold must be non-negative");
        Self { base_b_e, mean_input_len, threshold_frac }
    }

    /// The scheduled (average) encoder workload in tokens.
    pub fn target_workload(&self) -> f64 {
        lossless_f64(self.base_b_e) * self.mean_input_len
    }

    /// Selects which of the `pending` queries (by input length, in queue
    /// order) to admit into the next encoder batch; returns their indices
    /// in increasing order.
    ///
    /// Selection fills the workload budget greedily in arrival order, with
    /// a bounded lookahead that tops the batch up with later short queries
    /// when the next-in-line query would overshoot — keeping the admitted
    /// workload inside the threshold band, as §5.2 requires. The
    /// decoder-pool feedback (`scheduled − current`) shifts the budget
    /// *within* that band, correcting pool drift gradually across phases.
    pub fn select_batch(
        &self,
        pending: &[usize],
        current_decode_batch: usize,
        scheduled_decode_batch: usize,
    ) -> Vec<usize> {
        let mut chosen = Vec::new();
        self.select_batch_into(pending, current_decode_batch, scheduled_decode_batch, &mut chosen);
        chosen
    }

    /// [`DynamicAdjuster::select_batch`] into a caller-provided buffer
    /// (cleared first), for hot loops that admit every round and should not
    /// allocate every round.
    pub fn select_batch_into(
        &self,
        pending: &[usize],
        current_decode_batch: usize,
        scheduled_decode_batch: usize,
        chosen: &mut Vec<usize>,
    ) {
        chosen.clear();
        if pending.is_empty() {
            return;
        }
        let target = self.target_workload();
        let lo = target * (1.0 - self.threshold_frac);
        let hi = target * (1.0 + self.threshold_frac);
        let deficit = lossless_f64(scheduled_decode_batch) - lossless_f64(current_decode_batch);
        let budget = (target + deficit * self.mean_input_len).clamp(lo, hi).max(
            // Degenerate schedules (B_E = 1) must still admit something.
            self.mean_input_len.min(target),
        );

        let mut workload = 0.0;
        let mut i = 0;
        while i < pending.len() && workload < budget {
            let len = lossless_f64(pending[i]);
            if chosen.is_empty() || workload + len <= hi {
                chosen.push(i);
                workload += len;
                i += 1;
                continue;
            }
            // The next query overshoots: look ahead for one that fits.
            let gap = hi - workload;
            let window_end = (i + 1 + LOOKAHEAD).min(pending.len());
            match (i + 1..window_end).find(|&j| lossless_f64(pending[j]) <= gap) {
                Some(j) => {
                    chosen.push(j);
                    workload += lossless_f64(pending[j]);
                }
                None => break,
            }
        }
        chosen.sort_unstable();
        chosen.dedup();
    }

    /// Convenience wrapper returning only the number of queries
    /// [`DynamicAdjuster::select_batch`] would admit.
    pub fn encoder_batch(
        &self,
        pending: &[usize],
        current_decode_batch: usize,
        scheduled_decode_batch: usize,
    ) -> usize {
        self.select_batch(pending, current_decode_batch, scheduled_decode_batch).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_scheduled_batch_for_average_inputs() {
        let adj = DynamicAdjuster::new(4, 100.0, 0.1);
        assert_eq!(adj.encoder_batch(&[100; 16], 0, 0), 4);
    }

    #[test]
    fn admits_more_short_queries() {
        let adj = DynamicAdjuster::new(4, 100.0, 0.1);
        assert!(adj.encoder_batch(&[25; 64], 0, 0) > 8);
    }

    #[test]
    fn admits_fewer_long_queries() {
        let adj = DynamicAdjuster::new(4, 100.0, 0.1);
        assert!(adj.encoder_batch(&[400; 8], 0, 0) <= 2);
    }

    #[test]
    fn always_admits_at_least_one_when_pending() {
        let adj = DynamicAdjuster::new(2, 10.0, 0.0);
        assert_eq!(adj.encoder_batch(&[10_000], 0, 0), 1);
        assert_eq!(adj.encoder_batch(&[], 0, 0), 0);
    }

    #[test]
    fn lookahead_tops_up_with_later_short_queries() {
        let adj = DynamicAdjuster::new(4, 100.0, 0.1);
        // Greedy stops at 300 (next is 400, overshoots 440); lookahead
        // finds the 90-token query at index 4.
        let chosen = adj.select_batch(&[150, 150, 400, 400, 90], 0, 0);
        assert_eq!(chosen, vec![0, 1, 4]);
    }

    #[test]
    fn workload_stays_within_the_threshold_band() {
        let adj = DynamicAdjuster::new(8, 100.0, 0.15);
        // A spread of lengths; every selected batch must land in the band
        // unless the queue runs dry.
        let queue: Vec<usize> = (0..200).map(|i| 40 + (i * 73) % 250).collect();
        let mut rest = queue.clone();
        for _ in 0..10 {
            let chosen = adj.select_batch(&rest, 0, 0);
            if chosen.len() == rest.len() {
                break;
            }
            let sum: usize = chosen.iter().map(|&i| rest[i]).sum();
            assert!((640..=920).contains(&sum), "admitted workload {sum} outside the band");
            let keep: Vec<usize> = (0..rest.len()).filter(|i| !chosen.contains(i)).collect();
            rest = keep.into_iter().map(|i| rest[i]).collect();
        }
    }

    #[test]
    fn decode_feedback_shifts_within_the_band() {
        let adj = DynamicAdjuster::new(4, 100.0, 0.1);
        // Pool short of schedule: budget rises to the band's top.
        let boosted = adj.encoder_batch(&[100; 32], 16, 32);
        // Pool over schedule: budget drops to the band's bottom.
        let trimmed = adj.encoder_batch(&[100; 32], 48, 32);
        assert!(boosted >= trimmed, "boosted {boosted} vs trimmed {trimmed}");
        assert!((3..=5).contains(&boosted));
        assert!((3..=5).contains(&trimmed));
    }

    #[test]
    #[should_panic(expected = "mean input length")]
    fn zero_mean_panics() {
        let _ = DynamicAdjuster::new(4, 0.0, 0.1);
    }
}
