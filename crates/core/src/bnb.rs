//! Branch-and-bound for monotonic optimization (paper §5.1, Algorithm 1).
//!
//! The scheduling problem — maximize throughput subject to a latency bound —
//! is monotonic: along each (suitably oriented) control-variable axis both
//! the objective and the constraint are non-decreasing. This module
//! implements the paper's branch-and-bound over 2-D integer boxes:
//!
//! 1. If the box's maximal corner meets the latency bound, it is optimal.
//! 2. Otherwise split the box (heuristically along the axis whose extreme
//!    corner looks more promising), bound each child by its maximal corner's
//!    throughput, discard children whose *minimal* corner already violates
//!    the bound, and keep the best feasible corner seen.
//! 3. Tolerances `ε_L`/`ε_T` keep the search robust when the functions are
//!    only monotone within small violations (as measured in Table 5).
//! 4. An optional warm start ([`BnbOptions::warm_start`]) evaluates a seed
//!    point — typically the incumbent plan of an incremental replan — and
//!    installs it as the initial incumbent, so near-optimal blocks are
//!    pruned from the first pop instead of only after the search has
//!    rediscovered the incumbent. Ties on throughput break to the
//!    lexicographically smaller point, which makes the returned point
//!    independent of the seed.
//!
//! Axis orientation is the caller's job: map each raw control variable so
//! that *increasing* the mapped coordinate increases both throughput and
//! latency (e.g. RRA's `N_D` enters as the encoding frequency `F_E`).

use std::collections::{BTreeMap, BinaryHeap};

use exegpt_units::Secs;

/// Evaluated performance of one configuration point.
///
/// Infeasible points (out of memory, structurally invalid) are represented
/// as [`Perf::INFEASIBLE`]: infinite latency keeps them out of the candidate
/// set, and infinite throughput keeps them from wrongly pruning blocks when
/// they appear as an upper-bound corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perf {
    /// Latency of the configuration.
    pub latency: Secs,
    /// Throughput in queries per second.
    pub throughput: f64,
}

impl Perf {
    /// The sentinel for configurations that cannot run.
    pub const INFEASIBLE: Perf = Perf { latency: Secs::INFINITY, throughput: f64::INFINITY };

    /// Whether this point can be a solution under `bound`.
    pub fn satisfies(&self, bound: Secs) -> bool {
        self.latency.is_finite() && self.latency <= bound
    }
}

/// Tolerances and limits for one branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnbOptions {
    /// The latency bound `L_b` (`Secs::INFINITY` allowed).
    pub latency_bound: Secs,
    /// Latency tolerance `ε_L`: blocks whose minimal corner exceeds
    /// `L_b + ε_L` are discarded.
    pub eps_latency: Secs,
    /// Throughput tolerance `ε_T`, *relative*: a block is pruned only when
    /// its upper bound times `(1 + ε_T)` still trails the incumbent, so a
    /// larger tolerance keeps more blocks alive (the paper's robustness
    /// knob against non-monotonicity).
    pub eps_throughput: f64,
    /// Safety valve on the number of distinct evaluations.
    pub max_evals: usize,
    /// Seed point (in oriented coordinates) evaluated and installed as the
    /// initial incumbent before any block is popped, so pruning bites from
    /// the first node. Points outside the search box are clamped onto it.
    /// Seeding never changes the returned point — ties are broken
    /// lexicographically, so warm and cold runs agree — it only shrinks the
    /// explored frontier. The natural seed is the incumbent plan of an
    /// incremental replan.
    pub warm_start: Option<(usize, usize)>,
    /// External lower bound on the throughput the caller already holds from
    /// *other* searches of a portfolio: blocks whose upper bound times
    /// `(1 + ε_T)` trail the floor are pruned even before this run finds its
    /// own incumbent. The floor must be an *achieved* throughput (never above
    /// the portfolio's true optimum); then the returned point is unchanged
    /// whenever it reaches the floor — the only case a portfolio merge can
    /// select — and also-ran searches collapse to a handful of corner
    /// evaluations.
    pub prune_floor: Option<f64>,
}

impl Default for BnbOptions {
    fn default() -> Self {
        Self {
            latency_bound: Secs::INFINITY,
            eps_latency: Secs::ZERO,
            eps_throughput: 0.0,
            max_evals: 20_000,
            warm_start: None,
            prune_floor: None,
        }
    }
}

/// Outcome of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnbResult {
    /// The best feasible point found, in the caller's oriented coordinates.
    pub point: (usize, usize),
    /// Its evaluated performance.
    pub perf: Perf,
    /// Number of distinct configuration evaluations performed.
    pub evals: usize,
    /// Whether the search drained its queue (`false` = the `max_evals`
    /// budget cut exploration short, so `point` may be sub-optimal).
    pub complete: bool,
}

#[derive(Debug, Clone, Copy)]
struct Block {
    lo: (usize, usize),
    hi: (usize, usize),
    upper_thr: f64,
}

impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        self.upper_thr.total_cmp(&other.upper_thr).is_eq()
    }
}
impl Eq for Block {}
impl PartialOrd for Block {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Block {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.upper_thr.total_cmp(&other.upper_thr)
    }
}

/// Runs the branch-and-bound search over the integer box
/// `range1 × range2` (both inclusive).
///
/// `eval` maps an oriented point to its performance; return
/// [`Perf::INFEASIBLE`] for configurations that cannot run. Evaluations are
/// memoized, so `eval` may be expensive.
///
/// Returns `None` when no evaluated point satisfies the latency bound.
///
/// # Panics
///
/// Panics if a range is empty (`lo > hi`).
///
/// # Example
///
/// ```
/// use exegpt::bnb::{optimize, BnbOptions, Perf};
/// use exegpt_units::Secs;
///
/// // throughput = x·y, latency = x + y, bound 10: best is on x + y = 10.
/// let opts = BnbOptions { latency_bound: Secs::new(10.0), ..Default::default() };
/// let r = optimize((1, 8), (1, 8), &opts,
///     |x, y| Perf { latency: Secs::new((x + y) as f64), throughput: (x * y) as f64 })
///     .expect("feasible");
/// assert_eq!(r.perf.throughput, 25.0); // x = y = 5
/// ```
pub fn optimize<F>(
    range1: (usize, usize),
    range2: (usize, usize),
    opts: &BnbOptions,
    eval: F,
) -> Option<BnbResult>
where
    F: Fn(usize, usize) -> Perf,
{
    assert!(range1.0 <= range1.1, "range1 must be non-empty");
    assert!(range2.0 <= range2.1, "range2 must be non-empty");

    let mut memo: BTreeMap<(usize, usize), Perf> = BTreeMap::new();
    let mut evals = 0usize;
    let mut best: Option<((usize, usize), Perf)> = None;

    macro_rules! ev {
        ($p:expr) => {{
            let p = $p;
            if let Some(hit) = memo.get(&p) {
                *hit
            } else {
                evals += 1;
                let perf = eval(p.0, p.1);
                memo.insert(p, perf);
                perf
            }
        }};
    }
    // Ties on throughput go to the lexicographically smaller point. This
    // makes the winner a function of the *set* of evaluated feasible points
    // rather than their discovery order, which is what lets a warm-started
    // run return the same point as a cold one: pruning is strict, so every
    // block bounding a tying maximum is explored in both runs.
    macro_rules! consider {
        ($p:expr, $perf:expr) => {{
            let (p, perf) = ($p, $perf);
            if perf.satisfies(opts.latency_bound)
                && perf.throughput.is_finite()
                && best.map_or(true, |(bp, b)| {
                    perf.throughput > b.throughput || (perf.throughput == b.throughput && p < bp)
                })
            {
                best = Some((p, perf));
            }
        }};
    }

    // The maximal corner of the whole space: if it meets the bound it is
    // the optimum outright (Algorithm 1's boundary check). Checked before
    // any seeding so warm and cold runs return the identical corner.
    let top = (range1.1, range2.1);
    let p_top = ev!(top);
    consider!(top, p_top);
    if p_top.satisfies(opts.latency_bound) {
        return best.map(|(point, perf)| BnbResult { point, perf, evals, complete: true });
    }

    if let Some(seed) = opts.warm_start {
        let seed = (seed.0.clamp(range1.0, range1.1), seed.1.clamp(range2.0, range2.1));
        let p_seed = ev!(seed);
        consider!(seed, p_seed);
    }

    let mut queue: BinaryHeap<Block> = BinaryHeap::new();
    let lo0 = (range1.0, range2.0);
    let p_lo = ev!(lo0);
    consider!(lo0, p_lo);
    if p_lo.latency < opts.latency_bound + opts.eps_latency {
        queue.push(Block { lo: lo0, hi: top, upper_thr: f64::INFINITY });
    }

    let mut complete = true;
    while let Some(block) = queue.pop() {
        if evals >= opts.max_evals {
            complete = false;
            break;
        }
        // Prune blocks that cannot beat the incumbent — or the caller's
        // external floor — even with the ε_T slack.
        let floor = opts.prune_floor.unwrap_or(f64::NEG_INFINITY);
        let cutoff = best.map_or(floor, |(_, b)| b.throughput.max(floor));
        if block.upper_thr * (1.0 + opts.eps_throughput) < cutoff {
            continue;
        }
        let (lo, hi) = (block.lo, block.hi);
        if lo == hi {
            // Single cell: its corners are all the same evaluated point.
            continue;
        }

        // Split heuristic (Algorithm 1 lines 7-10): look at the top-left and
        // bottom-right corners; follow the better feasible one.
        let tl = (lo.0, hi.1);
        let br = (hi.0, lo.1);
        let p_tl = ev!(tl);
        let p_br = ev!(br);
        consider!(tl, p_tl);
        consider!(br, p_br);

        let can_v = hi.0 > lo.0;
        let can_h = hi.1 > lo.1;
        let tl_ok = p_tl.satisfies(opts.latency_bound) && p_tl.throughput.is_finite();
        let br_ok = p_br.satisfies(opts.latency_bound) && p_br.throughput.is_finite();
        let vertical = if !can_h {
            true
        } else if !can_v {
            false
        } else if tl_ok && (!br_ok || p_tl.throughput >= p_br.throughput) {
            true
        } else if br_ok {
            false
        } else {
            // Neither satisfies: split the longer dimension.
            hi.0 - lo.0 >= hi.1 - lo.1
        };

        let (b1, b2) = if vertical {
            let m = lo.0 + (hi.0 - lo.0) / 2;
            (
                Block { lo, hi: (m, hi.1), upper_thr: 0.0 },
                Block { lo: (m + 1, lo.1), hi, upper_thr: 0.0 },
            )
        } else {
            let m = lo.1 + (hi.1 - lo.1) / 2;
            (
                Block { lo, hi: (hi.0, m), upper_thr: 0.0 },
                Block { lo: (lo.0, m + 1), hi, upper_thr: 0.0 },
            )
        };

        for mut child in [b1, b2] {
            let upp_corner = child.hi;
            let low_corner = child.lo;
            let p_upp = ev!(upp_corner);
            let p_low = ev!(low_corner);
            consider!(upp_corner, p_upp);
            consider!(low_corner, p_low);
            // Line 14: keep only blocks whose minimal corner can still meet
            // the (tolerance-relaxed) bound.
            if p_low.latency < opts.latency_bound + opts.eps_latency {
                child.upper_thr = p_upp.throughput;
                queue.push(child);
            }
        }
    }

    best.map(|(point, perf)| BnbResult { point, perf, evals, complete })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(bound: f64) -> BnbOptions {
        BnbOptions { latency_bound: Secs::new(bound), ..Default::default() }
    }

    /// Brute-force reference optimum.
    fn brute<F: Fn(usize, usize) -> Perf>(
        r1: (usize, usize),
        r2: (usize, usize),
        bound: f64,
        eval: &F,
    ) -> Option<f64> {
        let mut best = None;
        for x in r1.0..=r1.1 {
            for y in r2.0..=r2.1 {
                let p = eval(x, y);
                if p.satisfies(Secs::new(bound)) && p.throughput.is_finite() {
                    best = Some(best.map_or(p.throughput, |b: f64| b.max(p.throughput)));
                }
            }
        }
        best
    }

    #[test]
    fn finds_the_monotone_optimum() {
        let eval = |x: usize, y: usize| Perf {
            latency: Secs::new((x + 2 * y) as f64),
            throughput: (x * x + y) as f64,
        };
        for bound in [5.0, 17.0, 40.0, 300.0] {
            let r = optimize((1, 64), (1, 64), &opts(bound), eval);
            let want = brute((1, 64), (1, 64), bound, &eval);
            assert_eq!(r.map(|r| r.perf.throughput), want, "bound {bound}");
        }
    }

    #[test]
    fn relaxed_bound_returns_max_corner_immediately() {
        let mut count = std::cell::Cell::new(0);
        let _ = &mut count;
        let r = optimize((1, 100), (1, 100), &opts(f64::INFINITY), |x, y| {
            count.set(count.get() + 1);
            Perf { latency: Secs::new((x + y) as f64), throughput: (x * y) as f64 }
        })
        .expect("feasible");
        assert_eq!(r.point, (100, 100));
        assert_eq!(count.get(), 1, "only the max corner needs evaluating");
    }

    #[test]
    fn infeasible_everywhere_returns_none() {
        let r = optimize((1, 16), (1, 16), &opts(0.5), |x, y| Perf {
            latency: Secs::new((x + y) as f64),
            throughput: 1.0,
        });
        assert!(r.is_none());
    }

    #[test]
    fn oom_regions_do_not_hide_the_optimum() {
        // Points with x*y > 400 are "out of memory"; the bound excludes the
        // top corner, so the search must navigate around both obstacles.
        let eval = |x: usize, y: usize| {
            if x * y > 400 {
                Perf::INFEASIBLE
            } else {
                Perf { latency: Secs::new((x + y) as f64), throughput: (x * y) as f64 }
            }
        };
        let r = optimize((1, 64), (1, 64), &opts(45.0), eval).expect("feasible");
        let want = brute((1, 64), (1, 64), 45.0, &eval).expect("some feasible");
        assert_eq!(r.perf.throughput, want);
    }

    #[test]
    fn evaluates_far_fewer_points_than_brute_force() {
        let eval = |x: usize, y: usize| Perf {
            latency: Secs::new((3 * x + y) as f64),
            throughput: (x * y + x) as f64,
        };
        let r = optimize((1, 512), (1, 512), &opts(600.0), eval).expect("feasible");
        let want = brute((1, 512), (1, 512), 600.0, &eval).expect("some feasible");
        assert_eq!(r.perf.throughput, want);
        assert!(r.evals < 512 * 512 / 20, "expected large pruning, used {} evals", r.evals);
    }

    #[test]
    fn tolerances_absorb_small_non_monotonicity() {
        // A monotone surface with a deterministic +-2% ripple.
        let eval = |x: usize, y: usize| {
            let ripple = 1.0 + 0.02 * (((x * 7 + y * 13) % 5) as f64 - 2.0) / 2.0;
            Perf {
                latency: Secs::new((x + y) as f64 * ripple),
                throughput: (x * y) as f64 * ripple,
            }
        };
        let o = BnbOptions {
            latency_bound: Secs::new(60.0),
            eps_latency: Secs::new(2.0),
            eps_throughput: 0.05,
            max_evals: 20_000,
            warm_start: None,
            prune_floor: None,
        };
        let r = optimize((1, 64), (1, 64), &o, eval).expect("feasible");
        let want = brute((1, 64), (1, 64), 60.0, &eval).expect("some feasible");
        assert!(r.perf.throughput >= want * 0.95, "found {} vs brute {want}", r.perf.throughput);
    }

    #[test]
    fn single_cell_ranges_work() {
        let r = optimize((3, 3), (4, 4), &opts(100.0), |x, y| Perf {
            latency: Secs::new((x + y) as f64),
            throughput: (x * y) as f64,
        })
        .expect("feasible");
        assert_eq!(r.point, (3, 4));
        assert_eq!(r.perf.throughput, 12.0);
    }

    #[test]
    fn single_row_and_column_ranges_work() {
        let eval = |x: usize, y: usize| Perf {
            latency: Secs::new((x + y) as f64),
            throughput: (x * y) as f64,
        };
        let row = optimize((1, 32), (5, 5), &opts(20.0), eval).expect("feasible");
        assert_eq!(row.perf.throughput, brute((1, 32), (5, 5), 20.0, &eval).expect("any"));
        let col = optimize((5, 5), (1, 32), &opts(20.0), eval).expect("feasible");
        assert_eq!(col.perf.throughput, brute((5, 5), (1, 32), 20.0, &eval).expect("any"));
    }

    #[test]
    #[should_panic(expected = "range1 must be non-empty")]
    fn empty_range_panics() {
        let _ = optimize((5, 4), (1, 2), &opts(1.0), |_, _| Perf::INFEASIBLE);
    }

    #[test]
    fn warm_start_matches_cold_search() {
        // On both the smooth and the OOM-pocked surface, seeding from any
        // point — including the optimum itself — returns the cold result.
        let smooth = |x: usize, y: usize| Perf {
            latency: Secs::new((x + 2 * y) as f64),
            throughput: (x * x + y) as f64,
        };
        let oom = |x: usize, y: usize| {
            if x * y > 400 {
                Perf::INFEASIBLE
            } else {
                Perf { latency: Secs::new((x + y) as f64), throughput: (x * y) as f64 }
            }
        };
        for (bound, eval) in
            [(17.0, &smooth as &dyn Fn(usize, usize) -> Perf), (40.0, &smooth), (45.0, &oom)]
        {
            let cold = optimize((1, 64), (1, 64), &opts(bound), eval).expect("feasible");
            for seed in [(1, 1), (64, 64), (13, 7), cold.point, (100, 100)] {
                let o = BnbOptions { warm_start: Some(seed), ..opts(bound) };
                let warm = optimize((1, 64), (1, 64), &o, eval).expect("feasible");
                assert_eq!(warm.point, cold.point, "bound {bound} seed {seed:?}");
                assert_eq!(warm.perf, cold.perf, "bound {bound} seed {seed:?}");
            }
            // Seeding with the known optimum never costs extra work beyond
            // the seed evaluation itself.
            let o = BnbOptions { warm_start: Some(cold.point), ..opts(bound) };
            let warm = optimize((1, 64), (1, 64), &o, eval).expect("feasible");
            assert!(
                warm.evals <= cold.evals + 1,
                "bound {bound}: warm {} vs cold {} evals",
                warm.evals,
                cold.evals
            );
        }
    }

    #[test]
    fn a_prune_floor_collapses_also_ran_searches() {
        let eval = |x: usize, y: usize| Perf {
            latency: Secs::new((3 * x + y) as f64),
            throughput: (x * y + x) as f64,
        };
        let cold = optimize((1, 512), (1, 512), &opts(600.0), eval).expect("feasible");
        // A floor at (or below) the true optimum never changes the answer.
        for floor in [0.0, cold.perf.throughput / 2.0, cold.perf.throughput] {
            let o = BnbOptions { prune_floor: Some(floor), ..opts(600.0) };
            let floored = optimize((1, 512), (1, 512), &o, eval).expect("feasible");
            assert_eq!(floored.point, cold.point, "floor {floor}");
            assert_eq!(floored.perf, cold.perf, "floor {floor}");
            assert!(floored.evals <= cold.evals, "floor {floor} must not add work");
        }
        // A floor the space cannot reach cuts the search to a few corners
        // (the portfolio merge ignores such a search's return entirely).
        let o = BnbOptions { prune_floor: Some(cold.perf.throughput * 2.0), ..opts(600.0) };
        let hopeless = optimize((1, 512), (1, 512), &o, eval).expect("still returns its best");
        assert!(hopeless.complete);
        assert!(
            hopeless.evals * 10 < cold.evals,
            "floored {} vs cold {} evals",
            hopeless.evals,
            cold.evals
        );
    }

    #[test]
    fn ties_break_to_the_lexicographically_smaller_point() {
        // A flat feasible plateau: every run, seeded or not, must settle on
        // the smallest evaluated point rather than the discovery order.
        let eval =
            |x: usize, y: usize| Perf { latency: Secs::new((x + y) as f64), throughput: 1.0 };
        let cold = optimize((1, 8), (1, 8), &opts(10.0), eval).expect("feasible");
        assert_eq!(cold.point, (1, 1));
        for seed in [(4, 4), (8, 1), (1, 8)] {
            let o = BnbOptions { warm_start: Some(seed), ..opts(10.0) };
            let warm = optimize((1, 8), (1, 8), &o, eval).expect("feasible");
            assert_eq!(warm.point, (1, 1), "seed {seed:?}");
        }
    }

    #[test]
    fn complete_reflects_the_eval_budget() {
        let eval = |x: usize, y: usize| Perf {
            latency: Secs::new((3 * x + y) as f64),
            throughput: (x * y + x) as f64,
        };
        let full = optimize((1, 512), (1, 512), &opts(600.0), eval).expect("feasible");
        assert!(full.complete, "unbudgeted run drains its queue");
        let starved =
            optimize((1, 512), (1, 512), &BnbOptions { max_evals: 8, ..opts(600.0) }, eval);
        if let Some(r) = starved {
            assert!(!r.complete, "budget cut exploration short");
        }
    }

    #[test]
    fn eval_budget_is_respected() {
        let o = BnbOptions {
            latency_bound: Secs::new(1e9),
            eps_latency: Secs::new(1e12),
            max_evals: 10,
            ..opts(1e9)
        };
        // Bound excludes nothing but eps_latency keeps all blocks alive;
        // use an anti-monotone surface to force exploration.
        let r = optimize((1, 4096), (1, 4096), &o, |x, y| Perf {
            latency: Secs::new(2e9 - (x + y) as f64),
            throughput: 1.0 / (x * y) as f64,
        });
        // Never runs away; may or may not find something, but terminates.
        if let Some(r) = r {
            assert!(r.evals <= 40, "evals bounded, got {}", r.evals);
        }
    }
}
