//! The batteries-included entry point tying profiler, simulator and
//! scheduler together (the whole Figure 2 pipeline).

use std::sync::Arc;

use exegpt_cluster::{ClusterSpec, LoadCostModel, LoadSource};
use exegpt_model::ModelConfig;
use exegpt_profiler::{LayerProfile, ProfileOptions, Profiler};
use exegpt_sim::{Simulator, Workload};
use exegpt_units::Secs;

use crate::error::ScheduleError;
use crate::scheduler::{Replan, ReplanDelta, Schedule, Scheduler, SchedulerOptions};

/// End-to-end ExeGPT pipeline: profile once, then schedule for any latency
/// bound or workload (paper Figure 2).
///
/// See the crate-level docs for a full example.
#[derive(Debug, Clone)]
pub struct Engine {
    scheduler: Scheduler,
    load_cost: LoadCostModel,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Finds the best schedule for a latency bound
    /// ([`Secs::INFINITY`] for unconstrained), across all policies.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`].
    pub fn schedule(&self, latency_bound: Secs) -> Result<Schedule, ScheduleError> {
        self.scheduler.schedule(&SchedulerOptions::bounded(latency_bound))
    }

    /// Finds the best schedule with full option control.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`].
    pub fn schedule_with(&self, opts: &SchedulerOptions) -> Result<Schedule, ScheduleError> {
        self.scheduler.schedule(opts)
    }

    /// The underlying scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &Simulator {
        self.scheduler.simulator()
    }

    /// Returns an engine for the same deployment serving a different
    /// workload (re-scheduling after a distribution change, §7.6; the
    /// profile is reused, as profiling is per model/cluster).
    pub fn with_workload(&self, workload: Workload) -> Self {
        Self {
            scheduler: Scheduler::new(self.simulator().with_workload(workload)),
            load_cost: self.load_cost.clone(),
        }
    }

    /// Returns an engine for the same model and workload on a different
    /// cluster — the fault-handling path: after device failures the serving
    /// loop replans onto `ClusterSpec::survivors`, reusing the profile
    /// (valid because degraded topologies keep the profiled device and link
    /// types). The load-cost model is rebuilt for the new topology so
    /// [`deploy_time`](Engine::deploy_time) prices redeployment on the
    /// surviving devices.
    pub fn with_cluster(&self, cluster: ClusterSpec) -> Self {
        Self {
            load_cost: LoadCostModel::new(cluster.clone()),
            scheduler: Scheduler::new(self.simulator().with_cluster(cluster)),
        }
    }

    /// Re-schedules *in place* for a new workload on the warm engine: the
    /// profile (the expensive, per-model/cluster part, §7.7) is reused,
    /// only the workload-dependent state is rebuilt, and the engine is left
    /// serving `workload` afterwards. This is the online path the serving
    /// loop takes when drift is detected (§5.2 / §7.6): a fresh
    /// `Engine::builder().build()` would re-profile, which is exactly what
    /// a live reschedule must avoid.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`]. On error the engine still serves the
    /// new workload (scheduling is side-effect free).
    pub fn reschedule(
        &mut self,
        workload: Workload,
        opts: &SchedulerOptions,
    ) -> Result<Schedule, ScheduleError> {
        *self = self.with_workload(workload);
        self.schedule_with(opts)
    }

    /// Like [`Engine::reschedule`], but replans *incrementally* from the
    /// schedule currently being served: only the incumbent's neighborhood
    /// is searched and the rest of the portfolio is certified away (see
    /// [`Scheduler::reschedule_from`]), with a verified fallback to the
    /// full search. The chosen plan is identical to what
    /// [`Engine::reschedule`] would pick; only the replan latency differs.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`]. On error the engine still serves the
    /// new workload (scheduling is side-effect free).
    pub fn reschedule_incremental(
        &mut self,
        workload: Workload,
        incumbent: &Schedule,
        opts: &SchedulerOptions,
    ) -> Result<Replan, ScheduleError> {
        *self = self.with_workload(workload);
        let delta = ReplanDelta { gpu_delta: 0, workload_changed: true };
        self.scheduler.reschedule_from(incumbent, delta, opts)
    }

    /// Incremental replan on the *current* engine state — the fault path:
    /// call [`Engine::with_cluster`] (or [`Engine::with_workload`]) first,
    /// describe what changed in `delta`, and pass the plan that was being
    /// served as the incumbent.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`].
    pub fn replan_from(
        &self,
        incumbent: &Schedule,
        delta: ReplanDelta,
        opts: &SchedulerOptions,
    ) -> Result<Replan, ScheduleError> {
        self.scheduler.reschedule_from(incumbent, delta, opts)
    }

    /// Estimated cost of (re-)deploying the model according to a new
    /// schedule (paper §7.7, Table 4): loading weights from SSD on first
    /// deployment or from host DRAM on re-deployment.
    pub fn deploy_time(&self, source: LoadSource) -> Secs {
        let sim = self.simulator();
        self.load_cost.load_time(sim.model().param_bytes(), sim.cluster().total_gpus(), source)
    }
}

/// Builder for [`Engine`]: supply a model, cluster and workload; profiling
/// runs at `build()` (once per model/cluster, §7.7).
#[derive(Debug, Default)]
pub struct EngineBuilder {
    model: Option<ModelConfig>,
    cluster: Option<ClusterSpec>,
    workload: Option<Workload>,
    profile: Option<Arc<LayerProfile>>,
    profile_options: Option<ProfileOptions>,
}

impl EngineBuilder {
    /// Sets the model to serve.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the GPU cluster to serve on.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Sets the sequence-length workload.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Supplies a pre-computed profile (skips profiling in `build`).
    pub fn profile(mut self, profile: Arc<LayerProfile>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Overrides the profiling sweep options.
    pub fn profile_options(mut self, opts: ProfileOptions) -> Self {
        self.profile_options = Some(opts);
        self
    }

    /// Profiles (if needed) and assembles the engine.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::MissingComponent`] if a required part was
    /// not supplied, or a profiling error.
    pub fn build(self) -> Result<Engine, ScheduleError> {
        let model = self.model.ok_or(ScheduleError::MissingComponent { what: "model" })?;
        let cluster = self.cluster.ok_or(ScheduleError::MissingComponent { what: "cluster" })?;
        let workload = self.workload.ok_or(ScheduleError::MissingComponent { what: "workload" })?;
        let profile = match self.profile {
            Some(p) => p,
            None => {
                let opts = self.profile_options.unwrap_or_default();
                Arc::new(Profiler::new(model.clone(), cluster.clone()).run(&opts)?)
            }
        };
        let sim = Simulator::new(model, cluster.clone(), profile, workload);
        Ok(Engine { scheduler: Scheduler::new(sim), load_cost: LoadCostModel::new(cluster) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exegpt_dist::LengthDist;

    #[test]
    fn builder_requires_all_components() {
        let err = Engine::builder().build().expect_err("missing everything");
        assert!(matches!(err, ScheduleError::MissingComponent { what: "model" }));
        let err =
            Engine::builder().model(ModelConfig::opt_13b()).build().expect_err("missing cluster");
        assert!(matches!(err, ScheduleError::MissingComponent { what: "cluster" }));
    }

    #[test]
    fn reschedule_swaps_workload_and_reuses_profile() {
        let mut engine = Engine::builder()
            .model(ModelConfig::opt_13b())
            .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
            .workload(Workload::new(
                LengthDist::point_mass(64, 128).expect("valid"),
                LengthDist::point_mass(32, 64).expect("valid"),
            ))
            .build()
            .expect("builds");
        let profile = std::sync::Arc::clone(engine.simulator().profile());
        let before = engine.schedule(Secs::INFINITY).expect("schedules");
        let longer = Workload::new(
            LengthDist::point_mass(64, 128).expect("valid"),
            LengthDist::point_mass(48, 96).expect("valid"),
        );
        let after = engine
            .reschedule(longer.clone(), &SchedulerOptions::bounded(Secs::INFINITY))
            .expect("reschedules");
        assert!(std::sync::Arc::ptr_eq(&profile, engine.simulator().profile()), "profile reused");
        assert_eq!(engine.simulator().workload(), &longer, "engine now serves the new workload");
        // Longer outputs cost throughput; the schedules genuinely differ.
        assert!(after.estimate.throughput < before.estimate.throughput);
    }

    #[test]
    fn deploy_time_is_slower_from_ssd() {
        let engine = Engine::builder()
            .model(ModelConfig::opt_13b())
            .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
            .workload(Workload::new(
                LengthDist::point_mass(64, 128).expect("valid"),
                LengthDist::point_mass(32, 64).expect("valid"),
            ))
            .build()
            .expect("builds");
        assert!(engine.deploy_time(LoadSource::Ssd) > engine.deploy_time(LoadSource::Dram));
    }
}
