//! Error types for the scheduling crate.

use exegpt_cluster::ClusterError;
use exegpt_profiler::ProfileError;
use exegpt_sim::SimError;
use exegpt_units::Secs;

/// Errors produced while building an engine or searching for a schedule.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No configuration of any requested policy satisfies the latency bound
    /// on this cluster (the paper's "NS" outcome).
    NoFeasibleSchedule {
        /// The latency bound that could not be met.
        latency_bound: Secs,
    },
    /// The search was configured with invalid parameters.
    InvalidOptions {
        /// Which option was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: String,
    },
    /// A required engine component was not supplied to the builder.
    MissingComponent {
        /// The component that is missing.
        what: &'static str,
    },
    /// Profiling the (model, cluster) pair failed.
    Profile(ProfileError),
    /// The cluster specification was invalid.
    Cluster(ClusterError),
    /// A simulator failure not attributable to a single candidate (candidate
    /// infeasibilities are handled internally by the search).
    Sim(SimError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoFeasibleSchedule { latency_bound } => {
                write!(
                    f,
                    "no schedule satisfies the latency bound of {} s",
                    latency_bound.as_secs()
                )
            }
            ScheduleError::InvalidOptions { what, why } => {
                write!(f, "invalid scheduler option `{what}`: {why}")
            }
            ScheduleError::MissingComponent { what } => {
                write!(f, "engine builder is missing `{what}`")
            }
            ScheduleError::Profile(e) => write!(f, "profiling failed: {e}"),
            ScheduleError::Cluster(e) => write!(f, "cluster setup failed: {e}"),
            ScheduleError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::Profile(e) => Some(e),
            ScheduleError::Cluster(e) => Some(e),
            ScheduleError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProfileError> for ScheduleError {
    fn from(e: ProfileError) -> Self {
        ScheduleError::Profile(e)
    }
}

impl From<ClusterError> for ScheduleError {
    fn from(e: ClusterError) -> Self {
        ScheduleError::Cluster(e)
    }
}

impl From<SimError> for ScheduleError {
    fn from(e: SimError) -> Self {
        ScheduleError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reports_bound() {
        let e = ScheduleError::NoFeasibleSchedule { latency_bound: Secs::new(3.1) };
        assert!(e.to_string().contains("3.1"));
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error;
        let e: ScheduleError = SimError::NoSteadyState { why: "x".into() }.into();
        assert!(e.source().is_some());
    }
}
