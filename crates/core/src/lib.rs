//! ExeGPT: constraint-aware resource scheduling for LLM inference.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*ExeGPT: Constraint-Aware Resource Scheduling for LLM Inference*,
//! ASPLOS 2024): given a latency constraint, find — and describe how to run —
//! the execution schedule that maximizes inference throughput.
//!
//! The pieces, mirroring the paper:
//!
//! * [`Scheduler`] — the XScheduler. For each scheduling policy
//!   ([`Policy::Rra`], [`Policy::WaaCompute`], [`Policy::WaaMemory`]) and
//!   each partial-tensor-parallel setting (degree fixed per run, as §5.1
//!   prescribes), it runs a branch-and-bound search ([`bnb`]) over the
//!   monotone control variables (`B_E` × encoding frequency for RRA,
//!   `B_E` × decoder micro-batch for WAA) and returns the best feasible
//!   [`Schedule`].
//! * [`bnb`] — Algorithm 1: branch-and-bound for monotonic optimization
//!   with latency/throughput tolerances.
//! * [`DynamicAdjuster`] — the §5.2 runtime policy that keeps encoder and
//!   decoder workloads consistent under varying sequence lengths.
//! * [`monotonicity`] — measurement of non-monotonic points used to
//!   regenerate Table 5.
//! * [`Engine`] — the batteries-included entry point: profile a (model,
//!   cluster) pair once, then schedule for any workload and latency bound.
//!
//! # Quickstart
//!
//! ```
//! use exegpt::Engine;
//! use exegpt_cluster::ClusterSpec;
//! use exegpt_dist::LengthDist;
//! use exegpt_model::ModelConfig;
//! use exegpt_sim::Workload;
//! use exegpt_units::Secs;
//!
//! // OPT-13B on four A40s, serving a translation-like workload.
//! let engine = Engine::builder()
//!     .model(ModelConfig::opt_13b())
//!     .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
//!     .workload(Workload::new(
//!         LengthDist::truncated_normal(128.0, 81.0, 256)?,
//!         LengthDist::truncated_normal(128.0, 68.0, 320)?,
//!     ))
//!     .build()?;
//!
//! // Maximize throughput while finishing a 99th-percentile-length
//! // sequence within 30 seconds.
//! let schedule = engine.schedule(Secs::new(30.0))?;
//! assert!(schedule.estimate.latency <= Secs::new(30.0) * 1.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bnb;
mod dynamic;
mod engine;
mod error;
mod invariants;
pub mod monotonicity;
mod scheduler;
pub mod search;

pub use dynamic::DynamicAdjuster;
pub use engine::{Engine, EngineBuilder};
pub use error::ScheduleError;
pub use invariants::{InvariantReport, PlanInvariants};
pub use scheduler::{Policy, Replan, ReplanDelta, Schedule, Scheduler, SchedulerOptions};

// Re-export the configuration vocabulary so `exegpt` is self-contained for
// typical users.
pub use exegpt_sim::{
    Estimate, RraConfig, ScheduleConfig, Simulator, TpConfig, WaaConfig, WaaVariant, Workload,
};
