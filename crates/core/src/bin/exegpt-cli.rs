//! `exegpt-cli` — constraint-aware LLM inference scheduling from the shell.
//!
//! ```text
//! exegpt-cli schedule --model opt-13b --gpus 4 --task T --bound 20
//! exegpt-cli frontier --model gpt3-39b --gpus 16 --task S
//! exegpt-cli deploy   --model gpt3-175b --gpus 32
//! exegpt-cli models
//! ```
//!
//! The CLI is a thin shell over [`exegpt::Engine`]; all argument parsing and
//! rendering lives in testable helpers below `main`.

use std::fmt::Write as _;

use exegpt::{Engine, ScheduleError};
use exegpt_cluster::{ClusterSpec, LoadSource};
use exegpt_model::ModelConfig;
use exegpt_sim::Workload;
use exegpt_units::Secs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("exegpt-cli: {e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  exegpt-cli models\n  exegpt-cli schedule --model <id> --gpus <n> --task <S|T|G|C1|C2> [--bound <secs>] [--cluster <a40|a100>]\n  exegpt-cli frontier --model <id> --gpus <n> --task <id> [--cluster <a40|a100>]\n  exegpt-cli deploy --model <id> --gpus <n> [--cluster <a40|a100>]\nmodels: t5-11b opt-13b gpt3-39b gpt3-101b gpt3-175b gpt3-341b"
}

/// Parsed command-line options.
struct Opts {
    model: Option<String>,
    gpus: usize,
    task: Option<String>,
    bound: Secs,
    cluster: String,
}

fn parse_flags(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        model: None,
        gpus: 4,
        task: None,
        bound: Secs::INFINITY,
        cluster: "a40".to_string(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("flag {name} needs a value"));
        match a.as_str() {
            "--model" => opts.model = Some(value("--model")?),
            "--gpus" => {
                opts.gpus = value("--gpus")?
                    .parse()
                    .map_err(|_| "--gpus needs a positive integer".to_string())?
            }
            "--task" => opts.task = Some(value("--task")?),
            "--bound" => {
                let v = value("--bound")?;
                opts.bound = if v == "inf" {
                    Secs::INFINITY
                } else {
                    Secs::new(v.parse().map_err(|_| "--bound needs seconds or `inf`".to_string())?)
                };
            }
            "--cluster" => opts.cluster = value("--cluster")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn model_by_id(id: &str) -> Result<ModelConfig, String> {
    match id {
        "t5-11b" => Ok(ModelConfig::t5_11b()),
        "opt-13b" => Ok(ModelConfig::opt_13b()),
        "gpt3-39b" => Ok(ModelConfig::gpt3_39b()),
        "gpt3-101b" => Ok(ModelConfig::gpt3_101b()),
        "gpt3-175b" => Ok(ModelConfig::gpt3_175b()),
        "gpt3-341b" => Ok(ModelConfig::gpt3_341b()),
        other => Err(format!("unknown model `{other}` (see `exegpt-cli models`)")),
    }
}

fn workload_by_task(id: &str) -> Result<Workload, String> {
    use exegpt_workload::Task;
    let task = match id {
        "S" => Task::Summarization,
        "T" => Task::Translation,
        "G" => Task::CodeGeneration,
        "C1" => Task::ConversationalQa1,
        "C2" => Task::ConversationalQa2,
        other => return Err(format!("unknown task `{other}` (S T G C1 C2)")),
    };
    task.workload().map_err(|e| e.to_string())
}

fn cluster_by_id(id: &str, gpus: usize) -> Result<ClusterSpec, String> {
    let base = match id {
        "a40" => ClusterSpec::a40_cluster(),
        "a100" => ClusterSpec::a100_cluster(),
        other => return Err(format!("unknown cluster `{other}` (a40, a100)")),
    };
    base.subcluster(gpus).map_err(|e| e.to_string())
}

fn build_engine(opts: &Opts) -> Result<Engine, String> {
    let model = model_by_id(opts.model.as_deref().ok_or("--model is required")?)?;
    let cluster = cluster_by_id(&opts.cluster, opts.gpus)?;
    let task = opts.task.as_deref().ok_or("--task is required")?;
    Engine::builder()
        .model(model)
        .cluster(cluster)
        .workload(workload_by_task(task)?)
        .build()
        .map_err(|e| e.to_string())
}

/// Executes a CLI invocation and returns its stdout.
fn run(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("a command is required".to_string());
    };
    match cmd.as_str() {
        "models" => Ok(render_models()),
        "schedule" => {
            let opts = parse_flags(rest)?;
            let engine = build_engine(&opts)?;
            match engine.schedule(opts.bound) {
                Ok(s) => {
                    let mut out = String::new();
                    let _ = writeln!(out, "schedule : {}", s.config.describe());
                    let _ = writeln!(
                        out,
                        "estimate : {:.2} queries/s at {:.2} s latency",
                        s.estimate.throughput,
                        s.estimate.latency.as_secs()
                    );
                    let _ = writeln!(
                        out,
                        "memory   : {:.1} GiB peak per gpu of {:.1} GiB usable",
                        s.estimate.memory.peak() as f64 / (1u64 << 30) as f64,
                        s.estimate.memory.capacity as f64 / (1u64 << 30) as f64
                    );
                    let _ = writeln!(out, "searched : {} configurations", s.evals);
                    Ok(out)
                }
                Err(ScheduleError::NoFeasibleSchedule { latency_bound }) => Ok(format!(
                    "no schedule satisfies {} s on this deployment (NS)\n",
                    latency_bound.as_secs()
                )),
                Err(e) => Err(e.to_string()),
            }
        }
        "frontier" => {
            let opts = parse_flags(rest)?;
            let engine = build_engine(&opts)?;
            let best = engine.schedule(Secs::INFINITY).map_err(|e| e.to_string())?;
            let mut out = String::new();
            let _ = writeln!(out, "{:>10}  {:>9}  {:>10}  schedule", "bound(s)", "tput", "latency");
            let mut bound = best.estimate.latency / 16.0;
            while bound < best.estimate.latency * 1.01 {
                match engine.schedule(bound) {
                    Ok(s) => {
                        let _ = writeln!(
                            out,
                            "{:>10.2}  {:>9.2}  {:>10.2}  {}",
                            bound.as_secs(),
                            s.estimate.throughput,
                            s.estimate.latency.as_secs(),
                            s.config.describe()
                        );
                    }
                    Err(_) => {
                        let _ =
                            writeln!(out, "{:>10.2}  {:>9}  {:>10}  NS", bound.as_secs(), "-", "-");
                    }
                }
                bound = bound * 2.0;
            }
            let _ = writeln!(
                out,
                "{:>10}  {:>9.2}  {:>10.2}  {}",
                "inf",
                best.estimate.throughput,
                best.estimate.latency.as_secs(),
                best.config.describe()
            );
            Ok(out)
        }
        "deploy" => {
            let mut opts = parse_flags(rest)?;
            // Deploy cost needs no workload; default one for engine assembly.
            if opts.task.is_none() {
                opts.task = Some("T".to_string());
            }
            let engine = build_engine(&opts)?;
            Ok(format!(
                "load from SSD : {:.1} s\nreload (DRAM) : {:.1} s\n",
                engine.deploy_time(LoadSource::Ssd).as_secs(),
                engine.deploy_time(LoadSource::Dram).as_secs()
            ))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn render_models() -> String {
    let mut out = String::from("model      params   layers  hidden  heads  kind\n");
    for m in ModelConfig::paper_models() {
        let _ = writeln!(
            out,
            "{:<10} {:>6.1}B  {:>6}  {:>6}  {:>5}  {:?}",
            m.name().to_lowercase().replace(' ', "-").replace("gpt-3", "gpt3"),
            m.param_count() as f64 / 1e9,
            m.num_layers(),
            m.d_model(),
            m.num_heads(),
            m.kind()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn models_lists_all_six() {
        let out = run(&sv(&["models"])).expect("runs");
        for id in ["t5-11b", "opt-13b", "gpt3-39b", "gpt3-101b", "gpt3-175b", "gpt3-341b"] {
            assert!(out.contains(id), "missing {id} in:\n{out}");
        }
    }

    #[test]
    fn schedule_produces_a_configuration() {
        let out = run(&sv(&[
            "schedule", "--model", "opt-13b", "--gpus", "4", "--task", "S", "--bound", "10",
        ]))
        .expect("runs");
        assert!(out.contains("schedule :"));
        assert!(out.contains("queries/s"));
    }

    #[test]
    fn impossible_bound_reports_ns() {
        let out = run(&sv(&[
            "schedule", "--model", "opt-13b", "--gpus", "4", "--task", "S", "--bound", "0.001",
        ]))
        .expect("runs");
        assert!(out.contains("NS"));
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(run(&sv(&["schedule", "--model", "nope", "--task", "S"])).is_err());
        assert!(run(&sv(&["schedule", "--model", "opt-13b", "--task", "Z"])).is_err());
        assert!(
            run(&sv(&["schedule", "--model", "opt-13b", "--task", "S", "--gpus", "x"])).is_err()
        );
        assert!(run(&sv(&["nonsense"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn deploy_reports_both_sources() {
        let out = run(&sv(&["deploy", "--model", "gpt3-39b", "--gpus", "16"])).expect("runs");
        assert!(out.contains("SSD") && out.contains("DRAM"));
    }
}
