//! XScheduler: policy orchestration over the branch-and-bound search
//! (paper §5).
//!
//! For each requested policy the scheduler runs Algorithm 1 over that
//! policy's two monotone control variables, with the partial-TP variable
//! handled as the paper prescribes: the tensor-parallel *degree* is fixed
//! per run and the runs are repeated for every feasible `(degree, #gpus)`
//! setting (§5.1). Runs are independent and execute in parallel.
//!
//! Axis orientation (both variables increase throughput *and* latency):
//!
//! * RRA: `x1 = B_E`, `x2 = F_E` (encoding frequency — the reverse of
//!   `N_D`, since more frequent encoding raises throughput and latency).
//! * WAA: `x1 = B_E`. The decoder micro-batch count `B_m` is *enumerated*
//!   rather than searched: the paper itself reports it as the least
//!   monotone variable (Table 5), and on this substrate it is unimodal
//!   (optimal near the decode stage count), so a handful of candidate
//!   values per (policy, TP) run is both cheaper and safer than trusting a
//!   monotone direction that does not hold.
//!
//! Online replans (drift, faults) do not pay for the full portfolio again:
//! [`Scheduler::reschedule_from`] warm-starts only the incumbent's
//! neighborhood and *certifies* the remaining searches away through their
//! monotone upper bounds, returning the same `config`/`estimate` the full
//! search would.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use exegpt_dist::convert::{lossless_f64, round_usize, trunc_usize};
use exegpt_sim::{RraConfig, ScheduleConfig, SimError, Simulator, TpConfig, WaaConfig, WaaVariant};
use exegpt_units::Secs;

use crate::bnb::{self, BnbOptions, Perf};
use crate::error::ScheduleError;

/// A scheduling policy the scheduler may select (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Round-Robin Allocation.
    Rra,
    /// Workload-Aware Allocation balanced by computation time.
    WaaCompute,
    /// Workload-Aware Allocation balanced by memory consumption.
    WaaMemory,
}

impl Policy {
    /// All three policies, the scheduler's default portfolio.
    pub fn all() -> Vec<Policy> {
        vec![Policy::Rra, Policy::WaaCompute, Policy::WaaMemory]
    }
}

/// Options controlling one scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerOptions {
    /// Latency bound `L_Bound` for generating the 99th-percentile-length
    /// sequence (`Secs::INFINITY` = unconstrained).
    pub latency_bound: Secs,
    /// Latency tolerance `ε_L` as a fraction of the bound (default 5%).
    pub eps_latency_frac: f64,
    /// Throughput tolerance `ε_T` as a fraction of the incumbent (blocks
    /// within this fraction of the best known throughput are not pruned;
    /// default 2%).
    pub eps_throughput_frac: f64,
    /// Policies to search (default: all three).
    pub policies: Vec<Policy>,
    /// Upper limit for `B_E` (default: derived from the profile).
    pub max_b_e: Option<usize>,
    /// Upper limit for `N_D` (default: the output distribution's maximum).
    pub max_n_d: Option<usize>,
    /// Restrict the search to these partial-TP settings (default: all
    /// profiled degrees at every feasible GPU count).
    pub tp_configs: Option<Vec<TpConfig>>,
    /// Run per-TP-setting searches on parallel threads (default true).
    pub parallel: bool,
    /// Worker threads of the search pool (default: the machine's available
    /// parallelism, capped at the task count). Ignored when `parallel` is
    /// false. [`Scheduler::schedule`] returns the same `Schedule` for every
    /// width, so this only trades wall-clock time for CPU.
    pub pool_threads: Option<usize>,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        Self {
            latency_bound: Secs::INFINITY,
            eps_latency_frac: 0.05,
            eps_throughput_frac: 0.02,
            policies: Policy::all(),
            max_b_e: None,
            max_n_d: None,
            tp_configs: None,
            parallel: true,
            pool_threads: None,
        }
    }
}

impl SchedulerOptions {
    /// Convenience constructor for a latency bound with default tolerances.
    pub fn bounded(latency_bound: Secs) -> Self {
        Self { latency_bound, ..Self::default() }
    }
}

/// The outcome of scheduling: a concrete configuration and its estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The selected configuration.
    pub config: ScheduleConfig,
    /// The simulator's estimate for it.
    pub estimate: exegpt_sim::Estimate,
    /// Total distinct configuration evaluations across all searches.
    pub evals: usize,
    /// Simulator evaluations answered by the shared evaluation cache.
    pub cache_hits: usize,
}

/// What changed since the incumbent schedule was computed; guides the
/// neighborhood of an incremental replan ([`Scheduler::reschedule_from`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplanDelta {
    /// Change in the cluster's total GPU count (negative after failures,
    /// positive after recovery). A shrink re-centers the tensor-parallel
    /// neighborhood on the nearest GPU count that still exists.
    pub gpu_delta: isize,
    /// Whether the workload's length distributions changed (the drift
    /// path). Recorded for diagnostics; the neighborhood shape is the same
    /// either way.
    pub workload_changed: bool,
}

/// Outcome of an incremental replan ([`Scheduler::reschedule_from`]).
///
/// `schedule.config` and `schedule.estimate` are identical to what the full
/// [`Scheduler::schedule`] would select; the task counters describe how the
/// incremental path got there (and `fell_back` whether it had to give up
/// and run the full search after all).
#[derive(Debug, Clone, PartialEq)]
pub struct Replan {
    /// The chosen schedule.
    pub schedule: Schedule,
    /// `true` when the incremental path could not certify optimality and
    /// the full search ran instead.
    pub fell_back: bool,
    /// Searches warm-started inside the incumbent's neighborhood.
    pub neighborhood_tasks: usize,
    /// Searches excluded by their certified monotone upper bound.
    pub certified_tasks: usize,
    /// Searches resolved exactly by a single feasible top-corner probe.
    pub exact_tasks: usize,
    /// Searches the probe could not resolve, which then ran in full.
    pub full_tasks: usize,
}

/// XScheduler: searches the configuration space for the highest-throughput
/// schedule satisfying a latency bound (paper §5).
#[derive(Debug, Clone)]
pub struct Scheduler {
    sim: Simulator,
}

impl Scheduler {
    /// Creates a scheduler over a simulator.
    pub fn new(sim: Simulator) -> Self {
        Self { sim }
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Finds the best schedule across all requested policies.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoFeasibleSchedule`] when nothing satisfies
    /// the bound, or [`ScheduleError::InvalidOptions`] for bad options.
    pub fn schedule(&self, opts: &SchedulerOptions) -> Result<Schedule, ScheduleError> {
        validate(opts)?;
        let hits_before = self.sim.cache_stats().hits;
        let tasks = self.search_tasks(opts);
        let workers = opts
            .pool_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .clamp(1, tasks.len().max(1));
        let results: Vec<Option<Schedule>> = if opts.parallel && workers > 1 {
            // Bounded work-stealing pool: a fixed set of workers pulls task
            // indices from a shared counter and writes results into
            // per-task slots, so the reduction below always sees them in
            // task order regardless of which worker ran what. All workers
            // share the simulator's evaluation cache.
            let next = AtomicUsize::new(0);
            let slots: Vec<OnceLock<Option<Schedule>>> =
                (0..tasks.len()).map(|_| OnceLock::new()).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        // The fetch_add hands each index to exactly one
                        // worker, so this slot is necessarily empty.
                        let set_res = slots[i].set(self.run_task(task, opts));
                        debug_assert!(set_res.is_ok(), "task index {i} claimed twice");
                    });
                }
            });
            slots.into_iter().map(|slot| slot.into_inner().flatten()).collect()
        } else {
            tasks.iter().map(|t| self.run_task(t, opts)).collect()
        };

        let mut evals = 0;
        let mut best: Option<Schedule> = None;
        for r in results.into_iter().flatten() {
            evals += r.evals;
            if best.as_ref().is_none_or(|b| r.estimate.throughput > b.estimate.throughput) {
                best = Some(r);
            }
        }
        match best {
            Some(mut b) => {
                b.evals = evals;
                // Deterministic even across pool widths: the cache counts a
                // lost insert race as a hit, so the totals depend only on
                // the multiset of configurations evaluated.
                b.cache_hits = self.sim.cache_stats().hits - hits_before;
                #[cfg(debug_assertions)]
                if let Err(report) = crate::PlanInvariants::check(&self.sim, &b) {
                    debug_assert!(false, "schedule violates plan invariants: {report}");
                }
                Ok(b)
            }
            None => Err(ScheduleError::NoFeasibleSchedule { latency_bound: opts.latency_bound }),
        }
    }

    /// Finds the best schedule for a single policy.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::schedule`].
    pub fn schedule_policy(
        &self,
        policy: Policy,
        opts: &SchedulerOptions,
    ) -> Result<Schedule, ScheduleError> {
        let narrowed = SchedulerOptions { policies: vec![policy], ..opts.clone() };
        self.schedule(&narrowed)
    }

    /// Enumerates the independent (policy, TP setting) searches, fixing the
    /// TP degree per run as §5.1 prescribes.
    fn search_tasks(&self, opts: &SchedulerOptions) -> Vec<SearchTask> {
        let n = self.sim.cluster().total_gpus();
        let tps = opts.tp_configs.clone().unwrap_or_else(|| {
            let mut tps = vec![TpConfig::none()];
            for &degree in &self.sim.profile().tp_degrees() {
                if degree < 2 {
                    continue;
                }
                let mut gpus = degree;
                while gpus <= n {
                    tps.push(TpConfig { degree, gpus });
                    gpus += degree;
                }
            }
            tps
        });
        let b_m_candidates = b_m_ladder(n);
        let mut tasks = Vec::new();
        for &policy in &opts.policies {
            for &tp in &tps {
                match policy {
                    Policy::Rra => tasks.push(SearchTask { policy, tp, b_m: 1 }),
                    Policy::WaaCompute | Policy::WaaMemory => {
                        for &b_m in &b_m_candidates {
                            tasks.push(SearchTask { policy, tp, b_m });
                        }
                    }
                }
            }
        }
        tasks
    }

    /// Runs one branch-and-bound search; returns `None` when the task's
    /// space contains no feasible point.
    fn run_task(&self, task: &SearchTask, opts: &SchedulerOptions) -> Option<Schedule> {
        self.run_task_seeded(task, opts, None, None).map(|(s, _)| s)
    }

    /// Runs one search, optionally warm-started and floor-pruned, also
    /// reporting whether the search drained its queue (`false` means its
    /// eval budget bit, so the result is not guaranteed to match a cold
    /// run's).
    fn run_task_seeded(
        &self,
        task: &SearchTask,
        opts: &SchedulerOptions,
        warm_start: Option<(usize, usize)>,
        prune_floor: Option<f64>,
    ) -> Option<(Schedule, bool)> {
        let space = self.task_space(task, opts);
        let bnb_opts = self.bnb_options(opts, warm_start, prune_floor);
        let eval = |x1: usize, x2: usize| perf_of(self.sim.evaluate(&space.config(x1, x2)));
        let r = bnb::optimize(space.range1, space.range2, &bnb_opts, eval)?;
        let cfg = space.config(r.point.0, r.point.1);
        let estimate = self.sim.evaluate(&cfg).ok()?;
        Some((Schedule { config: cfg, estimate, evals: r.evals, cache_hits: 0 }, r.complete))
    }

    /// The oriented search box and configuration mapping of one task.
    fn task_space(&self, task: &SearchTask, opts: &SchedulerOptions) -> TaskSpace {
        let profile = self.sim.profile();
        let out = self.sim.workload().output();
        match task.policy {
            Policy::Rra => {
                let max_b_e = opts.max_b_e.unwrap_or_else(|| (profile.max_batch() / 4).max(2));
                let max_n_d =
                    opts.max_n_d.unwrap_or_else(|| out.max_len().min(profile.max_seq())).max(1);
                TaskSpace {
                    range1: (1, max_b_e),
                    range2: (1, max_n_d),
                    tp: task.tp,
                    kind: SpaceKind::Rra { max_n_d },
                }
            }
            Policy::WaaCompute | Policy::WaaMemory => {
                let variant = if task.policy == Policy::WaaCompute {
                    WaaVariant::Compute
                } else {
                    WaaVariant::Memory
                };
                let s_d = out.mean().max(1.0);
                let max_b_e = opts
                    .max_b_e
                    .unwrap_or_else(|| trunc_usize(lossless_f64(profile.max_batch()) / s_d).max(2));
                TaskSpace {
                    range1: (1, max_b_e),
                    range2: (1, 1),
                    tp: task.tp,
                    kind: SpaceKind::Waa { b_m: task.b_m, variant, s_d },
                }
            }
        }
    }

    /// The branch-and-bound tolerances derived from scheduler options.
    fn bnb_options(
        &self,
        opts: &SchedulerOptions,
        warm_start: Option<(usize, usize)>,
        prune_floor: Option<f64>,
    ) -> BnbOptions {
        BnbOptions {
            latency_bound: opts.latency_bound,
            eps_latency: if opts.latency_bound.is_finite() {
                opts.latency_bound * opts.eps_latency_frac
            } else {
                Secs::ZERO
            },
            eps_throughput: opts.eps_throughput_frac.max(0.0),
            max_evals: 20_000,
            warm_start,
            prune_floor,
        }
    }

    /// Incrementally replans from a known-good incumbent — the online drift
    /// and fault paths (§5.2, §7.6), where replan latency is serving
    /// downtime. Instead of re-running every (policy, TP, `B_m`) search:
    ///
    /// 1. Full branch-and-bound runs, warm-started at the incumbent's
    ///    point, cover only the incumbent's *neighborhood*: the same
    ///    policy, with no-TP plus the incumbent's TP degree within one GPU
    ///    step of its (delta-adjusted) GPU count, and `B_m` within one
    ///    ladder step.
    /// 2. Every remaining search is *certified* away through its monotone
    ///    upper bound — the maximal corner of its box, recursively split
    ///    around unevaluable regions — in a handful of evaluations instead
    ///    of a full search.
    /// 3. Tasks the probe cannot certify run in full, and the whole replan
    ///    falls back to the full [`Scheduler::schedule`] whenever a warm
    ///    search was cut short by its eval budget or the neighborhood found
    ///    nothing feasible, so the result is *verified*, never speculative.
    ///
    /// The returned schedule's `config` and `estimate` are identical to
    /// what the full search would select: warm starts never change a
    /// search's returned point ([`BnbOptions::warm_start`]), certified
    /// tasks are strictly below the winner, and the final reduction visits
    /// tasks in the same canonical order. `evals`/`cache_hits` reflect the
    /// (much smaller) work actually done.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::schedule`].
    pub fn reschedule_from(
        &self,
        incumbent: &Schedule,
        delta: ReplanDelta,
        opts: &SchedulerOptions,
    ) -> Result<Replan, ScheduleError> {
        validate(opts)?;
        let hits_before = self.sim.cache_stats().hits;
        let tasks = self.search_tasks(opts);
        let warm: Vec<bool> =
            tasks.iter().map(|t| self.in_neighborhood(t, &incumbent.config, delta)).collect();
        let neighborhood_tasks = warm.iter().filter(|&&w| w).count();
        if neighborhood_tasks == 0 {
            return self.full_fallback(opts, tasks.len());
        }

        // Warm searches over the neighborhood, each floored by the best
        // earlier warm result (an achieved throughput, so identity-safe).
        // Any search whose eval budget bit invalidates the identity
        // argument, so it forces the fallback.
        let mut per_task: Vec<Option<Schedule>> = vec![None; tasks.len()];
        let mut warm_floor: Option<f64> = None;
        for (i, task) in tasks.iter().enumerate() {
            if !warm[i] {
                continue;
            }
            let seed = self.task_space(task, opts).seed(&incumbent.config);
            if let Some((s, complete)) = self.run_task_seeded(task, opts, Some(seed), warm_floor) {
                if !complete {
                    return self.full_fallback(opts, tasks.len());
                }
                warm_floor = Some(
                    warm_floor.map_or(s.estimate.throughput, |f: f64| f.max(s.estimate.throughput)),
                );
                per_task[i] = Some(s);
            }
        }
        let candidate_thr = per_task
            .iter()
            .flatten()
            .map(|s| s.estimate.throughput)
            .fold(f64::NEG_INFINITY, f64::max);
        if !candidate_thr.is_finite() {
            return self.full_fallback(opts, tasks.len());
        }

        // Certification sweep over everything else (including neighborhood
        // tasks whose warm search found nothing feasible: the probe decides
        // whether "nothing" could hide a winner). The threshold is the best
        // result seen *so far* — it only grows toward the final winner, so
        // a certification at any point stays valid at the end.
        let eps_thr = opts.eps_throughput_frac.max(0.0);
        let (mut certified_tasks, mut exact_tasks, mut full_tasks) = (0usize, 0usize, 0usize);
        let mut probe_evals = 0usize;
        let mut running_best = candidate_thr;
        let mut deferred: Vec<(usize, f64)> = Vec::new();
        for (i, task) in tasks.iter().enumerate() {
            if per_task[i].is_some() {
                continue;
            }
            match self.probe_task(task, opts, running_best) {
                Probe::Exact { schedule } => {
                    exact_tasks += 1;
                    running_best = running_best.max(schedule.estimate.throughput);
                    per_task[i] = Some(schedule);
                }
                Probe::Bounded { upper, evals } => {
                    probe_evals += evals;
                    if upper * (1.0 + eps_thr) < running_best {
                        certified_tasks += 1;
                    } else {
                        deferred.push((i, upper));
                    }
                }
            }
        }

        // Resolve what the first pass could not. The staircase bound is
        // essentially the task's true optimum, so the largest finite bound
        // is almost always the winner: run it first, and its result raises
        // the threshold enough to certify the rest in place. Unresolvable
        // probes (`upper = ∞`, the rare evaluation inconsistency) go last
        // and re-probe against the improved threshold before paying for a
        // full search.
        deferred.sort_by(|a, b| {
            let inf = (a.1.is_infinite() && a.1 > 0.0, b.1.is_infinite() && b.1 > 0.0);
            inf.0.cmp(&inf.1).then(b.1.total_cmp(&a.1)).then(a.0.cmp(&b.0))
        });
        for (i, mut upper) in deferred {
            if upper == f64::INFINITY {
                match self.probe_task(&tasks[i], opts, running_best) {
                    Probe::Exact { schedule } => {
                        exact_tasks += 1;
                        running_best = running_best.max(schedule.estimate.throughput);
                        per_task[i] = Some(schedule);
                        continue;
                    }
                    Probe::Bounded { upper: refined, evals } => {
                        probe_evals += evals;
                        upper = refined;
                    }
                }
            }
            if upper * (1.0 + eps_thr) < running_best {
                certified_tasks += 1;
                continue;
            }
            full_tasks += 1;
            // Full run, floored by the running best: also-ran tasks collapse
            // to a few corner evaluations, the true winner is unaffected.
            if let Some((s, complete)) =
                self.run_task_seeded(&tasks[i], opts, None, Some(running_best))
            {
                if !complete {
                    return self.full_fallback(opts, tasks.len());
                }
                running_best = running_best.max(s.estimate.throughput);
                per_task[i] = Some(s);
            }
        }

        // The same reduction as `schedule()`: first task in canonical order
        // with strictly greater throughput wins, so ties resolve as they
        // would in the full search. Certified tasks are strictly below the
        // candidate, so their absence cannot change the winner.
        let mut evals = probe_evals;
        let mut best: Option<Schedule> = None;
        for r in per_task.into_iter().flatten() {
            evals += r.evals;
            if best.as_ref().is_none_or(|b| r.estimate.throughput > b.estimate.throughput) {
                best = Some(r);
            }
        }
        match best {
            Some(mut b) => {
                b.evals = evals;
                b.cache_hits = self.sim.cache_stats().hits - hits_before;
                #[cfg(debug_assertions)]
                if let Err(report) = crate::PlanInvariants::check(&self.sim, &b) {
                    debug_assert!(false, "replanned schedule violates plan invariants: {report}");
                }
                Ok(Replan {
                    schedule: b,
                    fell_back: false,
                    neighborhood_tasks,
                    certified_tasks,
                    exact_tasks,
                    full_tasks,
                })
            }
            None => Err(ScheduleError::NoFeasibleSchedule { latency_bound: opts.latency_bound }),
        }
    }

    /// Runs the complete search and wraps it as a fallen-back replan.
    fn full_fallback(
        &self,
        opts: &SchedulerOptions,
        tasks: usize,
    ) -> Result<Replan, ScheduleError> {
        self.schedule(opts).map(|schedule| Replan {
            schedule,
            fell_back: true,
            neighborhood_tasks: 0,
            certified_tasks: 0,
            exact_tasks: 0,
            full_tasks: tasks,
        })
    }

    /// Whether `task` lies in the incumbent's replan neighborhood.
    fn in_neighborhood(&self, task: &SearchTask, inc: &ScheduleConfig, delta: ReplanDelta) -> bool {
        let n = self.sim.cluster().total_gpus();
        let (inc_policy, inc_tp, inc_bm) = match inc {
            ScheduleConfig::Rra(c) => (Policy::Rra, c.tp, 1),
            ScheduleConfig::Waa(c) => {
                let policy = match c.variant {
                    WaaVariant::Compute => Policy::WaaCompute,
                    WaaVariant::Memory => Policy::WaaMemory,
                };
                (policy, c.tp, c.b_m)
            }
        };
        if task.policy != inc_policy {
            return false;
        }
        let tp_ok = if task.tp.is_none() {
            // The no-TP pipeline is always cheap to keep in play.
            true
        } else if inc_tp.is_none() || task.tp.degree != inc_tp.degree {
            false
        } else {
            let d = inc_tp.degree;
            // After failures, re-center on the nearest TP GPU count that
            // still exists; growth keeps the incumbent's count central.
            let g0 =
                if delta.gpu_delta < 0 { inc_tp.gpus.min((n / d) * d).max(d) } else { inc_tp.gpus };
            task.tp.gpus.abs_diff(g0) <= d
        };
        if !tp_ok {
            return false;
        }
        match task.policy {
            Policy::Rra => true,
            Policy::WaaCompute | Policy::WaaMemory => {
                let ladder = b_m_ladder(n);
                if ladder.is_empty() {
                    return false;
                }
                let pos = ladder.iter().position(|&m| m >= inc_bm).unwrap_or(ladder.len() - 1);
                let lo = pos.saturating_sub(1);
                let hi = (pos + 1).min(ladder.len() - 1);
                ladder[lo..=hi].contains(&task.b_m)
            }
        }
    }

    /// Derives a certified upper bound on the best feasible throughput of
    /// one task without searching it, in O(stairs · log(width + height))
    /// evaluations.
    ///
    /// Both ways a point can be unusable are *upward-closed* in the
    /// oriented coordinates: latency grows along both axes (the
    /// orientation contract), and so do the structural limits (a larger
    /// encode batch or a lower encode frequency both grow the decode pool
    /// toward the memory/batch caps). The feasible region is therefore a
    /// monotone staircase whose rows and columns are feasibility prefixes,
    /// and per column the best point sits on its ceiling. The probe traces
    /// that frontier stair by stair — galloping right along each stair's
    /// row to its exact end, then galloping down to the next column's
    /// ceiling — taking the maximum corner throughput, which under the
    /// monotone model *is* the task's optimum (each stair's points are
    /// dominated by its right-end corner); the ε_T slack in the
    /// certification test absorbs the measured non-monotone ripple, the
    /// same robustness contract the search itself relies on.
    ///
    /// Shortcuts, in order:
    ///
    /// * a *feasible* maximal corner of the full box is the cold search's
    ///   own first step, so the task resolves exactly to that [`Schedule`];
    /// * a finite maximal corner below `threshold` retires the whole task
    ///   at one evaluation (the corner dominates the box).
    ///
    /// The walk always completes, so even a bound above `threshold` is a
    /// *tight* bound: the caller sorts unresolved tasks by it to search the
    /// likely winner first and certify the rest against its result.
    fn probe_task(&self, task: &SearchTask, opts: &SchedulerOptions, threshold: f64) -> Probe {
        let space = self.task_space(task, opts);
        let bnb_opts = self.bnb_options(opts, None, None);
        let retired = |thr: f64| thr * (1.0 + bnb_opts.eps_throughput) < threshold;
        let mut evals = 0usize;
        let mut eval = |x1: usize, x2: usize| {
            evals += 1;
            perf_of(self.sim.evaluate(&space.config(x1, x2)))
        };
        let (r1, r2) = (space.range1, space.range2);
        let top = (r1.1, r2.1);
        let p_top = eval(top.0, top.1);
        if p_top.satisfies(bnb_opts.latency_bound) && p_top.throughput.is_finite() {
            let cfg = space.config(top.0, top.1);
            let Ok(estimate) = self.sim.evaluate(&cfg) else {
                return Probe::Bounded { upper: f64::INFINITY, evals };
            };
            return Probe::Exact {
                schedule: Schedule { config: cfg, estimate, evals: 1, cache_hits: 0 },
            };
        }
        if p_top.throughput.is_finite() && retired(p_top.throughput) {
            return Probe::Bounded { upper: p_top.throughput, evals };
        }

        let mut upper = f64::NEG_INFINITY;
        // Every feasible point the walk touches folds into the bound; the
        // walk's coverage guarantee is that it exactly visits each stair's
        // corner, which dominates every feasible point of that stair.
        let mut test = |x1: usize, x2: usize| -> bool {
            let p = if (x1, x2) == top { p_top } else { eval(x1, x2) };
            let ok = p.satisfies(bnb_opts.latency_bound) && p.throughput.is_finite();
            if ok {
                upper = upper.max(p.throughput);
            }
            ok
        };
        let (mut x1, mut x2) = (r1.0, r2.1);
        loop {
            // Drop to the ceiling of column `x1` (everything at or above
            // `x2 + 1` in it is already known infeasible). Exponential
            // probes keep this O(log drop) — ceilings fall in small steps.
            if !test(x1, x2) {
                let (mut bad, mut step) = (x2, 1usize);
                x2 = loop {
                    if bad == r2.0 {
                        // The column is empty, and ceilings only descend to
                        // the right: the rest of the box is empty too.
                        return Probe::Bounded { upper, evals };
                    }
                    let probe = if bad - r2.0 > step { bad - step } else { r2.0 };
                    if test(x1, probe) {
                        break largest_true(probe, bad, &mut |v| test(x1, v));
                    }
                    bad = probe;
                    step = step.saturating_mul(2);
                };
            }
            // Extend the stair right along its row for as long as the row
            // stays feasible; the run's exact end is this stair's corner.
            if x1 == r1.1 {
                break;
            }
            let (mut t, mut step, mut fail) = (x1, 1usize, None);
            while fail.is_none() && t < r1.1 {
                let probe = (t + step).min(r1.1);
                if test(probe, x2) {
                    t = probe;
                    step = step.saturating_mul(2);
                } else {
                    fail = Some(probe);
                }
            }
            x1 = match fail {
                None => break, // feasible through the right edge
                Some(bad) => largest_true(t, bad, &mut |v| test(v, x2)),
            };
            x1 += 1;
            if x2 == r2.0 {
                break; // the next column's ceiling would sit below the box
            }
            x2 -= 1;
        }
        Probe::Bounded { upper, evals }
    }
}

/// Outcome of the certification probe for one search task.
enum Probe {
    /// The full box's maximal corner is feasible: the cold search would
    /// return it immediately, so the probe resolved the task exactly.
    Exact { schedule: Schedule },
    /// A certified upper bound on every feasible throughput in the task
    /// (`f64::INFINITY` only in the rare case of an evaluation
    /// inconsistency at the maximal corner, which leaves the task
    /// unresolved and forces a re-probe or full search).
    Bounded { upper: f64, evals: usize },
}

/// Largest value in `[t, b - 1]` for which `pred` holds, given that
/// `pred(t)` holds, `pred(b)` fails, and `pred` is a prefix property
/// (true up to some point, false after). Plain bisection.
fn largest_true(mut t: usize, mut b: usize, pred: &mut dyn FnMut(usize) -> bool) -> usize {
    while b - t > 1 {
        let m = t + (b - t) / 2;
        if pred(m) {
            t = m;
        } else {
            b = m;
        }
    }
    t
}

/// The decoder micro-batch candidates enumerated per WAA (policy, TP) run,
/// capped by cluster size.
fn b_m_ladder(n: usize) -> Vec<usize> {
    [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32].into_iter().filter(|&m| m <= (4 * n).max(2)).collect()
}

/// One task's oriented integer search box plus the mapping back to concrete
/// configurations, shared by the search, the warm-seed derivation and the
/// certification probe so all three agree on orientation and clamping.
#[derive(Debug, Clone, Copy)]
struct TaskSpace {
    range1: (usize, usize),
    range2: (usize, usize),
    tp: TpConfig,
    kind: SpaceKind,
}

#[derive(Debug, Clone, Copy)]
enum SpaceKind {
    /// `x2` is the encoding-frequency axis: `x2 = max_n_d + 1 - N_D`.
    Rra { max_n_d: usize },
    /// `x2` is degenerate (`B_m` is enumerated per task, not searched).
    /// `s_d` is the mean output length deriving the decode pool from `B_E`.
    Waa { b_m: usize, variant: WaaVariant, s_d: f64 },
}

impl TaskSpace {
    /// The concrete configuration at an oriented point. `B_m` is clamped to
    /// the derived pool so small-`B_E` points stay evaluable.
    fn config(&self, x1: usize, x2: usize) -> ScheduleConfig {
        match self.kind {
            SpaceKind::Rra { max_n_d } => {
                ScheduleConfig::Rra(RraConfig::new(x1, max_n_d + 1 - x2, self.tp))
            }
            SpaceKind::Waa { b_m, variant, s_d } => {
                let b_d = round_usize(lossless_f64(x1) * s_d).max(1);
                ScheduleConfig::Waa(WaaConfig::new(x1, b_m.min(b_d), self.tp, variant))
            }
        }
    }

    /// The incumbent's position in this task's oriented coordinates (the
    /// search clamps it onto the box).
    fn seed(&self, inc: &ScheduleConfig) -> (usize, usize) {
        match (self.kind, inc) {
            (SpaceKind::Rra { max_n_d }, ScheduleConfig::Rra(c)) => {
                (c.b_e, (max_n_d + 1).saturating_sub(c.n_d).max(1))
            }
            (SpaceKind::Waa { .. }, ScheduleConfig::Waa(c)) => (c.b_e, 1),
            // Cross-policy seeds only carry the encode batch over.
            (_, ScheduleConfig::Rra(c)) => (c.b_e, self.range2.0),
            (_, ScheduleConfig::Waa(c)) => (c.b_e, self.range2.0),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SearchTask {
    policy: Policy,
    tp: TpConfig,
    /// Fixed decoder micro-batch count for WAA tasks (ignored for RRA).
    b_m: usize,
}

fn perf_of(result: Result<exegpt_sim::Estimate, SimError>) -> Perf {
    match result {
        Ok(e) => Perf { latency: e.latency, throughput: e.throughput },
        Err(_) => Perf::INFEASIBLE,
    }
}

fn validate(opts: &SchedulerOptions) -> Result<(), ScheduleError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
    if !(opts.latency_bound.as_f64() > 0.0) {
        return Err(ScheduleError::InvalidOptions {
            what: "latency_bound",
            why: "must be positive".into(),
        });
    }
    if opts.policies.is_empty() {
        return Err(ScheduleError::InvalidOptions {
            what: "policies",
            why: "must request at least one policy".into(),
        });
    }
    if !(0.0..1.0).contains(&opts.eps_latency_frac) {
        return Err(ScheduleError::InvalidOptions {
            what: "eps_latency_frac",
            why: "must be in [0, 1)".into(),
        });
    }
    Ok(())
}
