//! XScheduler: policy orchestration over the branch-and-bound search
//! (paper §5).
//!
//! For each requested policy the scheduler runs Algorithm 1 over that
//! policy's two monotone control variables, with the partial-TP variable
//! handled as the paper prescribes: the tensor-parallel *degree* is fixed
//! per run and the runs are repeated for every feasible `(degree, #gpus)`
//! setting (§5.1). Runs are independent and execute in parallel.
//!
//! Axis orientation (both variables increase throughput *and* latency):
//!
//! * RRA: `x1 = B_E`, `x2 = F_E` (encoding frequency — the reverse of
//!   `N_D`, since more frequent encoding raises throughput and latency).
//! * WAA: `x1 = B_E`. The decoder micro-batch count `B_m` is *enumerated*
//!   rather than searched: the paper itself reports it as the least
//!   monotone variable (Table 5), and on this substrate it is unimodal
//!   (optimal near the decode stage count), so a handful of candidate
//!   values per (policy, TP) run is both cheaper and safer than trusting a
//!   monotone direction that does not hold.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use exegpt_dist::convert::{lossless_f64, round_usize, trunc_usize};
use exegpt_sim::{RraConfig, ScheduleConfig, SimError, Simulator, TpConfig, WaaConfig, WaaVariant};
use exegpt_units::Secs;

use crate::bnb::{self, BnbOptions, Perf};
use crate::error::ScheduleError;

/// A scheduling policy the scheduler may select (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Round-Robin Allocation.
    Rra,
    /// Workload-Aware Allocation balanced by computation time.
    WaaCompute,
    /// Workload-Aware Allocation balanced by memory consumption.
    WaaMemory,
}

impl Policy {
    /// All three policies, the scheduler's default portfolio.
    pub fn all() -> Vec<Policy> {
        vec![Policy::Rra, Policy::WaaCompute, Policy::WaaMemory]
    }
}

/// Options controlling one scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerOptions {
    /// Latency bound `L_Bound` for generating the 99th-percentile-length
    /// sequence (`Secs::INFINITY` = unconstrained).
    pub latency_bound: Secs,
    /// Latency tolerance `ε_L` as a fraction of the bound (default 5%).
    pub eps_latency_frac: f64,
    /// Throughput tolerance `ε_T` as a fraction of the incumbent (blocks
    /// within this fraction of the best known throughput are not pruned;
    /// default 2%).
    pub eps_throughput_frac: f64,
    /// Policies to search (default: all three).
    pub policies: Vec<Policy>,
    /// Upper limit for `B_E` (default: derived from the profile).
    pub max_b_e: Option<usize>,
    /// Upper limit for `N_D` (default: the output distribution's maximum).
    pub max_n_d: Option<usize>,
    /// Restrict the search to these partial-TP settings (default: all
    /// profiled degrees at every feasible GPU count).
    pub tp_configs: Option<Vec<TpConfig>>,
    /// Run per-TP-setting searches on parallel threads (default true).
    pub parallel: bool,
    /// Worker threads of the search pool (default: the machine's available
    /// parallelism, capped at the task count). Ignored when `parallel` is
    /// false. [`Scheduler::schedule`] returns the same `Schedule` for every
    /// width, so this only trades wall-clock time for CPU.
    pub pool_threads: Option<usize>,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        Self {
            latency_bound: Secs::INFINITY,
            eps_latency_frac: 0.05,
            eps_throughput_frac: 0.02,
            policies: Policy::all(),
            max_b_e: None,
            max_n_d: None,
            tp_configs: None,
            parallel: true,
            pool_threads: None,
        }
    }
}

impl SchedulerOptions {
    /// Convenience constructor for a latency bound with default tolerances.
    pub fn bounded(latency_bound: Secs) -> Self {
        Self { latency_bound, ..Self::default() }
    }
}

/// The outcome of scheduling: a concrete configuration and its estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The selected configuration.
    pub config: ScheduleConfig,
    /// The simulator's estimate for it.
    pub estimate: exegpt_sim::Estimate,
    /// Total distinct configuration evaluations across all searches.
    pub evals: usize,
    /// Simulator evaluations answered by the shared evaluation cache.
    pub cache_hits: usize,
}

/// XScheduler: searches the configuration space for the highest-throughput
/// schedule satisfying a latency bound (paper §5).
#[derive(Debug, Clone)]
pub struct Scheduler {
    sim: Simulator,
}

impl Scheduler {
    /// Creates a scheduler over a simulator.
    pub fn new(sim: Simulator) -> Self {
        Self { sim }
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Finds the best schedule across all requested policies.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoFeasibleSchedule`] when nothing satisfies
    /// the bound, or [`ScheduleError::InvalidOptions`] for bad options.
    pub fn schedule(&self, opts: &SchedulerOptions) -> Result<Schedule, ScheduleError> {
        validate(opts)?;
        let hits_before = self.sim.cache_stats().hits;
        let tasks = self.search_tasks(opts);
        let workers = opts
            .pool_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .clamp(1, tasks.len().max(1));
        let results: Vec<Option<Schedule>> = if opts.parallel && workers > 1 {
            // Bounded work-stealing pool: a fixed set of workers pulls task
            // indices from a shared counter and writes results into
            // per-task slots, so the reduction below always sees them in
            // task order regardless of which worker ran what. All workers
            // share the simulator's evaluation cache.
            let next = AtomicUsize::new(0);
            let slots: Vec<OnceLock<Option<Schedule>>> =
                (0..tasks.len()).map(|_| OnceLock::new()).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        let _ = slots[i].set(self.run_task(task, opts));
                    });
                }
            });
            slots.into_iter().map(|slot| slot.into_inner().flatten()).collect()
        } else {
            tasks.iter().map(|t| self.run_task(t, opts)).collect()
        };

        let mut evals = 0;
        let mut best: Option<Schedule> = None;
        for r in results.into_iter().flatten() {
            evals += r.evals;
            if best.as_ref().is_none_or(|b| r.estimate.throughput > b.estimate.throughput) {
                best = Some(r);
            }
        }
        match best {
            Some(mut b) => {
                b.evals = evals;
                // Deterministic even across pool widths: the cache counts a
                // lost insert race as a hit, so the totals depend only on
                // the multiset of configurations evaluated.
                b.cache_hits = self.sim.cache_stats().hits - hits_before;
                #[cfg(debug_assertions)]
                if let Err(report) = crate::PlanInvariants::check(&self.sim, &b) {
                    debug_assert!(false, "schedule violates plan invariants: {report}");
                }
                Ok(b)
            }
            None => Err(ScheduleError::NoFeasibleSchedule { latency_bound: opts.latency_bound }),
        }
    }

    /// Finds the best schedule for a single policy.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::schedule`].
    pub fn schedule_policy(
        &self,
        policy: Policy,
        opts: &SchedulerOptions,
    ) -> Result<Schedule, ScheduleError> {
        let narrowed = SchedulerOptions { policies: vec![policy], ..opts.clone() };
        self.schedule(&narrowed)
    }

    /// Enumerates the independent (policy, TP setting) searches, fixing the
    /// TP degree per run as §5.1 prescribes.
    fn search_tasks(&self, opts: &SchedulerOptions) -> Vec<SearchTask> {
        let n = self.sim.cluster().total_gpus();
        let tps = opts.tp_configs.clone().unwrap_or_else(|| {
            let mut tps = vec![TpConfig::none()];
            for &degree in &self.sim.profile().tp_degrees() {
                if degree < 2 {
                    continue;
                }
                let mut gpus = degree;
                while gpus <= n {
                    tps.push(TpConfig { degree, gpus });
                    gpus += degree;
                }
            }
            tps
        });
        let b_m_candidates: Vec<usize> = [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32]
            .into_iter()
            .filter(|&m| m <= (4 * n).max(2))
            .collect();
        let mut tasks = Vec::new();
        for &policy in &opts.policies {
            for &tp in &tps {
                match policy {
                    Policy::Rra => tasks.push(SearchTask { policy, tp, b_m: 1 }),
                    Policy::WaaCompute | Policy::WaaMemory => {
                        for &b_m in &b_m_candidates {
                            tasks.push(SearchTask { policy, tp, b_m });
                        }
                    }
                }
            }
        }
        tasks
    }

    /// Runs one branch-and-bound search; returns `None` when the task's
    /// space contains no feasible point.
    fn run_task(&self, task: &SearchTask, opts: &SchedulerOptions) -> Option<Schedule> {
        let profile = self.sim.profile();
        let out = self.sim.workload().output();
        let bnb_opts = BnbOptions {
            latency_bound: opts.latency_bound,
            eps_latency: if opts.latency_bound.is_finite() {
                opts.latency_bound * opts.eps_latency_frac
            } else {
                Secs::ZERO
            },
            eps_throughput: opts.eps_throughput_frac.max(0.0),
            max_evals: 20_000,
        };

        match task.policy {
            Policy::Rra => {
                let max_b_e = opts.max_b_e.unwrap_or_else(|| (profile.max_batch() / 4).max(2));
                let max_n_d =
                    opts.max_n_d.unwrap_or_else(|| out.max_len().min(profile.max_seq())).max(1);
                // x2 is the encoding-frequency axis: x2 = max_n_d + 1 - n_d.
                let to_nd = move |x2: usize| max_n_d + 1 - x2;
                let eval = |x1: usize, x2: usize| {
                    let cfg = RraConfig::new(x1, to_nd(x2), task.tp);
                    perf_of(self.sim.evaluate_rra(&cfg))
                };
                let r = bnb::optimize((1, max_b_e), (1, max_n_d), &bnb_opts, eval)?;
                let cfg = RraConfig::new(r.point.0, to_nd(r.point.1), task.tp);
                let estimate = self.sim.evaluate_rra(&cfg).ok()?;
                Some(Schedule {
                    config: ScheduleConfig::Rra(cfg),
                    estimate,
                    evals: r.evals,
                    cache_hits: 0,
                })
            }
            Policy::WaaCompute | Policy::WaaMemory => {
                let variant = if task.policy == Policy::WaaCompute {
                    WaaVariant::Compute
                } else {
                    WaaVariant::Memory
                };
                let s_d = self.sim.workload().output().mean().max(1.0);
                let max_b_e = opts
                    .max_b_e
                    .unwrap_or_else(|| trunc_usize(lossless_f64(profile.max_batch()) / s_d).max(2));
                // B_m is fixed per task (see module docs); clamp it to the
                // derived pool so small-B_E points stay evaluable.
                let eval = |x1: usize, _x2: usize| {
                    let b_d = round_usize(lossless_f64(x1) * s_d).max(1);
                    let cfg = WaaConfig::new(x1, task.b_m.min(b_d), task.tp, variant);
                    perf_of(self.sim.evaluate_waa(&cfg))
                };
                let r = bnb::optimize((1, max_b_e), (1, 1), &bnb_opts, eval)?;
                let b_d = round_usize(lossless_f64(r.point.0) * s_d).max(1);
                let cfg = WaaConfig::new(r.point.0, task.b_m.min(b_d), task.tp, variant);
                let estimate = self.sim.evaluate_waa(&cfg).ok()?;
                Some(Schedule {
                    config: ScheduleConfig::Waa(cfg),
                    estimate,
                    evals: r.evals,
                    cache_hits: 0,
                })
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SearchTask {
    policy: Policy,
    tp: TpConfig,
    /// Fixed decoder micro-batch count for WAA tasks (ignored for RRA).
    b_m: usize,
}

fn perf_of(result: Result<exegpt_sim::Estimate, SimError>) -> Perf {
    match result {
        Ok(e) => Perf { latency: e.latency, throughput: e.throughput },
        Err(_) => Perf::INFEASIBLE,
    }
}

fn validate(opts: &SchedulerOptions) -> Result<(), ScheduleError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
    if !(opts.latency_bound.as_f64() > 0.0) {
        return Err(ScheduleError::InvalidOptions {
            what: "latency_bound",
            why: "must be positive".into(),
        });
    }
    if opts.policies.is_empty() {
        return Err(ScheduleError::InvalidOptions {
            what: "policies",
            why: "must request at least one policy".into(),
        });
    }
    if !(0.0..1.0).contains(&opts.eps_latency_frac) {
        return Err(ScheduleError::InvalidOptions {
            what: "eps_latency_frac",
            why: "must be in [0, 1)".into(),
        });
    }
    Ok(())
}
