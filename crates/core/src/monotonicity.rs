//! Measurement of control-variable monotonicity (paper §7.8, Table 5).
//!
//! The paper quantifies, per control variable and tolerance, the fraction of
//! swept points at which latency/throughput violate the expected monotone
//! direction by more than the tolerance. This module provides that
//! measurement; the Table 5 bench drives it over real schedule sweeps.

use exegpt_dist::convert::lossless_f64;

/// Expected direction of a metric along a swept control variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The metric should not decrease as the variable increases.
    NonDecreasing,
    /// The metric should not increase as the variable increases.
    NonIncreasing,
}

/// Fraction of adjacent steps in `values` violating `direction` by more than
/// `tolerance` (an absolute slack).
///
/// Returns 0.0 for sequences with fewer than two points.
///
/// # Example
///
/// ```
/// use exegpt::monotonicity::{non_monotonic_fraction, Direction};
///
/// let vals = [1.0, 2.0, 1.95, 3.0]; // one tiny dip
/// assert_eq!(non_monotonic_fraction(&vals, Direction::NonDecreasing, 0.1), 0.0);
/// assert!(non_monotonic_fraction(&vals, Direction::NonDecreasing, 0.0) > 0.0);
/// ```
pub fn non_monotonic_fraction(values: &[f64], direction: Direction, tolerance: f64) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let violations = values
        .windows(2)
        .filter(|w| match direction {
            Direction::NonDecreasing => w[1] < w[0] - tolerance,
            Direction::NonIncreasing => w[1] > w[0] + tolerance,
        })
        .count();
    lossless_f64(violations) / lossless_f64(values.len() - 1)
}

/// Result of sweeping one control variable: per-metric violation fractions,
/// as reported in each Table 5 cell `(latency, throughput)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepReport {
    /// Fraction of points where latency violates its expected direction.
    pub latency_violations: f64,
    /// Fraction of points where throughput violates its expected direction.
    pub throughput_violations: f64,
}

/// Measures a sweep of `(latency, throughput)` pairs against expected
/// directions with tolerances given as *fractions* of the metric's range
/// (the paper expresses tolerance as a percentage of `L_b` and of the
/// achieved throughput).
pub fn measure_sweep(
    points: &[(f64, f64)],
    latency_dir: Direction,
    throughput_dir: Direction,
    tol_frac: f64,
    latency_scale: f64,
    throughput_scale: f64,
) -> SweepReport {
    let lats: Vec<f64> = points.iter().map(|p| p.0).collect();
    let thrs: Vec<f64> = points.iter().map(|p| p.1).collect();
    SweepReport {
        latency_violations: non_monotonic_fraction(&lats, latency_dir, tol_frac * latency_scale),
        throughput_violations: non_monotonic_fraction(
            &thrs,
            throughput_dir,
            tol_frac * throughput_scale,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_monotone_has_zero_violations() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(non_monotonic_fraction(&v, Direction::NonDecreasing, 0.0), 0.0);
        assert_eq!(non_monotonic_fraction(&v, Direction::NonIncreasing, 0.0), 1.0);
    }

    #[test]
    fn tolerance_forgives_small_dips() {
        let v = [10.0, 9.9, 11.0];
        assert!(non_monotonic_fraction(&v, Direction::NonDecreasing, 0.0) > 0.0);
        assert_eq!(non_monotonic_fraction(&v, Direction::NonDecreasing, 0.2), 0.0);
    }

    #[test]
    fn short_sequences_are_trivially_monotone() {
        assert_eq!(non_monotonic_fraction(&[], Direction::NonDecreasing, 0.0), 0.0);
        assert_eq!(non_monotonic_fraction(&[5.0], Direction::NonDecreasing, 0.0), 0.0);
    }

    #[test]
    fn sweep_report_uses_scaled_tolerances() {
        // Latency expected up, throughput expected up; one 3% throughput dip.
        let pts = [(1.0, 100.0), (2.0, 97.0), (3.0, 110.0)];
        let strict = measure_sweep(
            &pts,
            Direction::NonDecreasing,
            Direction::NonDecreasing,
            0.02,
            3.0,
            100.0,
        );
        assert!(strict.throughput_violations > 0.0);
        let lax = measure_sweep(
            &pts,
            Direction::NonDecreasing,
            Direction::NonDecreasing,
            0.05,
            3.0,
            100.0,
        );
        assert_eq!(lax.throughput_violations, 0.0);
        assert_eq!(lax.latency_violations, 0.0);
    }
}
