//! Property-based invariants of the branch-and-bound optimizer: on
//! arbitrary monotone surfaces it must match brute force exactly, and on
//! perturbed surfaces it must stay feasible and near-optimal.

use exegpt::bnb::{optimize, BnbOptions, Perf};
use exegpt_units::Secs;
use proptest::prelude::*;

/// A random monotone surface: latency and throughput both non-decreasing
/// in each coordinate, built from random non-negative increments.
#[derive(Debug, Clone)]
struct Surface {
    lat: Vec<Vec<f64>>,
    thr: Vec<Vec<f64>>,
}

fn arb_surface(n1: usize, n2: usize) -> impl Strategy<Value = Surface> {
    let cells = n1 * n2;
    (prop::collection::vec(0.0f64..5.0, cells), prop::collection::vec(0.0f64..5.0, cells)).prop_map(
        move |(dl, dt)| {
            let mut lat = vec![vec![0.0f64; n2]; n1];
            let mut thr = vec![vec![0.0f64; n2]; n1];
            for i in 0..n1 {
                for j in 0..n2 {
                    let up_l = if i > 0 { lat[i - 1][j] } else { 0.0 };
                    let left_l = if j > 0 { lat[i][j - 1] } else { 0.0 };
                    lat[i][j] = up_l.max(left_l) + dl[i * n2 + j];
                    let up_t = if i > 0 { thr[i - 1][j] } else { 0.0 };
                    let left_t = if j > 0 { thr[i][j - 1] } else { 0.0 };
                    thr[i][j] = up_t.max(left_t) + dt[i * n2 + j];
                }
            }
            Surface { lat, thr }
        },
    )
}

fn brute(s: &Surface, bound: f64) -> Option<f64> {
    let mut best = None;
    for row in 0..s.lat.len() {
        for col in 0..s.lat[0].len() {
            if s.lat[row][col] <= bound {
                let t = s.thr[row][col];
                best = Some(best.map_or(t, |b: f64| if t > b { t } else { b }));
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On exactly monotone surfaces the search equals brute force.
    #[test]
    fn matches_brute_force_on_monotone_surfaces(
        surface in arb_surface(24, 24),
        bound_frac in 0.0f64..1.2,
    ) {
        let max_lat = surface.lat[23][23];
        let bound = max_lat * bound_frac;
        let eval = |x: usize, y: usize| Perf {
            latency: Secs::new(surface.lat[x - 1][y - 1]),
            throughput: surface.thr[x - 1][y - 1],
        };
        let opts = BnbOptions { latency_bound: Secs::new(bound), ..Default::default() };
        let got = optimize((1, 24), (1, 24), &opts, eval).map(|r| r.perf.throughput);
        prop_assert_eq!(got, brute(&surface, bound));
    }

    /// The result is always feasible: its latency respects the bound.
    #[test]
    fn never_returns_infeasible_points(
        surface in arb_surface(16, 16),
        bound_frac in 0.0f64..1.0,
        holes in prop::collection::vec((0usize..16, 0usize..16), 0..24),
    ) {
        // Punch infeasible holes into the surface (non-monotone hazards).
        let max_lat = surface.lat[15][15];
        let bound = max_lat * bound_frac;
        let eval = |x: usize, y: usize| {
            if holes.contains(&(x - 1, y - 1)) {
                Perf::INFEASIBLE
            } else {
                Perf {
                    latency: Secs::new(surface.lat[x - 1][y - 1]),
                    throughput: surface.thr[x - 1][y - 1],
                }
            }
        };
        let opts = BnbOptions { latency_bound: Secs::new(bound), ..Default::default() };
        if let Some(r) = optimize((1, 16), (1, 16), &opts, eval) {
            prop_assert!(r.perf.latency <= Secs::new(bound));
            prop_assert!(r.perf.throughput.is_finite());
            let (x, y) = r.point;
            prop_assert!(!holes.contains(&(x - 1, y - 1)), "returned a hole");
        }
    }

    /// The search never does worse than the feasible corners it must visit.
    #[test]
    fn at_least_as_good_as_the_corners(
        surface in arb_surface(20, 20),
        bound_frac in 0.05f64..1.0,
        ripple in 0.0f64..0.1,
    ) {
        let max_lat = surface.lat[19][19];
        let bound = max_lat * bound_frac;
        // Deterministic multiplicative ripple breaks exact monotonicity.
        let eval = |x: usize, y: usize| {
            let r = 1.0 + ripple * ((((x * 31 + y * 17) % 7) as f64 - 3.0) / 3.0);
            Perf {
                latency: Secs::new(surface.lat[x - 1][y - 1] * r),
                throughput: surface.thr[x - 1][y - 1] * r,
            }
        };
        let opts = BnbOptions {
            latency_bound: Secs::new(bound),
            eps_latency: Secs::new(bound * 0.1),
            eps_throughput: 0.0,
            max_evals: 20_000,
            warm_start: None,
            prune_floor: None,
        };
        let got = optimize((1, 20), (1, 20), &opts, eval);
        // The origin corner is always evaluated; if it is feasible the
        // search must return something at least as good.
        let origin = eval(1, 1);
        if origin.latency <= Secs::new(bound) {
            let r = got.expect("a feasible corner exists");
            prop_assert!(r.perf.throughput >= origin.throughput);
        }
    }
}
