//! Incremental replanning must be a pure optimization: for every shipped
//! replan scenario (workload drift, device failure, recovery) the chosen
//! plan is byte-identical to the full search's, the plan invariants hold on
//! it, and the verified fallback engages whenever the neighborhood cannot
//! certify optimality.

use std::sync::OnceLock;

use exegpt::{
    Engine, PlanInvariants, Policy, Replan, ReplanDelta, ScheduleConfig, SchedulerOptions,
};
use exegpt_cluster::ClusterSpec;
use exegpt_dist::LengthDist;
use exegpt_model::ModelConfig;
use exegpt_sim::Workload;
use exegpt_units::Secs;

/// OPT-13B on four A40s serving the paper's summarization task S, profiled
/// once for the whole suite.
fn engine_task_s() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::builder()
            .model(ModelConfig::opt_13b())
            .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
            .workload(task_s())
            .build()
            .expect("builds")
    })
}

fn task_s() -> Workload {
    Workload::new(
        LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
        LengthDist::truncated_normal(32.0, 13.0, 80).expect("valid"),
    )
}

/// Task S with its output lengths drifted 1.5x (the shift experiments).
fn task_s_drifted() -> Workload {
    Workload::new(
        LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
        LengthDist::truncated_normal(48.0, 19.5, 120).expect("valid"),
    )
}

/// The replanned plan must match the full search byte-for-byte in what is
/// served (`config` and `estimate`; the `evals`/`cache_hits` counters
/// legitimately differ between the two paths), and must satisfy the runtime
/// plan invariants on the engine that will serve it.
fn assert_replays_full_search(engine: &Engine, replan: &Replan, opts: &SchedulerOptions) {
    let cold = engine.schedule_with(opts).expect("full search feasible");
    assert_eq!(replan.schedule.config, cold.config, "replan chose a different plan");
    assert_eq!(replan.schedule.estimate, cold.estimate, "replan estimate diverged");
    PlanInvariants::check(engine.simulator(), &replan.schedule).expect("plan invariants hold");
}

#[test]
fn drift_replans_match_the_full_search() {
    for bound in [Secs::new(10.0), Secs::new(30.0), Secs::INFINITY] {
        let opts = SchedulerOptions::bounded(bound);
        let incumbent = engine_task_s().schedule_with(&opts).expect("feasible");
        let mut engine = engine_task_s().clone();
        let replan = engine
            .reschedule_incremental(task_s_drifted(), &incumbent, &opts)
            .expect("replan feasible");
        assert!(!replan.fell_back, "bound {bound}: drift replan fell back to the full search");
        assert!(replan.neighborhood_tasks > 0);
        assert_replays_full_search(&engine, &replan, &opts);
    }
}

#[test]
fn fault_and_recovery_replans_match_the_full_search() {
    let opts = SchedulerOptions::bounded(Secs::new(30.0));
    let incumbent = engine_task_s().schedule_with(&opts).expect("feasible");

    // One device fails: replan on the survivors.
    let survivors = engine_task_s().simulator().cluster().survivors(1).expect("three left");
    let lost = engine_task_s().simulator().cluster().total_gpus() - survivors.total_gpus();
    let degraded = engine_task_s().with_cluster(survivors);
    let delta = ReplanDelta { gpu_delta: -(lost as isize), workload_changed: false };
    let after_fault = degraded.replan_from(&incumbent, delta, &opts).expect("replan feasible");
    assert!(!after_fault.fell_back, "fault replan fell back to the full search");
    assert_replays_full_search(&degraded, &after_fault, &opts);

    // The device comes back: replan from the degraded plan onto the
    // original topology.
    let recovered = degraded.with_cluster(engine_task_s().simulator().cluster().clone());
    let delta = ReplanDelta { gpu_delta: lost as isize, workload_changed: false };
    let after_recovery =
        recovered.replan_from(&after_fault.schedule, delta, &opts).expect("replan feasible");
    assert!(!after_recovery.fell_back, "recovery replan fell back to the full search");
    assert_replays_full_search(&recovered, &after_recovery, &opts);
    // Recovery lands back on the original plan.
    assert_eq!(after_recovery.schedule.config, incumbent.config);
    assert_eq!(after_recovery.schedule.estimate, incumbent.estimate);
}

#[test]
fn every_search_is_accounted_for() {
    let opts = SchedulerOptions::bounded(Secs::new(30.0));
    let incumbent = engine_task_s().schedule_with(&opts).expect("feasible");
    let mut engine = engine_task_s().clone();
    let replan = engine
        .reschedule_incremental(task_s_drifted(), &incumbent, &opts)
        .expect("replan feasible");
    // The certification sweep decides every task outside the warm results;
    // none may be silently dropped.
    assert!(replan.certified_tasks + replan.exact_tasks + replan.full_tasks > 0);
    assert!(
        replan.certified_tasks > replan.full_tasks,
        "the probe should exclude most of the portfolio cheaply \
         (certified {} vs full {})",
        replan.certified_tasks,
        replan.full_tasks
    );
}

#[test]
fn an_uncoverable_incumbent_takes_the_verified_fallback() {
    let base = SchedulerOptions::bounded(Secs::new(30.0));
    let incumbent = engine_task_s().schedule_with(&base).expect("feasible");
    // Restrict the portfolio to policies the incumbent does not belong to:
    // the neighborhood is empty, so the replanner must run the full search
    // rather than guess.
    let other = match incumbent.config {
        ScheduleConfig::Rra(_) => vec![Policy::WaaCompute, Policy::WaaMemory],
        ScheduleConfig::Waa(_) => vec![Policy::Rra],
    };
    let opts = SchedulerOptions { policies: other, ..base };
    let replan = engine_task_s()
        .replan_from(&incumbent, ReplanDelta::default(), &opts)
        .expect("replan feasible");
    assert!(replan.fell_back, "an empty neighborhood must fall back");
    assert_replays_full_search(engine_task_s(), &replan, &opts);
}
