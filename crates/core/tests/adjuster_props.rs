//! Property-based invariants of the §5.2 dynamic workload adjuster.

use exegpt::DynamicAdjuster;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Selected indices are valid, unique, and sorted; something is always
    /// admitted from a non-empty queue.
    #[test]
    fn selection_is_well_formed(
        lens in prop::collection::vec(1usize..512, 0..128),
        b_e in 1usize..32,
        mean in 8.0f64..400.0,
        thr in 0.0f64..0.5,
        cur in 0usize..256,
        sched in 0usize..256,
    ) {
        let adj = DynamicAdjuster::new(b_e, mean, thr);
        let chosen = adj.select_batch(&lens, cur, sched);
        if lens.is_empty() {
            prop_assert!(chosen.is_empty());
        } else {
            prop_assert!(!chosen.is_empty(), "a non-empty queue must admit something");
        }
        for w in chosen.windows(2) {
            prop_assert!(w[0] < w[1], "indices sorted and unique");
        }
        for &i in &chosen {
            prop_assert!(i < lens.len());
        }
    }

    /// With a rich queue of near-average queries, the admitted workload
    /// lands inside the threshold band around the (feedback-shifted) budget.
    #[test]
    fn workload_stays_in_band_for_rich_queues(
        b_e in 2usize..24,
        jitter in 0usize..16,
    ) {
        let mean = 100.0;
        let thr = 0.15;
        let adj = DynamicAdjuster::new(b_e, mean, thr);
        let lens: Vec<usize> = (0..256).map(|i| 92 + ((i + jitter) * 7) % 16).collect();
        let chosen = adj.select_batch(&lens, 0, 0);
        let sum: usize = chosen.iter().map(|&i| lens[i]).sum();
        let target = b_e as f64 * mean;
        prop_assert!(
            (sum as f64) >= target * (1.0 - thr) - 108.0,
            "undershoot: {sum} vs target {target}"
        );
        prop_assert!(
            (sum as f64) <= target * (1.0 + thr) + 108.0,
            "overshoot: {sum} vs target {target}"
        );
    }

    /// The decode-pool feedback never moves the budget outside the band:
    /// admission counts are bounded regardless of pool drift.
    #[test]
    fn feedback_is_band_limited(
        b_e in 2usize..24,
        cur in 0usize..10_000,
        sched in 0usize..10_000,
    ) {
        let adj = DynamicAdjuster::new(b_e, 100.0, 0.1);
        let lens = vec![100usize; 512];
        let n = adj.encoder_batch(&lens, cur, sched);
        // Band of +-10% around b_e * 100 tokens of 100-token queries.
        prop_assert!(n >= b_e.saturating_sub(b_e / 5 + 1));
        prop_assert!(n <= b_e + b_e / 5 + 1, "admitted {n} for b_e {b_e}");
    }
}
