//! Property-based invariants of the §5.2 dynamic workload adjuster.

use exegpt::DynamicAdjuster;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Selected indices are valid, unique, and sorted; something is always
    /// admitted from a non-empty queue.
    #[test]
    fn selection_is_well_formed(
        lens in prop::collection::vec(1usize..512, 0..128),
        b_e in 1usize..32,
        mean in 8.0f64..400.0,
        thr in 0.0f64..0.5,
        cur in 0usize..256,
        sched in 0usize..256,
    ) {
        let adj = DynamicAdjuster::new(b_e, mean, thr);
        let chosen = adj.select_batch(&lens, cur, sched);
        if lens.is_empty() {
            prop_assert!(chosen.is_empty());
        } else {
            prop_assert!(!chosen.is_empty(), "a non-empty queue must admit something");
        }
        for w in chosen.windows(2) {
            prop_assert!(w[0] < w[1], "indices sorted and unique");
        }
        for &i in &chosen {
            prop_assert!(i < lens.len());
        }
    }

    /// With a rich queue of near-average queries, the admitted workload
    /// lands inside the threshold band around the (feedback-shifted) budget.
    #[test]
    fn workload_stays_in_band_for_rich_queues(
        b_e in 2usize..24,
        jitter in 0usize..16,
    ) {
        let mean = 100.0;
        let thr = 0.15;
        let adj = DynamicAdjuster::new(b_e, mean, thr);
        let lens: Vec<usize> = (0..256).map(|i| 92 + ((i + jitter) * 7) % 16).collect();
        let chosen = adj.select_batch(&lens, 0, 0);
        let sum: usize = chosen.iter().map(|&i| lens[i]).sum();
        let target = b_e as f64 * mean;
        prop_assert!(
            (sum as f64) >= target * (1.0 - thr) - 108.0,
            "undershoot: {sum} vs target {target}"
        );
        prop_assert!(
            (sum as f64) <= target * (1.0 + thr) + 108.0,
            "overshoot: {sum} vs target {target}"
        );
    }

    /// The decode-pool feedback never moves the budget outside the band:
    /// admission counts are bounded regardless of pool drift.
    #[test]
    fn feedback_is_band_limited(
        b_e in 2usize..24,
        cur in 0usize..10_000,
        sched in 0usize..10_000,
    ) {
        let adj = DynamicAdjuster::new(b_e, 100.0, 0.1);
        let lens = vec![100usize; 512];
        let n = adj.encoder_batch(&lens, cur, sched);
        // Band of +-10% around b_e * 100 tokens of 100-token queries.
        prop_assert!(n >= b_e.saturating_sub(b_e / 5 + 1));
        prop_assert!(n <= b_e + b_e / 5 + 1, "admitted {n} for b_e {b_e}");
    }
}

// Decoder-nudge path: the `scheduled − current` pool feedback that shifts
// the admission budget inside the threshold band.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A fuller decoder pool never admits more: admission is monotone
    /// non-increasing in the current pool size (uniform queues, so counts
    /// order the same way workloads do).
    #[test]
    fn nudge_is_monotone_in_pool_size(
        b_e in 2usize..24,
        sched in 1usize..512,
        cur_a in 0usize..512,
        cur_b in 0usize..512,
        len in 20usize..180,
    ) {
        let adj = DynamicAdjuster::new(b_e, 100.0, 0.2);
        let lens = vec![len; 1024];
        let (small, large) = if cur_a <= cur_b { (cur_a, cur_b) } else { (cur_b, cur_a) };
        let n_small = adj.encoder_batch(&lens, small, sched);
        let n_large = adj.encoder_batch(&lens, large, sched);
        prop_assert!(
            n_small >= n_large,
            "pool {small} admitted {n_small} < pool {large} admitted {n_large}"
        );
    }

    /// Extreme pool drift saturates the budget at the band edges: far
    /// behind schedule admits to the band's top, far ahead to its bottom,
    /// and a balanced pool sits in between. Fine-grained 10-token queries
    /// make the admitted workload track the budget within one query.
    #[test]
    fn nudge_saturates_at_band_edges(
        b_e in 4usize..24,
        extreme in 1_000usize..10_000,
        balanced in 0usize..64,
    ) {
        let adj = DynamicAdjuster::new(b_e, 100.0, 0.1);
        let lens = vec![10usize; 4096];
        let workload = |chosen: &[usize]| chosen.iter().map(|&i| lens[i] as f64).sum::<f64>();
        let target = 100.0 * b_e as f64;
        let behind = workload(&adj.select_batch(&lens, 0, extreme));
        let ahead = workload(&adj.select_batch(&lens, extreme, 0));
        let neutral = workload(&adj.select_batch(&lens, balanced, balanced));
        prop_assert!((behind - 1.1 * target).abs() <= 10.0, "behind {behind} vs hi {}", 1.1 * target);
        prop_assert!((ahead - 0.9 * target).abs() <= 10.0, "ahead {ahead} vs lo {}", 0.9 * target);
        prop_assert!(behind > neutral && neutral > ahead,
            "nudge direction: behind {behind} > neutral {neutral} > ahead {ahead}");
    }

    /// Closed-loop recovery: starting with a decoder pool well short of
    /// schedule and terminating a steady batch per phase, the nudge pulls
    /// the pool back to schedule and holds it in a bounded oscillation
    /// (the budget band limits the per-phase correction to about `B_E`).
    #[test]
    fn closed_loop_recovers_pool_after_early_terminations(
        b_e in 4usize..8,
        sched in 64usize..256,
        deficit in 16usize..64,
    ) {
        let adj = DynamicAdjuster::new(b_e, 100.0, 0.1);
        let lens = vec![10usize; 8192];
        let neutral = adj.encoder_batch(&lens, sched, sched);
        let mut pool = sched.saturating_sub(deficit);
        let slack = 2 * b_e;
        for phase in 0..100 {
            pool += adj.encoder_batch(&lens, pool, sched);
            pool -= neutral.min(pool);
            if phase >= 50 {
                prop_assert!(
                    pool + slack >= sched && pool <= sched + slack,
                    "phase {phase}: pool {pool} escaped schedule {sched} ± {slack}"
                );
            }
        }
    }
}
