//! End-to-end behaviour of the constraint-aware scheduler.

use exegpt::{Engine, Policy, ScheduleConfig, ScheduleError, SchedulerOptions};
use exegpt_cluster::ClusterSpec;
use exegpt_dist::LengthDist;
use exegpt_model::ModelConfig;
use exegpt_sim::Workload;
use exegpt_units::Secs;

/// OPT-13B on four A40s serving the paper's summarization task S.
fn engine_task_s() -> Engine {
    Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
        .workload(Workload::new(
            LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
            LengthDist::truncated_normal(32.0, 13.0, 80).expect("valid"),
        ))
        .build()
        .expect("builds")
}

#[test]
fn schedules_satisfy_their_latency_bound() {
    let engine = engine_task_s();
    for bound in [5.0, 10.0, 30.0].map(Secs::new) {
        let s = engine.schedule(bound).expect("feasible");
        assert!(
            s.estimate.latency <= bound * 1.0001,
            "bound {bound}: selected latency {}",
            s.estimate.latency
        );
        assert!(s.estimate.throughput > 0.0);
    }
}

#[test]
fn relaxing_the_bound_never_hurts_throughput() {
    // The essence of constraint-aware scheduling: the feasible set only
    // grows as the bound relaxes (Table 6's trend).
    let engine = engine_task_s();
    let mut last = 0.0;
    for bound in [4.0, 8.0, 16.0, 64.0, f64::INFINITY].map(Secs::new) {
        if let Ok(s) = engine.schedule(bound) {
            assert!(
                s.estimate.throughput >= last * 0.999,
                "throughput regressed at bound {bound}: {} < {last}",
                s.estimate.throughput
            );
            last = s.estimate.throughput;
        }
    }
    assert!(last > 0.0, "the unconstrained case must be feasible");
}

#[test]
fn impossible_bound_is_reported() {
    let engine = engine_task_s();
    let err = engine.schedule(Secs::new(1e-3)).expect_err("1 ms is impossible");
    assert!(matches!(err, ScheduleError::NoFeasibleSchedule { .. }));
}

#[test]
fn policy_restriction_is_respected() {
    let engine = engine_task_s();
    let opts = SchedulerOptions {
        policies: vec![Policy::Rra],
        ..SchedulerOptions::bounded(Secs::INFINITY)
    };
    let s = engine.schedule_with(&opts).expect("feasible");
    assert!(matches!(s.config, ScheduleConfig::Rra(_)));

    let opts = SchedulerOptions {
        policies: vec![Policy::WaaCompute],
        ..SchedulerOptions::bounded(Secs::INFINITY)
    };
    let s = engine.schedule_with(&opts).expect("feasible");
    assert!(matches!(s.config, ScheduleConfig::Waa(_)));
}

#[test]
fn portfolio_beats_or_matches_each_single_policy() {
    let engine = engine_task_s();
    let bound = Secs::new(12.0);
    let all = engine.schedule(bound).expect("feasible").estimate.throughput;
    for policy in Policy::all() {
        let opts = SchedulerOptions { policies: vec![policy], ..SchedulerOptions::bounded(bound) };
        if let Ok(s) = engine.schedule_with(&opts) {
            assert!(
                all >= s.estimate.throughput * 0.999,
                "{policy:?} alone beat the portfolio: {} > {all}",
                s.estimate.throughput
            );
        }
    }
}

#[test]
fn invalid_options_are_rejected() {
    let engine = engine_task_s();
    let err = engine.schedule(Secs::ZERO).expect_err("zero bound");
    assert!(matches!(err, ScheduleError::InvalidOptions { what: "latency_bound", .. }));
    let opts = SchedulerOptions { policies: vec![], ..SchedulerOptions::bounded(Secs::new(10.0)) };
    assert!(matches!(
        engine.schedule_with(&opts),
        Err(ScheduleError::InvalidOptions { what: "policies", .. })
    ));
    let opts =
        SchedulerOptions { eps_latency_frac: 1.5, ..SchedulerOptions::bounded(Secs::new(10.0)) };
    assert!(matches!(
        engine.schedule_with(&opts),
        Err(ScheduleError::InvalidOptions { what: "eps_latency_frac", .. })
    ));
}

#[test]
fn sequential_and_parallel_search_agree() {
    let engine = engine_task_s();
    let bound = Secs::new(10.0);
    let par = engine
        .schedule_with(&SchedulerOptions { parallel: true, ..SchedulerOptions::bounded(bound) })
        .expect("feasible");
    let seq = engine
        .schedule_with(&SchedulerOptions { parallel: false, ..SchedulerOptions::bounded(bound) })
        .expect("feasible");
    assert_eq!(par.config, seq.config);
    assert_eq!(par.estimate, seq.estimate);
}

#[test]
fn schedule_is_deterministic_across_pool_widths() {
    // The determinism contract: byte-for-byte identical results (including
    // the evals and cache_hits counters) for serial execution and for any
    // search-pool width. A fresh engine per run keeps the evaluation cache
    // cold, so the counters are comparable too.
    let bound = Secs::new(10.0);
    let run = |parallel: bool, pool_threads: Option<usize>| {
        engine_task_s()
            .schedule_with(&SchedulerOptions {
                parallel,
                pool_threads,
                ..SchedulerOptions::bounded(bound)
            })
            .expect("feasible")
    };
    let reference = run(false, None);
    assert_eq!(reference, run(true, None), "auto-width pool diverged from serial");
    for width in [1, 2, 3, 8] {
        assert_eq!(reference, run(true, Some(width)), "pool width {width} diverged");
    }
}

#[test]
fn repeated_scheduling_hits_the_shared_cache() {
    let engine = engine_task_s();
    let first = engine.schedule(Secs::new(10.0)).expect("feasible");
    let second = engine.schedule(Secs::new(10.0)).expect("feasible");
    assert_eq!(first.config, second.config);
    assert_eq!(first.estimate, second.estimate);
    assert!(
        second.cache_hits > first.cache_hits,
        "a re-run on a warm engine must answer more lookups from the cache \
         ({} vs {})",
        second.cache_hits,
        first.cache_hits
    );
}

#[test]
fn rescheduling_for_a_new_workload_reuses_the_profile() {
    let engine = engine_task_s();
    // Shift to longer outputs (task-T-like); schedules still found.
    let shifted = engine.with_workload(Workload::new(
        LengthDist::truncated_normal(128.0, 81.0, 256).expect("valid"),
        LengthDist::truncated_normal(128.0, 68.0, 320).expect("valid"),
    ));
    let s = shifted.schedule(Secs::INFINITY).expect("feasible");
    assert!(s.estimate.throughput > 0.0 && s.estimate.throughput.is_finite());
    // Longer outputs mean ~4x the decode tokens per query; the optimizer
    // must adapt the configuration rather than reuse task S's choice.
    let base = engine.schedule(Secs::INFINITY).expect("feasible");
    assert_ne!(s.config, base.config, "schedule should adapt to the new workload");
}
