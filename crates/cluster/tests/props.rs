//! Property-based invariants of the roofline cost model and collectives.

use exegpt_cluster::{ClusterSpec, CostModel, GpuSpec, Interconnect};
use exegpt_model::KernelCost;
use exegpt_units::{Bytes, Secs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Kernel time is monotone in both FLOPs and bytes, and always at
    /// least the launch overhead.
    #[test]
    fn kernel_time_is_monotone(
        flops in 0.0f64..1e15,
        bytes in 0.0f64..1e12,
        df in 0.0f64..1e14,
        db in 0.0f64..1e11,
    ) {
        let cm = CostModel::new(GpuSpec::a40());
        let t0 = cm.kernel_time(KernelCost { flops, bytes });
        let t1 = cm.kernel_time(KernelCost { flops: flops + df, bytes });
        let t2 = cm.kernel_time(KernelCost { flops, bytes: bytes + db });
        prop_assert!(t0 >= cm.gpu().launch_overhead());
        prop_assert!(t1 >= t0 - Secs::new(1e-15));
        prop_assert!(t2 >= t0 - Secs::new(1e-15));
        prop_assert!(t0.is_finite());
    }

    /// All-reduce time grows with message size and group size, and a
    /// faster link is never slower.
    #[test]
    fn allreduce_is_well_behaved(raw_bytes in 0.0f64..1e10, group in 1usize..64) {
        let nv = Interconnect::nvlink3();
        let pcie = Interconnect::pcie4_x16();
        let bytes = Bytes::new(raw_bytes);
        let eps = Secs::new(1e-12);
        prop_assert!(nv.allreduce_time(bytes, group) <= pcie.allreduce_time(bytes, group) + eps);
        prop_assert!(pcie.allreduce_time(bytes + Bytes::new(1e6), group) >= pcie.allreduce_time(bytes, group));
        prop_assert!(pcie.allreduce_time(bytes, group + 1) >= pcie.allreduce_time(bytes, group) - eps);
    }

    /// Sub-clusters preserve the node-local GPU mapping.
    #[test]
    fn subcluster_mapping_is_consistent(gpus in 1usize..8) {
        let c = ClusterSpec::a40_cluster();
        let s = c.subcluster(gpus).expect("within one node");
        prop_assert_eq!(s.total_gpus(), gpus);
        prop_assert_eq!(s.num_nodes(), 1);
        for i in 0..gpus {
            prop_assert_eq!(s.node_of(exegpt_cluster::GpuId(i)), 0);
        }
    }
}
