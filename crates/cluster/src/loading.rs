//! Model (re-)deployment cost: loading parameters from SSD or host DRAM.
//!
//! Reproduces the cost structure behind Table 4 of the paper (§7.7): initial
//! deployment streams weights from SSD; re-deployment after a schedule change
//! reloads from host DRAM, which is several times faster.

use exegpt_dist::convert::lossless_f64;
use exegpt_units::{Bytes, Secs};
use serde::{Deserialize, Serialize};

use crate::topology::ClusterSpec;

/// Where the weights are loaded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadSource {
    /// Initial deployment: weights on NVMe SSD.
    Ssd,
    /// Re-deployment: weights cached in host DRAM.
    Dram,
}

/// Deployment-time model for a cluster.
///
/// Loading is parallel across nodes (each node reads its own shard from its
/// own SSD) and fan-out limited per GPU by the effective host→device
/// bandwidth; a fixed per-deployment overhead covers process startup and
/// NCCL/communicator initialization.
///
/// # Example
///
/// ```
/// use exegpt_cluster::{ClusterSpec, LoadCostModel, LoadSource};
/// use exegpt_model::ModelConfig;
///
/// let lcm = LoadCostModel::new(ClusterSpec::a40_cluster());
/// let m = ModelConfig::gpt3_175b();
/// let ssd = lcm.load_time(m.param_bytes(), 32, LoadSource::Ssd);
/// let dram = lcm.load_time(m.param_bytes(), 32, LoadSource::Dram);
/// assert!(dram < ssd);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadCostModel {
    cluster: ClusterSpec,
    fixed_overhead: Secs,
}

impl LoadCostModel {
    /// Creates a deployment-cost model for the cluster.
    pub fn new(cluster: ClusterSpec) -> Self {
        Self { cluster, fixed_overhead: Secs::from_secs(0.35) }
    }

    /// Time to load `param_bytes` of weights onto `gpus` GPUs.
    ///
    /// `gpus` is clamped to at least 1. Nodes involved:
    /// `ceil(gpus / gpus_per_node)`.
    pub fn load_time(&self, param_bytes: u64, gpus: usize, source: LoadSource) -> Secs {
        let gpus = gpus.max(1);
        let nodes = gpus.div_ceil(self.cluster.gpus_per_node());
        let bytes = Bytes::new(lossless_f64(param_bytes));
        let per_gpu = bytes / lossless_f64(gpus);
        let xfer = match source {
            LoadSource::Ssd => {
                let per_node = bytes / lossless_f64(nodes);
                // SSD read and PCIe upload are pipelined; the slower governs.
                (per_node / self.cluster.ssd_bandwidth())
                    .max(per_gpu / self.cluster.dram_to_gpu_bandwidth())
            }
            LoadSource::Dram => per_gpu / self.cluster.dram_to_gpu_bandwidth(),
        };
        self.fixed_overhead + xfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exegpt_model::ModelConfig;

    fn lcm() -> LoadCostModel {
        LoadCostModel::new(ClusterSpec::a40_cluster())
    }

    #[test]
    fn dram_is_faster_than_ssd() {
        let m = ModelConfig::gpt3_341b();
        let ssd = lcm().load_time(m.param_bytes(), 48, LoadSource::Ssd);
        let dram = lcm().load_time(m.param_bytes(), 48, LoadSource::Dram);
        assert!(dram < ssd);
    }

    #[test]
    fn bigger_models_take_longer() {
        let small = ModelConfig::gpt3_101b();
        let large = ModelConfig::gpt3_175b();
        let t_small = lcm().load_time(small.param_bytes(), 32, LoadSource::Ssd);
        let t_large = lcm().load_time(large.param_bytes(), 32, LoadSource::Ssd);
        assert!(t_large > t_small);
    }

    /// Shape check against Table 4: every DRAM reload is seconds-scale and
    /// the 341B/48-GPU SSD load is in the ~10-20 s band the paper reports.
    #[test]
    fn table4_magnitudes() {
        let m = ModelConfig::gpt3_341b();
        let ssd = lcm().load_time(m.param_bytes(), 48, LoadSource::Ssd).as_secs();
        assert!((8.0..25.0).contains(&ssd), "341B SSD load was {ssd:.1}s");
        let dram = lcm().load_time(m.param_bytes(), 48, LoadSource::Dram).as_secs();
        assert!((1.0..6.0).contains(&dram), "341B DRAM load was {dram:.1}s");
    }

    #[test]
    fn zero_gpus_is_clamped() {
        let t = lcm().load_time(1 << 30, 0, LoadSource::Dram);
        assert!(t.is_finite() && t > Secs::ZERO);
    }
}
