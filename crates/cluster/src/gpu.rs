//! GPU device capability descriptions.

use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// Capability description of a single GPU device.
///
/// The two presets correspond to the devices in Table 2 of the paper. Peak
/// numbers are the published dense-FP16 tensor-core throughput and HBM
/// bandwidth; the [`CostModel`](crate::CostModel) applies saturating
/// efficiency curves on top of them, so these are *ceilings*, not achieved
/// rates.
///
/// # Example
///
/// ```
/// use exegpt_cluster::GpuSpec;
///
/// let a100 = GpuSpec::a100_80gb();
/// assert!(a100.peak_flops() > GpuSpec::a40().peak_flops());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    name: String,
    mem_bytes: u64,
    peak_flops: f64,
    mem_bandwidth: f64,
    launch_overhead_s: f64,
    max_compute_efficiency: f64,
    max_memory_efficiency: f64,
    /// FLOPs at which compute efficiency reaches half of its maximum.
    compute_half_sat_flops: f64,
    /// Bytes at which memory efficiency reaches half of its maximum.
    memory_half_sat_bytes: f64,
}

impl GpuSpec {
    /// Creates a custom GPU spec.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidSpec`] if any capacity/throughput is
    /// non-positive or an efficiency is outside `(0, 1]`.
    pub fn new(
        name: impl Into<String>,
        mem_bytes: u64,
        peak_flops: f64,
        mem_bandwidth: f64,
    ) -> Result<Self, ClusterError> {
        if mem_bytes == 0 {
            return Err(ClusterError::InvalidSpec { what: "mem_bytes", why: "must be non-zero" });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(peak_flops > 0.0) || !(mem_bandwidth > 0.0) {
            return Err(ClusterError::InvalidSpec {
                what: "throughput",
                why: "peak_flops and mem_bandwidth must be positive",
            });
        }
        Ok(Self {
            name: name.into(),
            mem_bytes,
            peak_flops,
            mem_bandwidth,
            launch_overhead_s: 12e-6,
            max_compute_efficiency: 0.62,
            max_memory_efficiency: 0.82,
            compute_half_sat_flops: 3.0e9,
            memory_half_sat_bytes: 24.0e6,
        })
    }

    /// NVIDIA A40: 48 GB, ~149.7 TFLOPS dense FP16, 696 GB/s GDDR6.
    pub fn a40() -> Self {
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        Self::new("A40", 48 * (1 << 30) as u64, 149.7e12, 696e9).expect("preset spec is valid")
    }

    /// NVIDIA A100 80 GB SXM: ~312 TFLOPS dense FP16, 2039 GB/s HBM2e.
    pub fn a100_80gb() -> Self {
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        Self::new("A100-80GB", 80 * (1 << 30) as u64, 312e12, 2039e9).expect("preset spec is valid")
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device memory capacity in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Peak dense-FP16 throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops
    }

    /// Peak device-memory bandwidth in B/s.
    pub fn mem_bandwidth(&self) -> f64 {
        self.mem_bandwidth
    }

    /// Fixed per-kernel launch overhead in seconds.
    pub fn launch_overhead_s(&self) -> f64 {
        self.launch_overhead_s
    }

    /// Achieved fraction of peak compute for a kernel of `flops` work.
    ///
    /// Saturating curve `max_eff · x / (x + k)`: tiny kernels achieve a small
    /// fraction of peak (launch ramp, low occupancy), large GEMMs approach
    /// `max_eff`. This is the mechanism by which batch size trades latency
    /// for throughput throughout the reproduction.
    pub fn compute_efficiency(&self, flops: f64) -> f64 {
        let x = flops.max(0.0);
        self.max_compute_efficiency * x / (x + self.compute_half_sat_flops)
    }

    /// Achieved fraction of peak bandwidth for a kernel moving `bytes`.
    pub fn memory_efficiency(&self, bytes: f64) -> f64 {
        let x = bytes.max(0.0);
        self.max_memory_efficiency * x / (x + self.memory_half_sat_bytes)
    }

    /// Overrides the launch overhead (used by baseline models that add host
    /// overhead, and by tests).
    pub fn with_launch_overhead(mut self, seconds: f64) -> Self {
        self.launch_overhead_s = seconds;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_specs() {
        assert!(GpuSpec::new("bad", 0, 1.0, 1.0).is_err());
        assert!(GpuSpec::new("bad", 1, 0.0, 1.0).is_err());
        assert!(GpuSpec::new("bad", 1, 1.0, -1.0).is_err());
        assert!(GpuSpec::new("bad", 1, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn efficiency_is_monotone_and_bounded() {
        let g = GpuSpec::a40();
        let mut prev = 0.0;
        for exp in 0..15 {
            let e = g.compute_efficiency(10f64.powi(exp));
            assert!(e >= prev);
            assert!(e < 1.0);
            prev = e;
        }
        assert!(g.compute_efficiency(1e15) > 0.6);
    }

    #[test]
    fn a100_beats_a40() {
        let a40 = GpuSpec::a40();
        let a100 = GpuSpec::a100_80gb();
        assert!(a100.peak_flops() > a40.peak_flops());
        assert!(a100.mem_bandwidth() > a40.mem_bandwidth());
        assert!(a100.mem_bytes() > a40.mem_bytes());
    }
}
