//! GPU device capability descriptions.

use exegpt_units::{Bytes, BytesPerSec, Flops, FlopsPerSec, Secs};
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// Capability description of a single GPU device.
///
/// The two presets correspond to the devices in Table 2 of the paper. Peak
/// numbers are the published dense-FP16 tensor-core throughput and HBM
/// bandwidth; the [`CostModel`](crate::CostModel) applies saturating
/// efficiency curves on top of them, so these are *ceilings*, not achieved
/// rates.
///
/// # Example
///
/// ```
/// use exegpt_cluster::GpuSpec;
///
/// let a100 = GpuSpec::a100_80gb();
/// assert!(a100.peak_flops() > GpuSpec::a40().peak_flops());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    name: String,
    mem_bytes: u64,
    peak_flops: FlopsPerSec,
    mem_bandwidth: BytesPerSec,
    launch_overhead: Secs,
    max_compute_efficiency: f64,
    max_memory_efficiency: f64,
    /// Work at which compute efficiency reaches half of its maximum.
    compute_half_sat: Flops,
    /// Traffic at which memory efficiency reaches half of its maximum.
    memory_half_sat: Bytes,
}

impl GpuSpec {
    /// Creates a custom GPU spec.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidSpec`] if any capacity/throughput is
    /// non-positive (or NaN).
    pub fn new(
        name: impl Into<String>,
        mem_bytes: u64,
        peak_flops: FlopsPerSec,
        mem_bandwidth: BytesPerSec,
    ) -> Result<Self, ClusterError> {
        if mem_bytes == 0 {
            return Err(ClusterError::InvalidSpec { what: "mem_bytes", why: "must be non-zero" });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(peak_flops.as_f64() > 0.0) || !(mem_bandwidth.as_f64() > 0.0) {
            return Err(ClusterError::InvalidSpec {
                what: "throughput",
                why: "peak_flops and mem_bandwidth must be positive",
            });
        }
        Ok(Self {
            name: name.into(),
            mem_bytes,
            peak_flops,
            mem_bandwidth,
            launch_overhead: Secs::from_micros(12.0),
            max_compute_efficiency: 0.62,
            max_memory_efficiency: 0.82,
            compute_half_sat: Flops::new(3.0e9),
            memory_half_sat: Bytes::new(24.0e6),
        })
    }

    /// NVIDIA A40: 48 GB, ~149.7 TFLOPS dense FP16, 696 GB/s GDDR6.
    pub fn a40() -> Self {
        Self::new(
            "A40",
            48 * (1u64 << 30),
            FlopsPerSec::from_tflops(149.7),
            BytesPerSec::from_gb_per_sec(696.0),
        )
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        .expect("preset spec is valid")
    }

    /// NVIDIA A100 80 GB SXM: ~312 TFLOPS dense FP16, 2039 GB/s HBM2e.
    pub fn a100_80gb() -> Self {
        Self::new(
            "A100-80GB",
            80 * (1u64 << 30),
            FlopsPerSec::from_tflops(312.0),
            BytesPerSec::from_gb_per_sec(2039.0),
        )
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        .expect("preset spec is valid")
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device memory capacity in bytes (integer: a discrete capacity, not a
    /// roofline quantity).
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Peak dense-FP16 throughput.
    pub fn peak_flops(&self) -> FlopsPerSec {
        self.peak_flops
    }

    /// Peak device-memory bandwidth.
    pub fn mem_bandwidth(&self) -> BytesPerSec {
        self.mem_bandwidth
    }

    /// Fixed per-kernel launch overhead.
    pub fn launch_overhead(&self) -> Secs {
        self.launch_overhead
    }

    /// Achieved fraction of peak compute for a kernel of `flops` work.
    ///
    /// Saturating curve `max_eff · x / (x + k)`: tiny kernels achieve a small
    /// fraction of peak (launch ramp, low occupancy), large GEMMs approach
    /// `max_eff`. This is the mechanism by which batch size trades latency
    /// for throughput throughout the reproduction.
    pub fn compute_efficiency(&self, flops: Flops) -> f64 {
        let x = flops.max_zero();
        self.max_compute_efficiency * (x / (x + self.compute_half_sat))
    }

    /// Achieved fraction of peak bandwidth for a kernel moving `bytes`.
    pub fn memory_efficiency(&self, bytes: Bytes) -> f64 {
        let x = bytes.max_zero();
        self.max_memory_efficiency * (x / (x + self.memory_half_sat))
    }

    /// Overrides the launch overhead (used by baseline models that add host
    /// overhead, and by tests).
    pub fn with_launch_overhead(mut self, overhead: Secs) -> Self {
        self.launch_overhead = overhead;
        self
    }

    /// The same device running `factor`× slower: peak compute and memory
    /// bandwidth are divided by `factor` (memory *capacity* is unchanged —
    /// a straggler still holds its weights and KV entries).
    ///
    /// This is how the fault-injection layer expresses a degraded device to
    /// the cost model: every roofline term scales, so kernel times on the
    /// straggler stretch by up to `factor`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidSpec`] unless `factor` is finite and
    /// ≥ 1 (a "slowdown" below 1 would be a speedup).
    pub fn slowed(&self, factor: f64) -> Result<Self, ClusterError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(factor >= 1.0) || !factor.is_finite() {
            return Err(ClusterError::InvalidSpec {
                what: "slowdown factor",
                why: "must be finite and >= 1",
            });
        }
        let mut slowed = self.clone();
        slowed.name = format!("{} (x{factor:.2} slow)", self.name);
        slowed.peak_flops = FlopsPerSec::new(self.peak_flops.as_f64() / factor);
        slowed.mem_bandwidth = BytesPerSec::new(self.mem_bandwidth.as_f64() / factor);
        Ok(slowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_specs() {
        let one_bps = BytesPerSec::new(1.0);
        assert!(GpuSpec::new("bad", 0, FlopsPerSec::new(1.0), one_bps).is_err());
        assert!(GpuSpec::new("bad", 1, FlopsPerSec::new(0.0), one_bps).is_err());
        assert!(GpuSpec::new("bad", 1, FlopsPerSec::new(1.0), BytesPerSec::new(-1.0)).is_err());
        assert!(GpuSpec::new("bad", 1, FlopsPerSec::new(f64::NAN), one_bps).is_err());
    }

    #[test]
    fn efficiency_is_monotone_and_bounded() {
        let g = GpuSpec::a40();
        let mut prev = 0.0;
        for exp in 0..15 {
            let e = g.compute_efficiency(Flops::new(10f64.powi(exp)));
            assert!(e >= prev);
            assert!(e < 1.0);
            prev = e;
        }
        assert!(g.compute_efficiency(Flops::new(1e15)) > 0.6);
    }

    #[test]
    fn slowdown_scales_throughput_not_capacity() {
        let g = GpuSpec::a40();
        let s = g.slowed(2.0).expect("valid factor");
        assert_eq!(s.mem_bytes(), g.mem_bytes(), "a straggler keeps its memory");
        assert!((s.peak_flops().as_f64() - g.peak_flops().as_f64() / 2.0).abs() < 1e-6);
        assert!((s.mem_bandwidth().as_f64() - g.mem_bandwidth().as_f64() / 2.0).abs() < 1e-6);
        assert!(s.name().contains("slow"));
        // Factor 1 is the identity on every roofline term.
        let same = g.slowed(1.0).expect("valid factor");
        assert_eq!(same.peak_flops(), g.peak_flops());
        assert!(g.slowed(0.5).is_err(), "speedups are rejected");
        assert!(g.slowed(f64::NAN).is_err());
        assert!(g.slowed(f64::INFINITY).is_err());
    }

    #[test]
    fn a100_beats_a40() {
        let a40 = GpuSpec::a40();
        let a100 = GpuSpec::a100_80gb();
        assert!(a100.peak_flops() > a40.peak_flops());
        assert!(a100.mem_bandwidth() > a40.mem_bandwidth());
        assert!(a100.mem_bytes() > a40.mem_bytes());
    }
}
