//! Error types for the cluster crate.

/// Errors produced when constructing cluster specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A device or topology parameter was invalid.
    InvalidSpec {
        /// Which parameter was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: &'static str,
    },
    /// A sub-cluster request exceeded the available GPUs.
    InsufficientGpus {
        /// GPUs requested.
        requested: usize,
        /// GPUs available.
        available: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::InvalidSpec { what, why } => {
                write!(f, "invalid cluster spec `{what}`: {why}")
            }
            ClusterError::InsufficientGpus { requested, available } => {
                write!(f, "requested {requested} gpus but only {available} are available")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = ClusterError::InsufficientGpus { requested: 64, available: 48 };
        let s = e.to_string();
        assert!(s.contains("64") && s.contains("48"));
    }
}
