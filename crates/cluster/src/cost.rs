//! Roofline kernel-time model.

use exegpt_model::KernelCost;
use exegpt_units::{Bytes, Flops, Secs};

use crate::gpu::GpuSpec;

/// Turns a [`KernelCost`] (FLOPs + bytes) into time on a given GPU.
///
/// The model is a classical roofline with saturating efficiency:
///
/// ```text
/// t = max( flops / (peak_flops · eff_c(flops)),
///          bytes / (mem_bw    · eff_m(bytes)) ) + launch_overhead
/// ```
///
/// Efficiency curves live on [`GpuSpec`]; this type just combines them. It is
/// cheap to clone and `Send + Sync`, so the profiler can sweep it from
/// multiple threads.
///
/// # Example
///
/// ```
/// use exegpt_cluster::{CostModel, GpuSpec};
/// use exegpt_model::KernelCost;
///
/// let cm = CostModel::new(GpuSpec::a100_80gb());
/// let small = cm.kernel_time(KernelCost { flops: 1e6, bytes: 1e4 });
/// let large = cm.kernel_time(KernelCost { flops: 1e12, bytes: 1e8 });
/// assert!(large > small);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    gpu: GpuSpec,
}

impl CostModel {
    /// Creates a cost model for the given device.
    pub fn new(gpu: GpuSpec) -> Self {
        Self { gpu }
    }

    /// The underlying device spec.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Execution time of one kernel with the given work.
    ///
    /// Zero-work kernels still pay the launch overhead (a real `cudaLaunch`
    /// does too); callers that want "no kernel" should not call this.
    pub fn kernel_time(&self, cost: KernelCost) -> Secs {
        let flops = Flops::new(cost.flops);
        let bytes = Bytes::new(cost.bytes);
        let compute = if cost.flops > 0.0 {
            flops / (self.gpu.peak_flops() * self.gpu.compute_efficiency(flops))
        } else {
            Secs::ZERO
        };
        let memory = if cost.bytes > 0.0 {
            bytes / (self.gpu.mem_bandwidth() * self.gpu.memory_efficiency(bytes))
        } else {
            Secs::ZERO
        };
        compute.max(memory) + self.gpu.launch_overhead()
    }

    /// Execution time of a sequence of kernels run back to back.
    pub fn kernels_time<I>(&self, costs: I) -> Secs
    where
        I: IntoIterator<Item = KernelCost>,
    {
        costs.into_iter().map(|c| self.kernel_time(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> CostModel {
        CostModel::new(GpuSpec::a40())
    }

    #[test]
    fn zero_work_costs_only_overhead() {
        let t = cm().kernel_time(KernelCost::default());
        assert_eq!(t, cm().gpu().launch_overhead());
    }

    #[test]
    fn time_is_monotone_in_flops_and_bytes() {
        let c = cm();
        let mut prev = Secs::ZERO;
        for exp in 6..14 {
            let t = c.kernel_time(KernelCost { flops: 10f64.powi(exp), bytes: 0.0 });
            assert!(t > prev);
            prev = t;
        }
        let mut prev = Secs::ZERO;
        for exp in 3..11 {
            let t = c.kernel_time(KernelCost { flops: 0.0, bytes: 10f64.powi(exp) });
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn memory_bound_kernel_ignores_small_flops() {
        let c = cm();
        // Typical decode: tiny flops, big bytes.
        let t_mem = c.kernel_time(KernelCost { flops: 0.0, bytes: 1e9 });
        let t_both = c.kernel_time(KernelCost { flops: 1e8, bytes: 1e9 });
        assert!((t_both - t_mem).as_secs().abs() / t_mem.as_secs() < 1e-9);
    }

    #[test]
    fn kernels_time_sums() {
        let c = cm();
        let k = KernelCost { flops: 1e10, bytes: 1e7 };
        let one = c.kernel_time(k);
        let three = c.kernels_time([k, k, k]);
        assert!((three - one * 3.0).as_secs().abs() < 1e-12);
    }

    #[test]
    fn a100_is_faster_than_a40_on_big_kernels() {
        let k = KernelCost { flops: 1e12, bytes: 1e9 };
        let t40 = CostModel::new(GpuSpec::a40()).kernel_time(k);
        let t100 = CostModel::new(GpuSpec::a100_80gb()).kernel_time(k);
        assert!(t100 < t40);
    }
}
