//! Interconnect links and collective-communication cost formulas.

use exegpt_dist::convert::lossless_f64;
use exegpt_units::{Bytes, BytesPerSec, Secs};
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// A communication link characterized by bandwidth and base latency.
///
/// Presets match the paper's clusters (Table 2): NVLink 3.0 and 8×200 Gb HDR
/// InfiniBand on the A100 cluster; PCIe 4.0 ×16 and 100 Gb InfiniBand on the
/// A40 cluster.
///
/// # Example
///
/// ```
/// use exegpt_cluster::Interconnect;
/// use exegpt_units::Bytes;
///
/// let nv = Interconnect::nvlink3();
/// let pcie = Interconnect::pcie4_x16();
/// // All-reducing 100 MB across 8 GPUs is much cheaper over NVLink.
/// let payload = Bytes::new(100e6);
/// assert!(nv.allreduce_time(payload, 8) < pcie.allreduce_time(payload, 8) * 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    name: String,
    bandwidth: BytesPerSec,
    latency: Secs,
}

impl Interconnect {
    /// Creates a custom link.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidSpec`] for non-positive bandwidth or
    /// negative latency.
    pub fn new(
        name: impl Into<String>,
        bandwidth: BytesPerSec,
        latency: Secs,
    ) -> Result<Self, ClusterError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(bandwidth.as_f64() > 0.0) {
            return Err(ClusterError::InvalidSpec { what: "bandwidth", why: "must be positive" });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(latency.as_f64() >= 0.0) {
            return Err(ClusterError::InvalidSpec { what: "latency", why: "must be non-negative" });
        }
        Ok(Self { name: name.into(), bandwidth, latency })
    }

    /// NVLink 3.0: ~300 GB/s effective per-GPU pairwise, ~3 µs latency.
    pub fn nvlink3() -> Self {
        Self::new("NVLink 3.0", BytesPerSec::from_gb_per_sec(300.0), Secs::from_micros(3.0))
            // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
            .expect("preset link is valid")
    }

    /// PCIe 4.0 ×16: ~25 GB/s effective, ~5 µs latency.
    pub fn pcie4_x16() -> Self {
        Self::new("PCIe 4.0 x16", BytesPerSec::from_gb_per_sec(25.0), Secs::from_micros(5.0))
            // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
            .expect("preset link is valid")
    }

    /// 100 Gb InfiniBand: ~12 GB/s effective, ~10 µs latency.
    pub fn infiniband_100gb() -> Self {
        Self::new("InfiniBand 100Gb", BytesPerSec::from_gb_per_sec(12.0), Secs::from_micros(10.0))
            // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
            .expect("preset link is valid")
    }

    /// 8×200 Gb HDR InfiniBand (A100 cluster inter-node): ~190 GB/s, ~8 µs.
    pub fn infiniband_hdr_8x200gb() -> Self {
        Self::new(
            "InfiniBand 8x200Gb HDR",
            BytesPerSec::from_gb_per_sec(190.0),
            Secs::from_micros(8.0),
        )
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        .expect("preset link is valid")
    }

    /// Link name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Effective bandwidth.
    pub fn bandwidth(&self) -> BytesPerSec {
        self.bandwidth
    }

    /// Base message latency.
    pub fn latency(&self) -> Secs {
        self.latency
    }

    /// Time to send `bytes` point-to-point over this link.
    pub fn p2p_time(&self, bytes: Bytes) -> Secs {
        self.latency + bytes.max_zero() / self.bandwidth
    }

    /// The same link under degradation: bandwidth scaled by `bw_factor`
    /// (in `(0, 1]`) and `latency_add` added to the base latency.
    ///
    /// This is how the fault-injection layer expresses a flapping or
    /// contended link to the cost model; `bw_factor = 1` with
    /// `latency_add = 0` reproduces the healthy link exactly.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidSpec`] unless `bw_factor` is in
    /// `(0, 1]` and `latency_add` is finite and non-negative.
    pub fn degraded(&self, bw_factor: f64, latency_add: Secs) -> Result<Self, ClusterError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(bw_factor > 0.0 && bw_factor <= 1.0) {
            return Err(ClusterError::InvalidSpec { what: "bw_factor", why: "must be in (0, 1]" });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(latency_add.as_f64() >= 0.0) || !latency_add.as_f64().is_finite() {
            return Err(ClusterError::InvalidSpec {
                what: "latency_add",
                why: "must be finite and non-negative",
            });
        }
        let mut degraded = self.clone();
        degraded.name = format!("{} (degraded)", self.name);
        degraded.bandwidth = BytesPerSec::new(self.bandwidth.as_f64() * bw_factor);
        degraded.latency = self.latency + latency_add;
        Ok(degraded)
    }

    /// Time for a ring all-reduce of `bytes` across `group_size` peers.
    ///
    /// Standard ring cost: each peer sends `2·(n−1)/n · bytes` in `2·(n−1)`
    /// latency-bound steps. A group of 1 costs nothing.
    pub fn allreduce_time(&self, bytes: Bytes, group_size: usize) -> Secs {
        if group_size <= 1 {
            return Secs::ZERO;
        }
        let n = lossless_f64(group_size);
        let steps = 2.0 * (n - 1.0);
        self.latency * steps + bytes.max_zero() * (2.0 * (n - 1.0) / n) / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_links() {
        let zero = Secs::ZERO;
        assert!(Interconnect::new("x", BytesPerSec::new(0.0), zero).is_err());
        assert!(Interconnect::new("x", BytesPerSec::new(1.0), Secs::new(-1.0)).is_err());
        assert!(Interconnect::new("x", BytesPerSec::new(f64::NAN), zero).is_err());
    }

    #[test]
    fn p2p_includes_latency_floor() {
        let l = Interconnect::pcie4_x16();
        assert!(l.p2p_time(Bytes::ZERO) >= l.latency());
        assert!(l.p2p_time(Bytes::new(1e9)) > l.p2p_time(Bytes::new(1e6)));
    }

    #[test]
    fn allreduce_trivial_group_is_free() {
        let l = Interconnect::nvlink3();
        assert_eq!(l.allreduce_time(Bytes::new(1e9), 1), Secs::ZERO);
        assert_eq!(l.allreduce_time(Bytes::new(1e9), 0), Secs::ZERO);
    }

    #[test]
    fn allreduce_bandwidth_term_approaches_2x() {
        let l = Interconnect::new("ideal", BytesPerSec::new(1e9), Secs::ZERO).expect("valid");
        // 2(n-1)/n -> 2 as n grows.
        let t = l.allreduce_time(Bytes::new(1e9), 64);
        assert!((t.as_secs() - 2.0 * 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_link_is_slower_and_identity_at_nominal() {
        let l = Interconnect::pcie4_x16();
        let d = l.degraded(0.5, Secs::from_micros(100.0)).expect("valid degradation");
        assert!((d.bandwidth().as_f64() - l.bandwidth().as_f64() * 0.5).abs() < 1e-9);
        assert!(d.latency() > l.latency());
        assert!(d.p2p_time(Bytes::new(1e8)) > l.p2p_time(Bytes::new(1e8)));
        // Nominal parameters reproduce the healthy link's behaviour.
        let same = l.degraded(1.0, Secs::ZERO).expect("valid");
        assert_eq!(same.bandwidth(), l.bandwidth());
        assert_eq!(same.latency(), l.latency());
        assert!(l.degraded(0.0, Secs::ZERO).is_err());
        assert!(l.degraded(1.5, Secs::ZERO).is_err());
        assert!(l.degraded(0.5, Secs::new(-1.0)).is_err());
        assert!(l.degraded(f64::NAN, Secs::ZERO).is_err());
    }

    #[test]
    fn allreduce_grows_with_group() {
        let l = Interconnect::pcie4_x16();
        let b = Bytes::new(1e8);
        assert!(l.allreduce_time(b, 8) > l.allreduce_time(b, 2));
    }
}
