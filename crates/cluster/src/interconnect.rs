//! Interconnect links and collective-communication cost formulas.

use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// A communication link characterized by bandwidth and base latency.
///
/// Presets match the paper's clusters (Table 2): NVLink 3.0 and 8×200 Gb HDR
/// InfiniBand on the A100 cluster; PCIe 4.0 ×16 and 100 Gb InfiniBand on the
/// A40 cluster.
///
/// # Example
///
/// ```
/// use exegpt_cluster::Interconnect;
///
/// let nv = Interconnect::nvlink3();
/// let pcie = Interconnect::pcie4_x16();
/// // All-reducing 100 MB across 8 GPUs is much cheaper over NVLink.
/// assert!(nv.allreduce_time(100e6, 8) < pcie.allreduce_time(100e6, 8) / 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    name: String,
    bandwidth: f64,
    latency_s: f64,
}

impl Interconnect {
    /// Creates a custom link.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidSpec`] for non-positive bandwidth or
    /// negative latency.
    pub fn new(
        name: impl Into<String>,
        bandwidth: f64,
        latency_s: f64,
    ) -> Result<Self, ClusterError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(bandwidth > 0.0) {
            return Err(ClusterError::InvalidSpec { what: "bandwidth", why: "must be positive" });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(latency_s >= 0.0) {
            return Err(ClusterError::InvalidSpec { what: "latency", why: "must be non-negative" });
        }
        Ok(Self { name: name.into(), bandwidth, latency_s })
    }

    /// NVLink 3.0: ~300 GB/s effective per-GPU pairwise, ~3 µs latency.
    pub fn nvlink3() -> Self {
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        Self::new("NVLink 3.0", 300e9, 3e-6).expect("preset link is valid")
    }

    /// PCIe 4.0 ×16: ~25 GB/s effective, ~5 µs latency.
    pub fn pcie4_x16() -> Self {
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        Self::new("PCIe 4.0 x16", 25e9, 5e-6).expect("preset link is valid")
    }

    /// 100 Gb InfiniBand: ~12 GB/s effective, ~10 µs latency.
    pub fn infiniband_100gb() -> Self {
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        Self::new("InfiniBand 100Gb", 12e9, 10e-6).expect("preset link is valid")
    }

    /// 8×200 Gb HDR InfiniBand (A100 cluster inter-node): ~190 GB/s, ~8 µs.
    pub fn infiniband_hdr_8x200gb() -> Self {
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        Self::new("InfiniBand 8x200Gb HDR", 190e9, 8e-6).expect("preset link is valid")
    }

    /// Link name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Effective bandwidth in B/s.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Base message latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.latency_s
    }

    /// Time to send `bytes` point-to-point over this link.
    pub fn p2p_time(&self, bytes: f64) -> f64 {
        self.latency_s + bytes.max(0.0) / self.bandwidth
    }

    /// Time for a ring all-reduce of `bytes` across `group_size` peers.
    ///
    /// Standard ring cost: each peer sends `2·(n−1)/n · bytes` in `2·(n−1)`
    /// latency-bound steps. A group of 1 costs nothing.
    pub fn allreduce_time(&self, bytes: f64, group_size: usize) -> f64 {
        if group_size <= 1 {
            return 0.0;
        }
        let n = group_size as f64;
        let steps = 2.0 * (n - 1.0);
        steps * self.latency_s + 2.0 * (n - 1.0) / n * bytes.max(0.0) / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_links() {
        assert!(Interconnect::new("x", 0.0, 0.0).is_err());
        assert!(Interconnect::new("x", 1.0, -1.0).is_err());
        assert!(Interconnect::new("x", f64::NAN, 0.0).is_err());
    }

    #[test]
    fn p2p_includes_latency_floor() {
        let l = Interconnect::pcie4_x16();
        assert!(l.p2p_time(0.0) >= l.latency_s());
        assert!(l.p2p_time(1e9) > l.p2p_time(1e6));
    }

    #[test]
    fn allreduce_trivial_group_is_free() {
        let l = Interconnect::nvlink3();
        assert_eq!(l.allreduce_time(1e9, 1), 0.0);
        assert_eq!(l.allreduce_time(1e9, 0), 0.0);
    }

    #[test]
    fn allreduce_bandwidth_term_approaches_2x() {
        let l = Interconnect::new("ideal", 1e9, 0.0).expect("valid");
        // 2(n-1)/n -> 2 as n grows.
        let t = l.allreduce_time(1e9, 64);
        assert!((t - 2.0 * 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn allreduce_grows_with_group() {
        let l = Interconnect::pcie4_x16();
        assert!(l.allreduce_time(1e8, 8) > l.allreduce_time(1e8, 2));
    }
}
