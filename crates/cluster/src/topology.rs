//! Cluster topology: nodes, GPUs, and the links between them.

use exegpt_dist::convert::widen_u64;
use exegpt_units::BytesPerSec;
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;
use crate::gpu::GpuSpec;
use crate::interconnect::Interconnect;

/// Identifier of a GPU within a cluster (dense, `0..total_gpus`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GpuId(pub usize);

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// A homogeneous GPU cluster: `num_nodes` machines of `gpus_per_node`
/// identical GPUs, with an intra-node and an inter-node interconnect.
///
/// Presets mirror Table 2 of the paper.
///
/// # Example
///
/// ```
/// use exegpt_cluster::{ClusterSpec, GpuId};
///
/// let c = ClusterSpec::a40_cluster();
/// assert_eq!(c.total_gpus(), 48);
/// // GPUs 0 and 1 share a node; 0 and 8 do not.
/// assert!(c.same_node(GpuId(0), GpuId(1)));
/// assert!(!c.same_node(GpuId(0), GpuId(8)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    name: String,
    gpu: GpuSpec,
    gpus_per_node: usize,
    num_nodes: usize,
    intra: Interconnect,
    inter: Interconnect,
    /// Per-node SSD read bandwidth (for deployment cost, Table 4).
    ssd_bandwidth: BytesPerSec,
    /// Effective per-GPU host-DRAM→device bandwidth under full fan-out.
    dram_to_gpu_bandwidth: BytesPerSec,
}

impl ClusterSpec {
    /// Creates a custom cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidSpec`] for zero node/GPU counts.
    pub fn new(
        name: impl Into<String>,
        gpu: GpuSpec,
        gpus_per_node: usize,
        num_nodes: usize,
        intra: Interconnect,
        inter: Interconnect,
    ) -> Result<Self, ClusterError> {
        if gpus_per_node == 0 {
            return Err(ClusterError::InvalidSpec {
                what: "gpus_per_node",
                why: "must be non-zero",
            });
        }
        if num_nodes == 0 {
            return Err(ClusterError::InvalidSpec { what: "num_nodes", why: "must be non-zero" });
        }
        Ok(Self {
            name: name.into(),
            gpu,
            gpus_per_node,
            num_nodes,
            intra,
            inter,
            ssd_bandwidth: BytesPerSec::from_gb_per_sec(7.5),
            dram_to_gpu_bandwidth: BytesPerSec::from_gb_per_sec(5.0),
        })
    }

    /// The paper's A40 cluster: 6 nodes × 8 A40, PCIe 4.0 intra-node,
    /// 100 Gb InfiniBand inter-node.
    pub fn a40_cluster() -> Self {
        Self::new(
            "A40 cluster",
            GpuSpec::a40(),
            8,
            6,
            Interconnect::pcie4_x16(),
            Interconnect::infiniband_100gb(),
        )
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        .expect("preset cluster is valid")
    }

    /// The paper's A100 cluster: 2 nodes × 8 A100-80GB, NVLink 3.0
    /// intra-node, 8×200 Gb HDR InfiniBand inter-node.
    pub fn a100_cluster() -> Self {
        Self::new(
            "A100 cluster",
            GpuSpec::a100_80gb(),
            8,
            2,
            Interconnect::nvlink3(),
            Interconnect::infiniband_hdr_8x200gb(),
        )
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        .expect("preset cluster is valid")
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The (homogeneous) GPU device spec.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.gpus_per_node * self.num_nodes
    }

    /// Intra-node link.
    pub fn intra(&self) -> &Interconnect {
        &self.intra
    }

    /// Inter-node link.
    pub fn inter(&self) -> &Interconnect {
        &self.inter
    }

    /// Per-node SSD read bandwidth.
    pub fn ssd_bandwidth(&self) -> BytesPerSec {
        self.ssd_bandwidth
    }

    /// Effective per-GPU host-DRAM→device bandwidth.
    pub fn dram_to_gpu_bandwidth(&self) -> BytesPerSec {
        self.dram_to_gpu_bandwidth
    }

    /// Node index hosting `gpu`.
    pub fn node_of(&self, gpu: GpuId) -> usize {
        gpu.0 / self.gpus_per_node
    }

    /// Whether two GPUs share a node.
    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The link connecting two GPUs (intra-node if they share a node).
    pub fn link(&self, a: GpuId, b: GpuId) -> &Interconnect {
        if self.same_node(a, b) {
            &self.intra
        } else {
            &self.inter
        }
    }

    /// The link used by a tensor-parallel group of `group` GPUs starting at
    /// consecutive ids from `first`: intra-node if the whole group fits in
    /// one node, otherwise the inter-node link (the bottleneck).
    pub fn group_link(&self, first: GpuId, group: usize) -> &Interconnect {
        if group <= 1 {
            return &self.intra;
        }
        let last = GpuId(first.0 + group - 1);
        self.link(first, last)
    }

    /// Restricts the cluster to its first `gpus` GPUs (whole nodes plus a
    /// possibly partial final node), as when a model uses a sub-cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InsufficientGpus`] if `gpus` exceeds the total
    /// or [`ClusterError::InvalidSpec`] if `gpus` is zero.
    pub fn subcluster(&self, gpus: usize) -> Result<ClusterSpec, ClusterError> {
        if gpus == 0 {
            return Err(ClusterError::InvalidSpec { what: "gpus", why: "must be non-zero" });
        }
        if gpus > self.total_gpus() {
            return Err(ClusterError::InsufficientGpus {
                requested: gpus,
                available: self.total_gpus(),
            });
        }
        let mut sub = self.clone();
        if gpus <= self.gpus_per_node {
            sub.gpus_per_node = gpus;
            sub.num_nodes = 1;
        } else {
            // Whole nodes; require divisibility to keep the topology regular.
            if !gpus.is_multiple_of(self.gpus_per_node) {
                return Err(ClusterError::InvalidSpec {
                    what: "gpus",
                    why: "multi-node sub-clusters must use whole nodes",
                });
            }
            sub.num_nodes = gpus / self.gpus_per_node;
        }
        Ok(sub)
    }

    /// The same topology built from a different (e.g. slowed) device spec.
    pub fn with_gpu(&self, gpu: GpuSpec) -> ClusterSpec {
        ClusterSpec { gpu, ..self.clone() }
    }

    /// The same topology with different (e.g. degraded) links.
    pub fn with_links(&self, intra: Interconnect, inter: Interconnect) -> ClusterSpec {
        ClusterSpec { intra, inter, ..self.clone() }
    }

    /// A structural fingerprint of the cluster: every field that can change
    /// a simulated timing or memory figure — device spec, topology counts,
    /// link bandwidths/latencies and the deployment-path bandwidths — folded
    /// into one FNV-1a hash. The display name is excluded, so a renamed but
    /// otherwise identical cluster fingerprints the same, and a topology
    /// that returns to its pre-fault shape (full recovery) reproduces its
    /// original fingerprint exactly.
    ///
    /// Used to key evaluation caches across cluster swaps: entries computed
    /// on one topology stay addressable when the simulator moves to a
    /// degraded one and become hits again on recovery.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        };
        fold(self.gpu.mem_bytes());
        fold(self.gpu.peak_flops().as_f64().to_bits());
        fold(self.gpu.mem_bandwidth().as_f64().to_bits());
        fold(self.gpu.launch_overhead().as_f64().to_bits());
        fold(widen_u64(self.gpus_per_node));
        fold(widen_u64(self.num_nodes));
        for link in [&self.intra, &self.inter] {
            fold(link.bandwidth().as_f64().to_bits());
            fold(link.latency().as_f64().to_bits());
        }
        fold(self.ssd_bandwidth.as_f64().to_bits());
        fold(self.dram_to_gpu_bandwidth.as_f64().to_bits());
        h
    }

    /// The largest regular sub-cluster that survives `failed` device
    /// failures: failed devices reject work, so the surviving topology is
    /// what a degraded schedule must be planned on.
    ///
    /// Survivor counts that no longer form a regular topology (more than
    /// one node, but not a whole number of nodes) are rounded *down* to
    /// whole nodes — the stragglers of a partial node sit idle rather than
    /// break the homogeneous pipeline layout. At one node or less the exact
    /// survivor count is kept.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InsufficientGpus`] when `failed` reaches the
    /// total GPU count (nothing survives to serve on).
    pub fn survivors(&self, failed: usize) -> Result<ClusterSpec, ClusterError> {
        let total = self.total_gpus();
        if failed >= total {
            return Err(ClusterError::InsufficientGpus { requested: 1, available: 0 });
        }
        let alive = total - failed;
        let regular =
            if alive <= self.gpus_per_node { alive } else { alive - alive % self.gpus_per_node };
        self.subcluster(regular.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_node_mapping() {
        let c = ClusterSpec::a100_cluster();
        assert_eq!(c.total_gpus(), 16);
        assert_eq!(c.node_of(GpuId(7)), 0);
        assert_eq!(c.node_of(GpuId(8)), 1);
    }

    #[test]
    fn link_selection() {
        let c = ClusterSpec::a40_cluster();
        assert_eq!(c.link(GpuId(0), GpuId(7)).name(), "PCIe 4.0 x16");
        assert_eq!(c.link(GpuId(0), GpuId(8)).name(), "InfiniBand 100Gb");
        assert_eq!(c.group_link(GpuId(0), 8).name(), "PCIe 4.0 x16");
        assert_eq!(c.group_link(GpuId(4), 8).name(), "InfiniBand 100Gb");
    }

    #[test]
    fn subcluster_within_node() {
        let c = ClusterSpec::a40_cluster();
        let s = c.subcluster(4).expect("4 gpus fit in one node");
        assert_eq!(s.total_gpus(), 4);
        assert_eq!(s.num_nodes(), 1);
    }

    #[test]
    fn subcluster_whole_nodes() {
        let c = ClusterSpec::a40_cluster();
        let s = c.subcluster(16).expect("two whole nodes");
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.total_gpus(), 16);
        assert!(c.subcluster(12).is_err(), "1.5 nodes is rejected");
    }

    #[test]
    fn subcluster_bounds() {
        let c = ClusterSpec::a100_cluster();
        assert!(c.subcluster(0).is_err());
        assert!(matches!(
            c.subcluster(64),
            Err(ClusterError::InsufficientGpus { requested: 64, available: 16 })
        ));
    }

    #[test]
    fn survivors_keep_exact_counts_within_a_node() {
        let c = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
        let s = c.survivors(1).expect("three survive");
        assert_eq!(s.total_gpus(), 3);
        assert_eq!(s.num_nodes(), 1);
        let s = c.survivors(3).expect("one survives");
        assert_eq!(s.total_gpus(), 1);
        assert!(c.survivors(4).is_err(), "nothing survives to serve on");
    }

    #[test]
    fn survivors_round_down_to_whole_nodes() {
        let c = ClusterSpec::a40_cluster();
        // 47 survivors -> 5 whole nodes of 8.
        assert_eq!(c.survivors(1).expect("survives").total_gpus(), 40);
        // 8 survivors exactly fill one node.
        assert_eq!(c.survivors(40).expect("survives").total_gpus(), 8);
        // 7 survivors keep the exact count (single partial node).
        assert_eq!(c.survivors(41).expect("survives").total_gpus(), 7);
    }

    #[test]
    fn with_gpu_and_links_preserve_topology() {
        let c = ClusterSpec::a40_cluster();
        let slowed = c.with_gpu(c.gpu().slowed(2.0).expect("valid"));
        assert_eq!(slowed.total_gpus(), c.total_gpus());
        assert!(slowed.gpu().peak_flops() < c.gpu().peak_flops());
        let degraded = c.with_links(
            c.intra().degraded(0.5, exegpt_units::Secs::ZERO).expect("valid"),
            c.inter().degraded(0.5, exegpt_units::Secs::ZERO).expect("valid"),
        );
        assert_eq!(degraded.num_nodes(), c.num_nodes());
        assert!(degraded.inter().bandwidth() < c.inter().bandwidth());
    }

    #[test]
    fn fingerprint_tracks_structure_not_name() {
        let c = ClusterSpec::a40_cluster();
        let mut renamed = c.clone();
        renamed.name = "same cluster, different label".into();
        assert_eq!(c.fingerprint(), renamed.fingerprint());
        // Every structural change moves the fingerprint...
        assert_ne!(c.fingerprint(), c.subcluster(8).expect("fits").fingerprint());
        assert_ne!(c.fingerprint(), c.with_gpu(c.gpu().slowed(2.0).expect("valid")).fingerprint());
        assert_ne!(
            c.fingerprint(),
            c.with_links(
                c.intra().degraded(0.5, exegpt_units::Secs::ZERO).expect("valid"),
                c.inter().clone(),
            )
            .fingerprint()
        );
        // ...and re-deriving the same shape reproduces it (recovery).
        let sub = c.subcluster(4).expect("fits");
        assert_eq!(sub.fingerprint(), c.subcluster(4).expect("fits").fingerprint());
        assert_ne!(sub.fingerprint(), sub.survivors(1).expect("ok").fingerprint());
    }

    #[test]
    fn rejects_degenerate_topology() {
        assert!(ClusterSpec::new(
            "x",
            GpuSpec::a40(),
            0,
            1,
            Interconnect::pcie4_x16(),
            Interconnect::infiniband_100gb()
        )
        .is_err());
    }
}
