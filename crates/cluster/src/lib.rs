//! Simulated GPU cluster substrate for the ExeGPT reproduction.
//!
//! The paper evaluates on two physical clusters (48×A40/PCIe and
//! 16×A100/NVLink, Table 2). This crate replaces that hardware with an
//! analytical substrate, per the substitution table in `DESIGN.md`:
//!
//! * [`GpuSpec`] — device capability description (peak FP16 throughput, HBM
//!   bandwidth, memory capacity) with presets for the A40 and A100.
//! * [`CostModel`] — a roofline kernel-time model: a kernel's execution time
//!   is `max(flops / effective_compute, bytes / effective_bandwidth)` plus a
//!   launch overhead, with efficiency saturating as per-kernel work grows
//!   (small kernels underutilize a GPU; this is what makes batching pay).
//! * [`Interconnect`] / [`ClusterSpec`] — topology: nodes × GPUs, intra-node
//!   and inter-node links, ring all-reduce and point-to-point cost formulas.
//! * [`LoadCostModel`] — model (re-)deployment time from SSD or host DRAM
//!   (paper §7.7, Table 4).
//!
//! Everything downstream (profiler, simulator, scheduler, runner) consumes
//! *times* from this crate, never hardware details, so the substitution is
//! confined here.
//!
//! # Example
//!
//! ```
//! use exegpt_cluster::{ClusterSpec, CostModel};
//! use exegpt_model::ModelConfig;
//!
//! let cluster = ClusterSpec::a40_cluster();
//! let model = ModelConfig::opt_13b();
//! let cost = CostModel::new(cluster.gpu().clone());
//! // Encoding 32x128 tokens takes far longer than one decode iteration.
//! let enc = cost.kernel_time(model.encode_rest_cost(32, 128));
//! let dec = cost.kernel_time(model.decode_rest_cost(32));
//! assert!(enc > 10.0 * dec);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod error;
mod gpu;
mod interconnect;
mod loading;
mod topology;

pub use cost::CostModel;
pub use error::ClusterError;
pub use gpu::GpuSpec;
pub use interconnect::Interconnect;
pub use loading::{LoadCostModel, LoadSource};
pub use topology::{ClusterSpec, GpuId};
