//! Planning-protocol invariants shared by every baseline: bounds are
//! respected, relaxing a bound never hurts, and estimates track replays.

use std::sync::Arc;

use exegpt_baselines::{DeepSpeedInference, FasterTransformer, IterationLevel, Orca, Vllm};
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_profiler::{ProfileOptions, Profiler};
use exegpt_runner::RunOptions;
use exegpt_sim::Simulator;
use exegpt_workload::Task;

fn sim(task: Task) -> Simulator {
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiles");
    Simulator::new(model, cluster, Arc::new(profile), task.workload().expect("valid"))
}

/// Relaxing the bound never lowers any system's planned throughput.
#[test]
fn planned_throughput_is_monotone_in_the_bound() {
    let s = sim(Task::ConversationalQa1);
    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    let bounds = exegpt_workload::latency_bounds(&ft.latency_sweep()).expect("non-empty");

    let check = |name: &str, plans: Vec<Option<f64>>| {
        let mut last = 0.0f64;
        for (i, t) in plans.into_iter().enumerate() {
            if let Some(t) = t {
                assert!(t >= last - 1e-9, "{name}: bound {i} planned {t} below earlier {last}");
                last = t;
            }
        }
        assert!(last > 0.0, "{name}: the infinite bound must be plannable");
    };

    check("FT", bounds.iter().map(|&b| ft.plan(b).map(|(_, e)| e.throughput)).collect());
    let dsi = DeepSpeedInference::new(s.clone()).expect("single node");
    check("DSI", bounds.iter().map(|&b| dsi.plan(b).map(|(_, e)| e.throughput)).collect());
    let orca = Orca::new(s.clone(), IterationLevel::orca()).expect("grid");
    check("ORCA", bounds.iter().map(|&b| orca.plan(b).map(|(_, e)| e.throughput)).collect());
    let vllm = Vllm::new(s).expect("grid");
    check("vLLM", bounds.iter().map(|&b| vllm.plan(b).map(|(_, e)| e.throughput)).collect());
}

/// Every planned configuration's estimate respects the bound it was planned
/// for, across all five tasks.
#[test]
fn plans_respect_their_bounds_on_all_tasks() {
    for task in Task::all() {
        let s = sim(task);
        let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
        let bounds = exegpt_workload::latency_bounds(&ft.latency_sweep()).expect("non-empty");
        for &b in &bounds {
            if let Some((_, est)) = ft.plan(b) {
                assert!(est.latency <= b, "{task}: FT {} > {b}", est.latency);
            }
            let orca = Orca::new(s.clone(), IterationLevel::orca()).expect("grid");
            if let Some((_, est)) = orca.plan(b) {
                assert!(est.latency <= b, "{task}: ORCA {} > {b}", est.latency);
            }
        }
    }
}

/// FT's estimate is *conservative* relative to its replay: the estimate
/// decodes every batch to the distribution maximum, so measured throughput
/// on sampled lengths is at least the planned one.
#[test]
fn ft_estimates_are_conservative() {
    let s = sim(Task::Translation);
    let ft = FasterTransformer::paper_default(s).expect("grid");
    for batch in [8usize, 32, 64] {
        let est = ft.estimate(batch).expect("feasible");
        let rep = ft
            .run(batch, &RunOptions { num_queries: 4 * batch, ..Default::default() })
            .expect("runs");
        assert!(
            rep.throughput >= est.throughput * 0.95,
            "batch {batch}: measured {} vs planned {}",
            rep.throughput,
            est.throughput
        );
    }
}

/// ORCA's estimate tracks its replay within a modest tolerance (both
/// directions): the iteration-level steady state is well modelled.
#[test]
fn orca_estimates_track_replays() {
    let s = sim(Task::Summarization);
    let orca = Orca::new(s, IterationLevel::orca()).expect("grid");
    let est = orca.estimate(64).expect("feasible");
    let rep = orca.run(64, &RunOptions { num_queries: 600, ..Default::default() }).expect("runs");
    let ratio = rep.throughput / est.throughput;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}
