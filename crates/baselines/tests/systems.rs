//! Cross-system behaviour: each baseline runs, respects its planning
//! protocol, and the qualitative orderings the paper reports hold.

use std::sync::Arc;

use exegpt_baselines::{DeepSpeedInference, FasterTransformer, IterationLevel, Orca, Vllm};
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_profiler::{ProfileOptions, Profiler};
use exegpt_runner::RunOptions;
use exegpt_sim::Simulator;
use exegpt_units::Secs;
use exegpt_workload::Task;

/// The paper's §7.2 comparison setup: OPT-13B on four A40s.
fn sim(task: Task) -> Simulator {
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiles");
    Simulator::new(model, cluster, Arc::new(profile), task.workload().expect("valid"))
}

#[test]
fn every_system_completes_a_run() {
    let opts = RunOptions { num_queries: 120, ..Default::default() };
    let s = sim(Task::Translation);

    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    let r = ft.run(16, &opts).expect("ft runs");
    assert_eq!(r.completed, 120);

    let dsi = DeepSpeedInference::new(s.clone()).expect("single node");
    let r = dsi.run(16, &opts).expect("dsi runs");
    assert_eq!(r.completed, 120);

    let orca = Orca::new(s.clone(), IterationLevel::orca()).expect("grid");
    let r = orca.run(32, &opts).expect("orca runs");
    assert_eq!(r.completed, 120);

    let vllm = Vllm::new(s).expect("grid");
    let r = vllm.run(32, &opts).expect("vllm runs");
    assert_eq!(r.completed, 120);
}

#[test]
fn ft_beats_vllm_on_the_paper_setup() {
    // Figure 7: FT outperforms vLLM for all tasks on OPT-13B / 4xA40,
    // which the paper attributes to vLLM's host overhead.
    let s = sim(Task::Translation);
    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    let vllm = Vllm::new(s).expect("grid");
    let ft_best = ft.plan(Secs::INFINITY).expect("feasible").1.throughput;
    let vllm_best = vllm.plan(Secs::INFINITY).expect("feasible").1.throughput;
    assert!(ft_best > vllm_best, "FT {ft_best:.2} q/s should beat vLLM {vllm_best:.2} q/s");
}

#[test]
fn ft_beats_dsi_on_the_paper_setup() {
    let s = sim(Task::Summarization);
    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    let dsi = DeepSpeedInference::new(s).expect("single node");
    let ft_best = ft.plan(Secs::INFINITY).expect("feasible").1.throughput;
    let dsi_best = dsi.plan(Secs::INFINITY).expect("feasible").1.throughput;
    assert!(ft_best > dsi_best, "FT {ft_best:.2} should beat DSI {dsi_best:.2}");
}

#[test]
fn orca_admits_greedily_vllm_one_at_a_time() {
    let opts = RunOptions { num_queries: 150, ..Default::default() };
    let s = sim(Task::Summarization);
    let orca = Orca::new(s.clone(), IterationLevel::orca()).expect("grid");
    let vllm = Vllm::new(s).expect("grid");
    let ro = orca.run(32, &opts).expect("runs");
    let rv = vllm.run(32, &opts).expect("runs");
    // ORCA refills all free slots per iteration: fewer, larger prefills.
    let orca_prefills = ro.encoder_stage_times.len();
    let vllm_prefills = rv.encoder_stage_times.len();
    assert!(
        vllm_prefills > orca_prefills,
        "vLLM ({vllm_prefills}) should prefill more often than ORCA ({orca_prefills})"
    );
}

#[test]
fn iteration_level_latency_jitters_with_admissions() {
    // §2: ORCA's encoding-inside-decoding makes latency variable. Compare
    // the spread of per-query latency against FT's lockstep batches.
    let opts = RunOptions { num_queries: 200, ..Default::default() };
    let s = sim(Task::Translation);
    let orca = Orca::new(s.clone(), IterationLevel::orca()).expect("grid");
    let r = orca.run(32, &opts).expect("runs");
    let (mean, spread) = {
        let m = exegpt_dist::stats::mean(&r.latencies).expect("non-empty");
        let s = exegpt_dist::stats::std_dev(&r.latencies).expect("non-empty");
        (m, s)
    };
    assert!(spread / mean > 0.05, "expected visible latency jitter");
}

#[test]
fn dsi_rejects_multi_node_clusters() {
    let model = ModelConfig::gpt3_39b();
    let cluster = ClusterSpec::a40_cluster().subcluster(16).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiles");
    let s = Simulator::new(
        model,
        cluster,
        Arc::new(profile),
        Task::Translation.workload().expect("valid"),
    );
    assert!(DeepSpeedInference::new(s).is_err());
}

#[test]
fn ft_kv_reservation_dwarfs_iteration_level() {
    // Figure 9's mechanism: up-front reservation for max-length outputs
    // holds far more cache than incremental/paged disciplines.
    let opts = RunOptions { num_queries: 100, ..Default::default() };
    let s = sim(Task::Summarization);
    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    let orca = Orca::new(s, IterationLevel::orca()).expect("grid");
    let rf = ft.run(32, &opts).expect("runs");
    let ro = orca.run(32, &opts).expect("runs");
    assert!(
        rf.peak_kv_bytes > ro.peak_kv_bytes,
        "FT {:.2} GiB should exceed ORCA {:.2} GiB",
        rf.peak_kv_bytes as f64 / 1e9,
        ro.peak_kv_bytes as f64 / 1e9
    );
}

#[test]
fn planning_respects_bounds_for_all_systems() {
    let s = sim(Task::Translation);
    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    let bounds = exegpt_workload::latency_bounds(&ft.latency_sweep()).expect("non-empty");
    for bound in &bounds[..3] {
        if let Some((_, est)) = ft.plan(*bound) {
            assert!(est.latency <= *bound);
        }
        let vllm = Vllm::new(s.clone()).expect("grid");
        if let Some((_, est)) = vllm.plan(*bound) {
            assert!(est.latency <= *bound);
        }
    }
}
