//! Iteration-level scheduling: ORCA, and the engine it shares with vLLM
//! (paper §2; §7.1 uses vLLM's iteration-level mode as the stand-in for
//! proprietary ORCA).
//!
//! Every iteration decodes the running batch *and* prefills whatever new
//! queries were admitted into freed slots — the prefill work rides inside
//! the decoding iteration, which keeps batches full (no diminishing-batch
//! problem) but injects large, input-length-dependent stalls into every
//! ongoing query's token cadence. That jitter is precisely why the paper
//! finds iteration-level scheduling hard to bound (§2).

use exegpt_runner::{KvTracker, ReservePolicy, RunError, RunOptions, RunReport};
use exegpt_sim::{SimError, Simulator};
use exegpt_units::Secs;
use exegpt_workload::{Request, RequestStream};

use crate::common::{batch_sweep, build_grid, paper_parallelism, windowed, GridPlan};

/// Tunables distinguishing the iteration-level systems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationLevel {
    /// Maximum number of new queries prefill-admitted per iteration
    /// (ORCA: unlimited — fill all free slots; vLLM's iteration-level mode:
    /// one, §7.1).
    pub max_admissions_per_iter: usize,
    /// KV reservation discipline.
    pub kv_policy: ReservePolicy,
    /// Fixed host overhead added to every iteration (scheduler hop,
    /// kernel dispatch).
    pub base_overhead_s: f64,
    /// Per-running-sequence host overhead per iteration. The paper traces
    /// FT's win over vLLM/ORCA to exactly this un-maskable Python-executor
    /// cost (§7.2); in the 2023 engines it scaled with the batch (per-
    /// sequence scheduling, block-table and sampling bookkeeping). The
    /// constants are calibrated so the Figure 7 ordering reproduces on the
    /// paper's OPT-13B / 4xA40 setup (see EXPERIMENTS.md).
    pub per_seq_overhead_s: f64,
}

impl IterationLevel {
    /// ORCA's settings: greedy slot refill, incremental KV, C++ runtime.
    pub fn orca() -> Self {
        Self {
            max_admissions_per_iter: usize::MAX,
            kv_policy: ReservePolicy::Incremental,
            // The paper evaluates ORCA via vLLM's iteration-level mode
            // (§7.1), so it carries the same engine overhead.
            base_overhead_s: 5e-3,
            per_seq_overhead_s: 0.55e-3,
        }
    }

    /// vLLM's settings: one prefill per iteration, paged KV, Python host
    /// overhead (~2 ms per iteration on the paper's A40 setup).
    pub fn vllm() -> Self {
        Self {
            max_admissions_per_iter: 1,
            kv_policy: ReservePolicy::Paged { page_tokens: 16 },
            base_overhead_s: 5e-3,
            per_seq_overhead_s: 0.65e-3,
        }
    }
}

/// An iteration-level serving system over the common PP×TP grid.
#[derive(Debug, Clone)]
pub struct Orca {
    sim: Simulator,
    plan: GridPlan,
    settings: IterationLevel,
}

impl Orca {
    /// Creates the system with the paper's parallel configuration and the
    /// given iteration-level settings.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if no valid grid exists.
    pub fn new(sim: Simulator, settings: IterationLevel) -> Result<Self, SimError> {
        let (tp, _) = paper_parallelism(&sim);
        let plan = build_grid(&sim, tp)?;
        Ok(Self { sim, plan, settings })
    }

    /// The underlying simulator context.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The iteration-level settings in use.
    pub fn settings(&self) -> IterationLevel {
        self.settings
    }

    /// Closed-form steady-state estimate for a slot count of `batch`.
    ///
    /// Latency is for a 99th-percentile-length query (early termination
    /// applies, §7.1); each of its tokens pays the average iteration time,
    /// which includes the amortized in-iteration prefill work.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for infeasible slot counts.
    pub fn estimate(&self, batch: usize) -> Result<exegpt_sim::Estimate, SimError> {
        if batch == 0 {
            return Err(SimError::InvalidConfig { what: "batch", why: "must be >= 1".into() });
        }
        let w = self.sim.workload();
        let mean_in = w.input().mean();
        let mean_out = w.output().mean().max(1.0);
        let ctx = w.mean_decode_context().as_f64();
        let stages = self.plan.stages();

        // Memory feasibility with the configured KV policy.
        let kv_per_token = self.plan.kv_bytes_per_token(&self.sim);
        let params = self.plan.param_bytes_per_gpu(&self.sim);
        let per_query_tokens = match self.settings.kv_policy {
            ReservePolicy::UpFront => mean_in + w.output().max_len() as f64,
            ReservePolicy::Incremental => self.sim.kv_ctx_tokens().as_f64(),
            ReservePolicy::Paged { page_tokens } => {
                let held = self.sim.kv_ctx_tokens().as_f64();
                (held / page_tokens as f64).ceil() * page_tokens as f64
            }
        };
        let kv_needed = (batch as f64 * per_query_tokens * kv_per_token) as u64;
        let capacity = self.sim.usable_capacity();
        if params + kv_needed > capacity {
            return Err(SimError::OutOfMemory {
                role: "worker",
                needed: params + kv_needed,
                capacity,
            });
        }

        // Steady state: batch/mean_out queries complete (and are admitted)
        // per iteration; their prefill executes inside the iteration.
        let admissions =
            (batch as f64 / mean_out).min(self.settings.max_admissions_per_iter as f64);
        let m_d = stages.min(batch).max(1);
        let micro = batch as f64 / m_d as f64;
        let dec_stage = self.plan.decode_stage_time(&self.sim, micro, ctx)?;
        let enc_stage = if admissions > 0.0 {
            self.plan.encode_stage_time(&self.sim, admissions, mean_in)?
        } else {
            Secs::ZERO
        };
        let host = self.settings.base_overhead_s + self.settings.per_seq_overhead_s * batch as f64;
        let t_iter = dec_stage * m_d as f64 + enc_stage + Secs::new(host);

        // Throughput is limited by admissions when they are capped below
        // the completion rate (vLLM's one-per-iteration mode).
        let completions_per_iter =
            (batch as f64 / mean_out).min(if self.settings.max_admissions_per_iter == usize::MAX {
                f64::INFINITY
            } else {
                self.settings.max_admissions_per_iter as f64
            });
        let throughput = completions_per_iter / t_iter.as_secs();
        let latency = t_iter * w.l99() as f64;

        let footprint = exegpt_model::MemoryFootprint {
            param_bytes: params,
            kv_bytes: kv_needed,
            activation_bytes: 0,
        };
        Ok(exegpt_sim::Estimate {
            latency,
            throughput,
            memory: exegpt_sim::MemoryReport {
                encoder_gpu: footprint,
                decoder_gpu: footprint,
                capacity,
            },
            breakdown: exegpt_sim::Breakdown {
                encode_time: enc_stage,
                decode_time: dec_stage * m_d as f64,
                period: t_iter,
                stages,
                decode_batch: batch,
            },
        })
    }

    /// Sweeps slot counts (multiples of four) for the best throughput under
    /// `bound`.
    pub fn plan(&self, bound: Secs) -> Option<(usize, exegpt_sim::Estimate)> {
        let mut best: Option<(usize, exegpt_sim::Estimate)> = None;
        for b in batch_sweep(self.sim.profile().max_batch()) {
            match self.estimate(b) {
                Ok(est) if est.latency <= bound => {
                    if best.as_ref().is_none_or(|(_, e)| est.throughput > e.throughput) {
                        best = Some((b, est));
                    }
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        best
    }

    /// Executes iteration-level serving with `batch` slots over sampled
    /// queries.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] for infeasible configurations.
    pub fn run(&self, batch: usize, opts: &RunOptions) -> Result<RunReport, RunError> {
        self.estimate(batch)?;
        let w = self.sim.workload();
        let stages = self.plan.stages();

        let kv_per_token = self.plan.kv_bytes_per_token(&self.sim);
        let params = self.plan.param_bytes_per_gpu(&self.sim);
        let capacity = self.sim.usable_capacity().saturating_sub(params);
        let mut kv = KvTracker::new(kv_per_token, capacity, self.settings.kv_policy);

        let stream_workload = opts.request_workload.as_ref().unwrap_or(w);
        let mut pending: Vec<Request> =
            RequestStream::new(stream_workload, opts.seed).take(opts.num_queries).collect();
        pending.reverse();

        struct Slot {
            req: Request,
            progress: usize,
            t_admitted: f64,
            fresh: bool,
        }
        let mut running: Vec<Slot> = Vec::new();
        let mut t = 0.0f64;
        let mut latencies = Vec::with_capacity(opts.num_queries);
        let mut completions = Vec::with_capacity(opts.num_queries);
        let mut enc_stage_times = Vec::new();
        let mut dec_stage_times = Vec::new();
        let mut tokens: u64 = 0;

        while latencies.len() < opts.num_queries {
            // Admit into free slots (up to the per-iteration cap).
            let mut admitted = 0usize;
            let mut admitted_tokens = 0usize;
            while running.len() < batch && admitted < self.settings.max_admissions_per_iter {
                let Some(req) = pending.last().copied() else { break };
                if !kv.try_admit(req.id, req.input_len, w.output().max_len()) {
                    break;
                }
                pending.pop();
                admitted += 1;
                admitted_tokens += req.input_len;
                running.push(Slot { req, progress: 0, t_admitted: t, fresh: true });
            }
            if running.is_empty() {
                if pending.is_empty() {
                    break;
                }
                return Err(RunError::Stalled {
                    why: "next query cannot fit in the kv cache".to_string(),
                });
            }

            // One iteration: decode everyone + the admitted prefills.
            let active = running.len();
            let ctx: f64 =
                running.iter().map(|s| (s.req.input_len + s.progress) as f64).sum::<f64>()
                    / active as f64;
            let m_d = stages.min(active).max(1);
            let micro = active as f64 / m_d as f64;
            let dec_stage =
                self.plan.decode_stage_time(&self.sim, micro, ctx).map_err(RunError::from)?;
            dec_stage_times.push(dec_stage.as_secs());
            let host =
                self.settings.base_overhead_s + self.settings.per_seq_overhead_s * active as f64;
            let mut t_iter = (dec_stage * m_d as f64).as_secs() + host;
            if admitted > 0 {
                let mean_in = admitted_tokens as f64 / admitted as f64;
                let enc_stage = self
                    .plan
                    .encode_stage_time(&self.sim, admitted as f64, mean_in)
                    .map_err(RunError::from)?;
                enc_stage_times.push(enc_stage.as_secs());
                t_iter += enc_stage.as_secs();
            }
            t += t_iter;

            // Advance everyone that was decoding this iteration (the newly
            // admitted did their prefill; their first token comes next).
            let mut i = 0;
            while i < running.len() {
                if running[i].fresh {
                    running[i].fresh = false;
                    i += 1;
                    continue;
                }
                running[i].progress += 1;
                tokens += 1;
                kv.grow_or_clamp(running[i].req.id, 1);
                if running[i].progress >= running[i].req.output_len {
                    let done = running.swap_remove(i);
                    kv.release(done.req.id);
                    latencies.push(t - done.t_admitted);
                    completions.push(t);
                } else {
                    i += 1;
                }
            }
        }

        let (throughput, makespan) = windowed(&completions, opts.warmup_frac);
        Ok(RunReport {
            completed: latencies.len(),
            tokens_generated: tokens,
            makespan: Secs::new(makespan),
            throughput,
            latencies,
            encoder_stage_times: enc_stage_times,
            decoder_stage_times: dec_stage_times,
            peak_kv_bytes: kv.peak_bytes(),
            param_bytes: params,
            trace: None,
            sojourn_times: vec![],
        })
    }
}
