//! Shared machinery for the baseline systems.

use exegpt_sim::{PipelineLayout, SimError, Simulator, TpConfig};
use exegpt_units::Secs;

/// The paper's baseline parallel configuration: maximize tensor parallelism
/// within a node, pipeline across nodes (§7.1). Returns `(tp, pp)`.
pub(crate) fn paper_parallelism(sim: &Simulator) -> (usize, usize) {
    let n = sim.cluster().total_gpus();
    let profiled = sim.profile().tp_degrees();
    let tp = profiled
        .into_iter()
        .filter(|&d| d <= sim.cluster().gpus_per_node() && n.is_multiple_of(d))
        .max()
        .unwrap_or(1);
    (tp, n / tp)
}

/// A uniform PP×TP pipeline (the baselines' only layout), with separate
/// per-stage layer allocations for the encoding and decoding passes
/// (identical for decoder-only models; encoder/decoder slices for T5-style
/// models, as FasterTransformer partitions them).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GridPlan {
    pub layout: PipelineLayout,
    pub enc_alloc: Vec<usize>,
    pub dec_alloc: Vec<usize>,
    pub tp: usize,
}

pub(crate) fn build_grid(sim: &Simulator, tp: usize) -> Result<GridPlan, SimError> {
    let n = sim.cluster().total_gpus();
    if tp == 0 || !n.is_multiple_of(tp) {
        return Err(SimError::InvalidConfig {
            what: "tp",
            why: format!("tensor parallelism {tp} does not divide {n} gpus"),
        });
    }
    let cfg = if tp == 1 { TpConfig::none() } else { TpConfig { degree: tp, gpus: n } };
    // Uniform grid: every stage is a TP group, so relative speeds are equal
    // and the speedup value only needs to be positive.
    let layout = PipelineLayout::build(n, cfg, 1.0, sim.cluster().gpus_per_node())?;
    let (enc_alloc, dec_alloc) = if sim.enc_layers_total() == sim.model().num_layers() {
        // Decoder-only: one physical allocation serves both passes.
        let alloc = layout.allocate_layers(sim.model().num_layers())?;
        (alloc.clone(), alloc)
    } else {
        (
            layout.allocate_layers(sim.enc_layers_total())?,
            layout.allocate_layers(sim.dec_layers_total())?,
        )
    };
    Ok(GridPlan { layout, enc_alloc, dec_alloc, tp })
}

impl GridPlan {
    /// Number of pipeline stages.
    pub(crate) fn stages(&self) -> usize {
        self.layout.num_stages()
    }

    /// Bottleneck-stage time of one *decoding* iteration at the given
    /// micro-batch size and mean context.
    pub(crate) fn decode_stage_time(
        &self,
        sim: &Simulator,
        micro: f64,
        ctx: f64,
    ) -> Result<Secs, SimError> {
        let profile = sim.profile();
        let s_e = sim.workload().input().mean();
        let mut worst = Secs::ZERO;
        for (i, stage) in self.layout.stages().iter().enumerate() {
            let t = profile.decode_layer_time(micro, ctx, s_e, stage.tp)?;
            let handoff = profile.handoff_time(micro, self.layout.boundary_intra_node(i));
            worst = worst.max(self.dec_alloc[i] as f64 * t + handoff);
        }
        Ok(worst)
    }

    /// Bottleneck-stage time of *encoding* a micro-batch of the given size
    /// and mean input length.
    pub(crate) fn encode_stage_time(
        &self,
        sim: &Simulator,
        micro: f64,
        mean_in: f64,
    ) -> Result<Secs, SimError> {
        let profile = sim.profile();
        let mut worst = Secs::ZERO;
        for (i, stage) in self.layout.stages().iter().enumerate() {
            let t = profile.encode_layer_time(micro, mean_in, stage.tp)?;
            let handoff = profile.handoff_time(micro * mean_in, self.layout.boundary_intra_node(i));
            worst = worst.max(self.enc_alloc[i] as f64 * t + handoff);
        }
        Ok(worst)
    }

    /// Per-GPU parameter bytes on the bottleneck stage.
    pub(crate) fn param_bytes_per_gpu(&self, sim: &Simulator) -> u64 {
        let dec_only = sim.enc_layers_total() == sim.model().num_layers();
        self.enc_alloc
            .iter()
            .zip(&self.dec_alloc)
            .zip(self.layout.stages())
            .map(|((&e, &d), s)| {
                let bytes = if dec_only {
                    d as u64 * sim.dec_layer_bytes()
                } else {
                    e as u64 * sim.enc_layer_bytes() + d as u64 * sim.dec_layer_bytes()
                };
                bytes / s.tp as u64
            })
            .max()
            .unwrap_or(0)
    }

    /// KV bytes per cached token on the bottleneck GPU.
    pub(crate) fn kv_bytes_per_token(&self, sim: &Simulator) -> f64 {
        let worst = self
            .dec_alloc
            .iter()
            .zip(self.layout.stages())
            .map(|(&l, s)| l as f64 / s.tp as f64)
            .fold(0.0f64, f64::max);
        sim.model().kv_bytes_per_token_per_layer() as f64 * worst
    }
}

/// Batch sizes the paper sweeps: multiples of four from the minimum up
/// (§7.1, "minimum to maximum batch sizes in multiples of four").
pub(crate) fn batch_sweep(max: usize) -> impl Iterator<Item = usize> {
    (1..).map(|i| i * 4).take_while(move |&b| b <= max)
}

/// Windowed throughput over completion times (same convention as the
/// ExeGPT runner): completions after warm-up over the elapsed window.
pub(crate) fn windowed(completion_times: &[f64], warmup_frac: f64) -> (f64, f64) {
    if completion_times.is_empty() {
        return (0.0, 0.0);
    }
    let mut times = completion_times.to_vec();
    times.sort_by(f64::total_cmp);
    let warm = ((times.len() as f64 * warmup_frac) as usize).min(times.len() - 1);
    let t0 = if warm == 0 { 0.0 } else { times[warm - 1] };
    let t1 = times.last().copied().unwrap_or(0.0);
    if t1 <= t0 {
        // Degenerate window (one static batch): whole-run average.
        return (times.len() as f64 / t1.max(f64::MIN_POSITIVE), t1);
    }
    ((times.len() - warm) as f64 / (t1 - t0), t1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exegpt_cluster::ClusterSpec;
    use exegpt_model::ModelConfig;
    use exegpt_profiler::{ProfileOptions, Profiler};
    use exegpt_workload::Task;
    use std::sync::Arc;

    fn sim(gpus: usize) -> Simulator {
        let model = ModelConfig::opt_13b();
        let cluster = ClusterSpec::a40_cluster().subcluster(gpus).expect("fits");
        let profile = Profiler::new(model.clone(), cluster.clone())
            .run(&ProfileOptions::default())
            .expect("profiles");
        Simulator::new(model, cluster, Arc::new(profile), Task::Translation.workload().unwrap())
    }

    #[test]
    fn paper_parallelism_maximizes_intra_node_tp() {
        let (tp, pp) = paper_parallelism(&sim(4));
        assert_eq!((tp, pp), (4, 1));
        let (tp, pp) = paper_parallelism(&sim(16));
        assert_eq!((tp, pp), (8, 2));
    }

    #[test]
    fn grid_covers_all_layers() {
        let s = sim(16);
        let g = build_grid(&s, 8).expect("valid");
        assert_eq!(g.stages(), 2);
        assert_eq!(g.dec_alloc.iter().sum::<usize>(), 40);
        assert_eq!(g.enc_alloc, g.dec_alloc, "decoder-only shares one allocation");
        assert!(build_grid(&s, 3).is_err());
    }

    #[test]
    fn batch_sweep_is_multiples_of_four() {
        let v: Vec<usize> = batch_sweep(17).collect();
        assert_eq!(v, vec![4, 8, 12, 16]);
    }
}
