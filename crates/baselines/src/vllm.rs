//! vLLM in its iteration-level scheduling mode (paper §7.1): the stand-in
//! the paper uses for proprietary ORCA, with paged KV management, one
//! prefill admission per iteration, and the per-sequence Python host
//! overhead the paper identifies (§7.2).

use exegpt_runner::{RunError, RunOptions, RunReport};
use exegpt_sim::{Estimate, SimError, Simulator};
use exegpt_units::Secs;

use crate::orca::{IterationLevel, Orca};

/// vLLM: a thin configuration of the shared iteration-level engine.
#[derive(Debug, Clone)]
pub struct Vllm {
    inner: Orca,
}

impl Vllm {
    /// Creates vLLM with the paper's parallel configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if no valid grid exists.
    pub fn new(sim: Simulator) -> Result<Self, SimError> {
        Ok(Self { inner: Orca::new(sim, IterationLevel::vllm())? })
    }

    /// The underlying simulator context.
    pub fn simulator(&self) -> &Simulator {
        self.inner.simulator()
    }

    /// Closed-form steady-state estimate for `batch` slots.
    ///
    /// # Errors
    ///
    /// See [`Orca::estimate`].
    pub fn estimate(&self, batch: usize) -> Result<Estimate, SimError> {
        self.inner.estimate(batch)
    }

    /// Best slot count under a latency bound.
    pub fn plan(&self, bound: Secs) -> Option<(usize, Estimate)> {
        self.inner.plan(bound)
    }

    /// Executes vLLM serving with `batch` slots.
    ///
    /// # Errors
    ///
    /// See [`Orca::run`].
    pub fn run(&self, batch: usize, opts: &RunOptions) -> Result<RunReport, RunError> {
        self.inner.run(batch, opts)
    }
}
