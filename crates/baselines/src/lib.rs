//! Executable models of the LLM inference systems ExeGPT is compared
//! against (paper §2, §7.2): NVIDIA FasterTransformer, DeepSpeed-Inference,
//! ORCA, and vLLM.
//!
//! Each baseline reproduces the *scheduling policy* that differentiates it —
//! which queries are batched when, what is early-terminated, how KV-cache
//! space is reserved, and what host overheads apply — and executes it on the
//! same profile/cost substrate as ExeGPT's runner, so throughput/latency
//! comparisons isolate scheduling (exactly what the paper's evaluation
//! compares):
//!
//! * [`FasterTransformer`] — static batches on a PP×TP grid (maximum TP per
//!   node, the paper's baseline configuration); no early termination: every
//!   query in a batch decodes until the batch's longest output finishes;
//!   KV reserved up-front for the maximum output length.
//! * [`DeepSpeedInference`] — FasterTransformer's regime plus hybrid
//!   encode micro-batching and small-batch GeMM kernels, but public-version
//!   tensor parallelism only (no pipeline parallelism, §7.2).
//! * [`Orca`] — iteration-level scheduling: completed queries leave and new
//!   queries join the running batch each iteration, with their (expensive)
//!   prefill executed *inside* the decoding iteration — the pipeline-bubble
//!   and latency-jitter source the paper highlights.
//! * [`Vllm`] — ORCA's iteration-level mode (the paper's stand-in for
//!   proprietary ORCA) plus paged KV management, at most one prefill
//!   admission per iteration, and the un-maskable host overhead the paper
//!   measures for its Python executor.
//!
//! # Example
//!
//! ```
//! use exegpt_baselines::FasterTransformer;
//! use exegpt_cluster::ClusterSpec;
//! use exegpt_model::ModelConfig;
//! use exegpt_profiler::{ProfileOptions, Profiler};
//! use exegpt_sim::Simulator;
//! use exegpt_units::Secs;
//! use exegpt_workload::Task;
//!
//! let model = ModelConfig::opt_13b();
//! let cluster = ClusterSpec::a40_cluster().subcluster(4)?;
//! let profile = Profiler::new(model.clone(), cluster.clone())
//!     .run(&ProfileOptions::default())?;
//! let sim = Simulator::new(model, cluster, profile.into(),
//!     Task::Translation.workload()?);
//! let ft = FasterTransformer::paper_default(sim)?;
//! let (batch, est) = ft.plan(Secs::INFINITY).expect("some batch is feasible");
//! assert!(batch >= 4 && est.throughput > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod common;
mod dsi;
mod ft;
mod orca;
mod vllm;

pub use dsi::DeepSpeedInference;
pub use ft::FasterTransformer;
pub use orca::{IterationLevel, Orca};
pub use vllm::Vllm;
