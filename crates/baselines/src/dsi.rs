//! DeepSpeed-Inference (paper §2, §7.2).
//!
//! DSI shares FasterTransformer's static-batch regime (fixed decode batch,
//! no early termination) and pioneered the hybrid encode/decode
//! micro-batching FT later adopted. Its public version supports tensor
//! parallelism only (§7.2), and its engine adds a small per-iteration host
//! cost that its custom small-batch GeMM kernels only partly recover —
//! calibrated so the Figure 7 ordering (FT above DSI) reproduces, as the
//! paper measures.

use exegpt_runner::{RunError, RunOptions, RunReport};
use exegpt_sim::{Estimate, SimError, Simulator};
use exegpt_units::Secs;

use crate::ft::FasterTransformer;

/// Per-iteration engine overhead of DSI's runtime relative to FT
/// (scheduler hop + kernel dispatch not hidden behind GPU work).
const HOST_OVERHEAD_S: f64 = 6e-4;

/// DeepSpeed-Inference: FT's regime restricted to pure tensor parallelism
/// with a per-iteration engine overhead.
#[derive(Debug, Clone)]
pub struct DeepSpeedInference {
    inner: FasterTransformer,
    mean_out: f64,
}

impl DeepSpeedInference {
    /// Creates DSI. The public version runs tensor parallelism only, so the
    /// cluster must be a single node (as in the paper's §7.2 comparison on
    /// four A40s).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the cluster spans nodes or
    /// no valid TP degree exists.
    pub fn new(sim: Simulator) -> Result<Self, SimError> {
        if sim.cluster().num_nodes() > 1 {
            return Err(SimError::InvalidConfig {
                what: "cluster",
                why: "public DeepSpeed-Inference supports tensor parallelism only; \
                      use a single-node sub-cluster"
                    .into(),
            });
        }
        let tp = sim
            .profile()
            .tp_degrees()
            .into_iter()
            .filter(|&d| {
                sim.cluster().total_gpus().is_multiple_of(d) && d <= sim.cluster().total_gpus()
            })
            .max()
            .unwrap_or(1);
        let mean_out = sim.workload().output().mean().max(1.0);
        Ok(Self { inner: FasterTransformer::with_tensor_parallelism(sim, tp)?, mean_out })
    }

    /// The underlying simulator context.
    pub fn simulator(&self) -> &Simulator {
        self.inner.simulator()
    }

    /// Closed-form estimate for a static batch size, including the engine
    /// overhead over the batch's decode iterations.
    ///
    /// # Errors
    ///
    /// See [`FasterTransformer::estimate`].
    pub fn estimate(&self, batch: usize) -> Result<Estimate, SimError> {
        let mut est = self.inner.estimate(batch)?;
        let iters = self.simulator().workload().output().max_len() as f64;
        let overhead = Secs::new(iters * HOST_OVERHEAD_S);
        est.latency += overhead;
        est.breakdown.decode_time += overhead;
        est.breakdown.period += overhead;
        est.throughput = batch as f64 / est.breakdown.period.as_secs();
        Ok(est)
    }

    /// Best static batch under a latency bound (multiples of four).
    pub fn plan(&self, bound: Secs) -> Option<(usize, Estimate)> {
        let mut best: Option<(usize, Estimate)> = None;
        let mut b = 4;
        while let Ok(est) = self.estimate(b) {
            if est.latency <= bound
                && best.as_ref().is_none_or(|(_, e)| est.throughput > e.throughput)
            {
                best = Some((b, est));
            }
            b += 4;
            if b > self.simulator().profile().max_batch() {
                break;
            }
        }
        best
    }

    /// Executes static batches of size `batch`, adding the engine overhead
    /// per generated-token iteration.
    ///
    /// # Errors
    ///
    /// See [`FasterTransformer::run`].
    pub fn run(&self, batch: usize, opts: &RunOptions) -> Result<RunReport, RunError> {
        let mut rep = self.inner.run(batch, opts)?;
        // The inner replay timed pure kernels; stretch the timeline by the
        // per-iteration engine overhead (iterations = decode stage samples).
        let extra = rep.decoder_stage_times.len() as f64 * HOST_OVERHEAD_S;
        let stretch =
            (rep.makespan.as_secs() + extra) / rep.makespan.as_secs().max(f64::MIN_POSITIVE);
        rep.makespan += Secs::new(extra);
        rep.throughput /= stretch;
        for l in &mut rep.latencies {
            *l *= stretch;
        }
        let _ = self.mean_out;
        Ok(rep)
    }
}
