//! FasterTransformer: the paper's primary baseline (§2, §7).
//!
//! Static batching on a PP×TP grid. A batch is prefilled once (with encode
//! micro-batching, the DSI technique FT adopted), then decoded with a
//! *fixed* batch size until the batch's longest output finishes — no early
//! termination, so completed queries keep consuming compute (the white
//! boxes in the paper's Figure 1). KV-cache space is reserved up-front for
//! the maximum output length.

use exegpt_runner::{KvTracker, ReservePolicy, RunError, RunOptions, RunReport};
use exegpt_sim::{Breakdown, Estimate, MemoryReport, SimError, Simulator};
use exegpt_units::Secs;
use exegpt_workload::{Request, RequestStream};

use crate::common::{batch_sweep, build_grid, paper_parallelism, windowed, GridPlan};

/// NVIDIA FasterTransformer executing with static batches.
#[derive(Debug, Clone)]
pub struct FasterTransformer {
    sim: Simulator,
    plan: GridPlan,
}

impl FasterTransformer {
    /// Creates FT with the paper's parallel configuration: maximum tensor
    /// parallelism within a node, pipeline parallelism across nodes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if no valid grid exists.
    pub fn paper_default(sim: Simulator) -> Result<Self, SimError> {
        let (tp, _) = paper_parallelism(&sim);
        Self::with_tensor_parallelism(sim, tp)
    }

    /// Creates FT with an explicit tensor-parallel degree (pipeline degree
    /// follows as `gpus / tp`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `tp` does not divide the GPU
    /// count or was not profiled.
    pub fn with_tensor_parallelism(sim: Simulator, tp: usize) -> Result<Self, SimError> {
        let plan = build_grid(&sim, tp)?;
        Ok(Self { sim, plan })
    }

    /// The underlying simulator context.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The tensor-parallel degree in use.
    pub fn tensor_parallelism(&self) -> usize {
        self.plan.tp
    }

    /// Closed-form estimate for a given static batch size.
    ///
    /// Latency is the full-batch completion time when generating the
    /// *maximum-length* output — the quantity the paper bounds for systems
    /// without early termination (§7.1). Throughput assumes back-to-back
    /// batches.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for infeasible batch sizes (out of memory).
    pub fn estimate(&self, batch: usize) -> Result<Estimate, SimError> {
        if batch == 0 {
            return Err(SimError::InvalidConfig { what: "batch", why: "must be >= 1".into() });
        }
        let w = self.sim.workload();
        let mean_in = w.input().mean();
        let s_max = w.output().max_len();
        let stages = self.plan.stages();

        // Memory: up-front reservation for input + max output.
        let kv_per_token = self.plan.kv_bytes_per_token(&self.sim);
        let params = self.plan.param_bytes_per_gpu(&self.sim);
        let kv_needed = (batch as f64 * (mean_in + s_max as f64) * kv_per_token) as u64;
        let capacity = self.sim.usable_capacity();
        if params + kv_needed > capacity {
            return Err(SimError::OutOfMemory {
                role: "worker",
                needed: params + kv_needed,
                capacity,
            });
        }

        // Prefill with encode micro-batching (m_e = 2 per stage).
        let m_e = (2 * stages).min(batch).max(1);
        let enc_stage =
            self.plan.encode_stage_time(&self.sim, batch as f64 / m_e as f64, mean_in)?;
        let t_prefill = enc_stage * (stages + m_e - 1) as f64;

        // Decode s_max iterations at constant batch; context grows.
        let m_d = stages.min(batch).max(1);
        let micro = batch as f64 / m_d as f64;
        let mut t_decode = Secs::ZERO;
        for u in 1..=s_max {
            let ctx = mean_in + u as f64;
            t_decode += m_d as f64 * self.plan.decode_stage_time(&self.sim, micro, ctx)?;
        }
        t_decode +=
            (stages as f64 - 1.0) * self.plan.decode_stage_time(&self.sim, micro, mean_in)?;

        let t_batch = t_prefill + t_decode;
        let footprint = exegpt_model::MemoryFootprint {
            param_bytes: params,
            kv_bytes: kv_needed,
            activation_bytes: 0,
        };
        Ok(Estimate {
            latency: t_batch,
            throughput: batch as f64 / t_batch.as_secs(),
            memory: MemoryReport { encoder_gpu: footprint, decoder_gpu: footprint, capacity },
            breakdown: Breakdown {
                encode_time: t_prefill,
                decode_time: t_decode,
                period: t_batch,
                stages,
                decode_batch: batch,
            },
        })
    }

    /// Sweeps batch sizes in multiples of four (§7.1) and returns the
    /// highest-throughput batch whose estimated latency meets `bound`.
    pub fn plan(&self, bound: Secs) -> Option<(usize, Estimate)> {
        let mut best: Option<(usize, Estimate)> = None;
        for b in batch_sweep(self.sim.profile().max_batch()) {
            match self.estimate(b) {
                Ok(est) if est.latency <= bound => {
                    if best.as_ref().is_none_or(|(_, e)| est.throughput > e.throughput) {
                        best = Some((b, est));
                    }
                }
                Ok(_) => {}
                Err(SimError::OutOfMemory { .. }) => break,
                Err(_) => break,
            }
        }
        best
    }

    /// The latency sweep the paper derives its four bounds from: estimated
    /// full-batch latencies over all feasible batch sizes.
    pub fn latency_sweep(&self) -> Vec<Secs> {
        batch_sweep(self.sim.profile().max_batch())
            .map_while(|b| self.estimate(b).ok().map(|e| e.latency))
            .collect()
    }

    /// Executes static batches of size `batch` over sampled queries.
    ///
    /// Every query's latency is its batch's full completion time (results
    /// return when the batch finishes; no early termination).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] for infeasible configurations.
    pub fn run(&self, batch: usize, opts: &RunOptions) -> Result<RunReport, RunError> {
        self.estimate(batch)?; // feasibility gate
        let w = self.sim.workload();
        let mean_in_dist = w.input().mean();
        let stages = self.plan.stages();
        let s_dist_max = w.output().max_len();

        let kv_per_token = self.plan.kv_bytes_per_token(&self.sim);
        let params = self.plan.param_bytes_per_gpu(&self.sim);
        let capacity = self.sim.usable_capacity().saturating_sub(params);
        let mut kv = KvTracker::new(kv_per_token, capacity, ReservePolicy::UpFront);

        let stream_workload = opts.request_workload.as_ref().unwrap_or(w);
        let mut pending: Vec<Request> =
            RequestStream::new(stream_workload, opts.seed).take(opts.num_queries).collect();
        pending.reverse();

        let mut t = 0.0f64;
        let mut latencies = Vec::with_capacity(opts.num_queries);
        let mut completions = Vec::with_capacity(opts.num_queries);
        let mut enc_stage_times = Vec::new();
        let mut dec_stage_times = Vec::new();
        let mut tokens: u64 = 0;
        let mut peak_kv = 0u64;

        while !pending.is_empty() {
            // Assemble the next static batch.
            let mut batch_reqs: Vec<Request> = Vec::with_capacity(batch);
            while batch_reqs.len() < batch {
                let Some(req) = pending.last().copied() else { break };
                if !kv.try_admit(req.id, req.input_len, s_dist_max) {
                    break;
                }
                pending.pop();
                batch_reqs.push(req);
            }
            if batch_reqs.is_empty() {
                return Err(RunError::Stalled {
                    why: "next query cannot fit in the kv cache".to_string(),
                });
            }
            peak_kv = peak_kv.max(kv.peak_bytes());
            let t_start = t;
            let b = batch_reqs.len();
            let mean_in: f64 =
                batch_reqs.iter().map(|r| r.input_len as f64).sum::<f64>() / b as f64;

            // Prefill.
            let m_e = (2 * stages).min(b).max(1);
            let enc_stage = self
                .plan
                .encode_stage_time(&self.sim, b as f64 / m_e as f64, mean_in)
                .map_err(RunError::from)?;
            enc_stage_times.push(enc_stage.as_secs());
            t += (enc_stage * (stages + m_e - 1) as f64).as_secs();

            // Decode to the batch's longest output with no early termination.
            let s_batch = batch_reqs.iter().map(|r| r.output_len).max().unwrap_or(0);
            let m_d = stages.min(b).max(1);
            let micro = b as f64 / m_d as f64;
            for u in 1..=s_batch {
                let ctx = mean_in + u as f64;
                let worst =
                    self.plan.decode_stage_time(&self.sim, micro, ctx).map_err(RunError::from)?;
                dec_stage_times.push(worst.as_secs());
                t += (worst * m_d as f64).as_secs();
            }

            for req in batch_reqs {
                tokens += req.output_len as u64;
                kv.release(req.id);
                latencies.push(t - t_start);
                completions.push(t);
            }
            let _ = mean_in_dist;
        }

        let (throughput, makespan) = windowed(&completions, opts.warmup_frac);
        Ok(RunReport {
            completed: latencies.len(),
            tokens_generated: tokens,
            makespan: Secs::new(makespan),
            throughput,
            latencies,
            encoder_stage_times: enc_stage_times,
            decoder_stage_times: dec_stage_times,
            peak_kv_bytes: peak_kv.max(kv.peak_bytes()),
            param_bytes: params,
            trace: None,
            sojourn_times: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exegpt_cluster::ClusterSpec;
    use exegpt_model::ModelConfig;
    use exegpt_profiler::{ProfileOptions, Profiler};
    use exegpt_workload::Task;
    use std::sync::Arc;

    fn ft(task: Task) -> FasterTransformer {
        let model = ModelConfig::opt_13b();
        let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
        let profile = Profiler::new(model.clone(), cluster.clone())
            .run(&ProfileOptions::default())
            .expect("profiles");
        let sim =
            Simulator::new(model, cluster, Arc::new(profile), task.workload().expect("valid"));
        FasterTransformer::paper_default(sim).expect("valid grid")
    }

    #[test]
    fn uses_max_tp_within_a_node() {
        assert_eq!(ft(Task::Translation).tensor_parallelism(), 4);
    }

    #[test]
    fn bigger_batches_trade_latency_for_throughput() {
        let ft = ft(Task::Translation);
        let a = ft.estimate(4).expect("feasible");
        let b = ft.estimate(32).expect("feasible");
        assert!(b.throughput > a.throughput);
        assert!(b.latency > a.latency);
    }

    #[test]
    fn plan_respects_the_bound() {
        let ft = ft(Task::Translation);
        let unbounded = ft.plan(Secs::INFINITY).expect("feasible");
        let sweep = ft.latency_sweep();
        let tight = exegpt_workload::latency_bounds(&sweep).expect("non-empty")[0];
        let bounded = ft.plan(tight).expect("feasible");
        assert!(bounded.1.latency <= tight);
        assert!(bounded.0 <= unbounded.0);
        assert!(bounded.1.throughput <= unbounded.1.throughput);
    }

    #[test]
    fn run_matches_estimate_roughly() {
        let ft = ft(Task::Translation);
        let est = ft.estimate(16).expect("feasible");
        let rep = ft.run(16, &RunOptions { num_queries: 200, ..Default::default() }).expect("runs");
        assert_eq!(rep.completed, 200);
        let ratio = rep.throughput / est.throughput;
        // The estimate decodes to the distribution max; sampled batches
        // usually finish earlier, so measured throughput is a bit higher.
        assert!((0.8..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_queries_in_a_batch_share_its_completion_time() {
        let ft = ft(Task::Summarization);
        let rep = ft.run(8, &RunOptions { num_queries: 16, ..Default::default() }).expect("runs");
        // Two batches of 8: exactly two distinct latencies per batch start.
        let mut unique: Vec<u64> = rep.latencies.iter().map(|l| l.to_bits()).collect();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() <= 4, "static batches should share completion times");
    }

    #[test]
    fn oom_batches_are_rejected() {
        let ft = ft(Task::ConversationalQa2);
        assert!(matches!(ft.estimate(4096), Err(SimError::OutOfMemory { .. })));
    }
}
