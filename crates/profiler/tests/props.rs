//! Property-based invariants of the interpolation grids.

use exegpt_profiler::{Grid1D, Grid2D};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interpolation is exact at the knots and bounded by neighbouring
    /// knot values inside each segment for monotone data.
    #[test]
    fn grid1d_interpolates_within_segments(
        increments in prop::collection::vec(0.01f64..10.0, 2..32),
        ys_inc in prop::collection::vec(0.0f64..5.0, 2..32),
        t in 0.0f64..1.0,
    ) {
        let n = increments.len().min(ys_inc.len());
        let mut xs = Vec::with_capacity(n);
        let mut acc = 0.0;
        for inc in &increments[..n] {
            acc += inc;
            xs.push(acc);
        }
        let mut ys = Vec::with_capacity(n);
        let mut yacc = 0.0;
        for inc in &ys_inc[..n] {
            yacc += inc;
            ys.push(yacc);
        }
        let g = Grid1D::new(xs.clone(), ys.clone()).expect("valid grid");
        for i in 0..n {
            prop_assert!((g.eval(xs[i]) - ys[i]).abs() < 1e-9);
        }
        if n >= 2 {
            let i = (t * (n - 1) as f64) as usize;
            let i = i.min(n - 2);
            let x = xs[i] + t.fract() * (xs[i + 1] - xs[i]);
            let v = g.eval(x);
            prop_assert!(v >= ys[i] - 1e-9 && v <= ys[i + 1] + 1e-9);
        }
    }

    /// Bilinear interpolation reproduces affine functions exactly,
    /// everywhere (including extrapolation).
    #[test]
    fn grid2d_reproduces_affine_functions(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in -5.0f64..5.0,
        qx in -10.0f64..120.0,
        qy in -10.0f64..120.0,
    ) {
        let xs: Vec<f64> = (0..8).map(|i| (i * i + i + 1) as f64).collect();
        let ys: Vec<f64> = (0..6).map(|i| (3 * i + 1) as f64).collect();
        let f = |x: f64, y: f64| a * x + b * y + c;
        let zs: Vec<Vec<f64>> =
            xs.iter().map(|&x| ys.iter().map(|&y| f(x, y)).collect()).collect();
        let g = Grid2D::new(xs, ys, zs).expect("valid grid");
        let want = f(qx, qy).max(0.0); // grids clamp to non-negative times
        prop_assert!((g.eval(qx, qy) - want).abs() < 1e-6 * (1.0 + want.abs()));
    }
}
