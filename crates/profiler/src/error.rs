//! Error types for the profiler crate.

/// Errors produced when building or querying profiles.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A sweep axis was empty or not strictly increasing.
    InvalidAxis {
        /// Which axis was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: &'static str,
    },
    /// The requested tensor-parallel degree was not profiled.
    UnprofiledTpDegree {
        /// The requested degree.
        requested: usize,
        /// The degrees that were profiled.
        available: Vec<usize>,
    },
    /// A query lay outside the profiled region and extrapolation was
    /// disabled for it.
    OutOfRange {
        /// Which quantity was out of range.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::InvalidAxis { what, why } => {
                write!(f, "invalid profile axis `{what}`: {why}")
            }
            ProfileError::UnprofiledTpDegree { requested, available } => write!(
                f,
                "tensor-parallel degree {requested} was not profiled (available: {available:?})"
            ),
            ProfileError::OutOfRange { what, value } => {
                write!(f, "profile query `{what}` = {value} is out of the profiled range")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_degree() {
        let e = ProfileError::UnprofiledTpDegree { requested: 3, available: vec![1, 2, 4] };
        assert!(e.to_string().contains('3'));
    }
}
