//! XProfiler: per-layer execution-time profiles (paper §3).
//!
//! The real XProfiler measures, once per (LLM, GPU cluster) pair, the
//! execution time of a *single* encoder/decoder layer — separately for the
//! attention kernel (swept over batch sizes and sequence lengths) and the
//! rest of the layer (swept over input sizes), for every feasible
//! tensor-parallel degree — plus the tensor- and pipeline-parallel
//! synchronization overheads.
//!
//! This reproduction performs exactly the same sweeps, but the "measurement"
//! is a query to the analytical roofline cost model in `exegpt-cluster`
//! rather than a CUDA kernel launch. Crucially, the rest of the system never
//! touches the cost model: the simulator and scheduler interpolate the swept
//! [`LayerProfile`] tables, preserving the paper's information flow
//! (profile → simulate → schedule) and keeping the hardware substitution
//! confined to this boundary (see `DESIGN.md`).
//!
//! Profiles serialize with serde so they can be saved and re-loaded, like
//! the paper's once-per-cluster profiling step (§7.7).
//!
//! # Example
//!
//! ```
//! use exegpt_cluster::ClusterSpec;
//! use exegpt_model::ModelConfig;
//! use exegpt_profiler::{ProfileOptions, Profiler};
//! use exegpt_units::Secs;
//!
//! let model = ModelConfig::opt_13b();
//! let cluster = ClusterSpec::a40_cluster().subcluster(4)?;
//! let profile = Profiler::new(model, cluster).run(&ProfileOptions::default())?;
//! // One decode iteration of a 32-query batch with ~200-token contexts:
//! let t = profile.decode_layer_time(32.0, 200.0, 100.0, 1)?;
//! assert!(t > Secs::ZERO && t < Secs::from_millis(100.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod grid;
mod profile;
mod profiler;

pub use error::ProfileError;
pub use grid::{Grid1D, Grid2D};
pub use profile::LayerProfile;
pub use profiler::{ProfileCache, ProfileOptions, Profiler};
