//! Interpolation grids backing the profile tables.

use serde::{Deserialize, Serialize};

use crate::error::ProfileError;

/// A 1-D lookup table with piecewise-linear interpolation.
///
/// Outside the swept range the nearest segment is extrapolated linearly —
/// profiles are swept densely enough (log-spaced) that queries land inside,
/// but batch-size rounding in the simulator may step slightly past an
/// endpoint.
///
/// # Example
///
/// ```
/// use exegpt_profiler::Grid1D;
///
/// let g = Grid1D::new(vec![1.0, 2.0, 4.0], vec![10.0, 20.0, 40.0])?;
/// assert_eq!(g.eval(3.0), 30.0);
/// # Ok::<(), exegpt_profiler::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid1D {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Grid1D {
    /// Builds a grid from sample points.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidAxis`] if the axes differ in length,
    /// have fewer than one point, or `xs` is not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, ProfileError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(ProfileError::InvalidAxis {
                what: "xs/ys",
                why: "must be non-empty and equal length",
            });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN axis values must fail
        if xs.windows(2).any(|w| !(w[0] < w[1])) {
            return Err(ProfileError::InvalidAxis {
                what: "xs",
                why: "must be strictly increasing",
            });
        }
        if ys.iter().chain(xs.iter()).any(|v| !v.is_finite()) {
            return Err(ProfileError::InvalidAxis { what: "xs/ys", why: "must be finite" });
        }
        Ok(Self { xs, ys })
    }

    /// Interpolated (or linearly extrapolated) value at `x`.
    ///
    /// Extrapolated results are clamped to be non-negative, since all
    /// profiled quantities are times.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if n == 1 {
            return self.ys[0];
        }
        // Segment index: the last i with xs[i] <= x, clamped to [0, n-2].
        let i = match self.xs.partition_point(|&v| v <= x) {
            0 => 0,
            p => (p - 1).min(n - 2),
        };
        let (x0, x1) = (self.xs[i], self.xs[i + 1]);
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        let t = (x - x0) / (x1 - x0);
        (y0 + t * (y1 - y0)).max(0.0)
    }

    /// The swept sample positions.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }
}

/// A 2-D lookup table with bilinear interpolation, used for attention-kernel
/// times over (batch size, sequence length).
///
/// # Example
///
/// ```
/// use exegpt_profiler::Grid2D;
///
/// let g = Grid2D::new(
///     vec![1.0, 2.0],
///     vec![10.0, 20.0],
///     vec![vec![1.0, 2.0], vec![2.0, 4.0]],
/// )?;
/// assert!((g.eval(1.5, 15.0) - 2.25).abs() < 1e-12);
/// # Ok::<(), exegpt_profiler::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2D {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// `zs[i][j]` is the value at `(xs[i], ys[j])`.
    zs: Vec<Vec<f64>>,
}

impl Grid2D {
    /// Builds a grid from sample points.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidAxis`] if either axis is empty or not
    /// strictly increasing, or `zs` has the wrong shape.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, zs: Vec<Vec<f64>>) -> Result<Self, ProfileError> {
        for (what, axis) in [("xs", &xs), ("ys", &ys)] {
            if axis.is_empty() {
                return Err(ProfileError::InvalidAxis { what, why: "must be non-empty" });
            }
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN axis values must fail
            if axis.windows(2).any(|w| !(w[0] < w[1])) {
                return Err(ProfileError::InvalidAxis { what, why: "must be strictly increasing" });
            }
        }
        if zs.len() != xs.len() || zs.iter().any(|row| row.len() != ys.len()) {
            return Err(ProfileError::InvalidAxis {
                what: "zs",
                why: "must have shape xs.len() x ys.len()",
            });
        }
        if zs.iter().flatten().any(|v| !v.is_finite()) {
            return Err(ProfileError::InvalidAxis { what: "zs", why: "must be finite" });
        }
        Ok(Self { xs, ys, zs })
    }

    fn segment(axis: &[f64], v: f64) -> (usize, f64) {
        let n = axis.len();
        if n == 1 {
            return (0, 0.0);
        }
        let i = match axis.partition_point(|&a| a <= v) {
            0 => 0,
            p => (p - 1).min(n - 2),
        };
        let t = (v - axis[i]) / (axis[i + 1] - axis[i]);
        (i, t)
    }

    /// The swept sample positions along the first axis.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Bilinearly interpolated (or extrapolated) value at `(x, y)`, clamped
    /// non-negative.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        if self.xs.len() == 1 && self.ys.len() == 1 {
            return self.zs[0][0];
        }
        let (i, tx) = Self::segment(&self.xs, x);
        let (j, ty) = Self::segment(&self.ys, y);
        let at = |ii: usize, jj: usize| -> f64 {
            self.zs[ii.min(self.xs.len() - 1)][jj.min(self.ys.len() - 1)]
        };
        let z00 = at(i, j);
        let z10 = at(i + 1, j);
        let z01 = at(i, j + 1);
        let z11 = at(i + 1, j + 1);
        let z0 = z00 + tx * (z10 - z00);
        let z1 = z01 + tx * (z11 - z01);
        (z0 + ty * (z1 - z0)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid1d_exact_at_knots() {
        let g = Grid1D::new(vec![1.0, 10.0, 100.0], vec![5.0, 50.0, 500.0]).expect("valid");
        for (x, y) in [(1.0, 5.0), (10.0, 50.0), (100.0, 500.0)] {
            assert!((g.eval(x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn grid1d_extrapolates_linearly() {
        let g = Grid1D::new(vec![1.0, 2.0], vec![10.0, 20.0]).expect("valid");
        assert!((g.eval(3.0) - 30.0).abs() < 1e-12);
        // Clamped at zero below.
        assert_eq!(g.eval(-5.0), 0.0);
    }

    #[test]
    fn grid1d_single_point_is_constant() {
        let g = Grid1D::new(vec![4.0], vec![7.0]).expect("valid");
        assert_eq!(g.eval(0.0), 7.0);
        assert_eq!(g.eval(100.0), 7.0);
    }

    #[test]
    fn grid1d_rejects_bad_axes() {
        assert!(Grid1D::new(vec![], vec![]).is_err());
        assert!(Grid1D::new(vec![1.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(Grid1D::new(vec![2.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(Grid1D::new(vec![1.0], vec![f64::NAN]).is_err());
        assert!(Grid1D::new(vec![1.0, 2.0], vec![1.0]).is_err());
    }

    #[test]
    fn grid2d_bilinear_matches_plane() {
        // z = 2x + 3y is reproduced exactly by bilinear interpolation.
        let xs = vec![0.0, 1.0, 2.0];
        let ys = vec![0.0, 2.0];
        let zs: Vec<Vec<f64>> =
            xs.iter().map(|&x| ys.iter().map(|&y| 2.0 * x + 3.0 * y).collect()).collect();
        let g = Grid2D::new(xs, ys, zs).expect("valid");
        assert!((g.eval(0.5, 1.0) - 4.0).abs() < 1e-12);
        assert!((g.eval(1.7, 0.3) - (3.4 + 0.9)).abs() < 1e-12);
        // Extrapolation continues the plane.
        assert!((g.eval(3.0, 4.0) - 18.0).abs() < 1e-12);
    }

    #[test]
    fn grid2d_rejects_shape_mismatch() {
        assert!(Grid2D::new(vec![1.0], vec![1.0], vec![]).is_err());
        assert!(Grid2D::new(vec![1.0, 2.0], vec![1.0], vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Grid2D::new(vec![], vec![1.0], vec![]).is_err());
    }
}
