//! The queryable profile produced by a profiling run.

use std::collections::BTreeMap;

use exegpt_units::Secs;
use serde::{Deserialize, Serialize};

use crate::error::ProfileError;
use crate::grid::{Grid1D, Grid2D};

/// Per-tensor-parallel-degree sweep tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct TpTables {
    /// Encode attention kernel time over (batch, seq).
    pub enc_attn: Grid2D,
    /// Encode non-attention time over total tokens (batch × seq).
    pub enc_rest: Grid1D,
    /// Encode-layer tensor-parallel sync time over total tokens
    /// (2 all-reduces per encoder layer, after Megatron).
    pub enc_sync: Grid1D,
    /// Decode self-attention kernel time over (batch, context length).
    pub dec_attn: Grid2D,
    /// Decode cross-attention kernel time over (batch, input length);
    /// present only for encoder–decoder models.
    pub dec_cross: Option<Grid2D>,
    /// Decode non-attention time over batch size.
    pub dec_rest: Grid1D,
    /// Decode-layer tensor-parallel sync time over batch size
    /// (3 all-reduces per decoder layer).
    pub dec_sync: Grid1D,
}

/// Execution-time profile of a single encoder/decoder layer on a specific
/// (model, cluster) pair, across all profiled tensor-parallel degrees.
///
/// Built by [`Profiler::run`](crate::Profiler::run); queried by the
/// simulator and runner. All returned times are typed [`Secs`] and refer to
/// *one* layer; callers multiply by per-stage layer counts. The underlying
/// interpolation grids store raw seconds (`f64`) — the typed boundary is the
/// query methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    pub(crate) model_name: String,
    pub(crate) cluster_name: String,
    pub(crate) per_tp: BTreeMap<usize, TpTables>,
    /// Pipeline-stage handoff time over tokens transferred, intra-node.
    pub(crate) handoff_intra: Grid1D,
    /// Pipeline-stage handoff time over tokens transferred, inter-node.
    pub(crate) handoff_inter: Grid1D,
    /// Time to move one token's KV entry for one layer from an encoding
    /// GPU to a decoding GPU via CPU staging (WAA handover, §3).
    pub(crate) kv_transfer_per_token_layer: Secs,
    /// Largest batch size swept (upper bound for scheduler search ranges).
    pub(crate) max_batch: usize,
    /// Largest sequence/context length swept.
    pub(crate) max_seq: usize,
}

impl LayerProfile {
    /// Name of the profiled model.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Name of the profiled cluster.
    pub fn cluster_name(&self) -> &str {
        &self.cluster_name
    }

    /// The tensor-parallel degrees this profile was swept over.
    pub fn tp_degrees(&self) -> Vec<usize> {
        self.per_tp.keys().copied().collect()
    }

    /// Largest batch size covered by the sweep.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Largest sequence length covered by the sweep.
    pub fn max_seq(&self) -> usize {
        self.max_seq
    }

    fn tables(&self, tp: usize) -> Result<&TpTables, ProfileError> {
        self.per_tp.get(&tp).ok_or_else(|| ProfileError::UnprofiledTpDegree {
            requested: tp,
            available: self.tp_degrees(),
        })
    }

    /// Time for one layer to *encode* `batch` sequences of `seq` tokens at
    /// tensor-parallel degree `tp` (attention + rest + TP sync).
    ///
    /// Fractional `batch`/`seq` are allowed: the simulator evaluates
    /// expected micro-batch sizes that need not be whole queries.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::UnprofiledTpDegree`] if `tp` was not swept.
    pub fn encode_layer_time(&self, batch: f64, seq: f64, tp: usize) -> Result<Secs, ProfileError> {
        let t = self.tables(tp)?;
        let tokens = batch * seq;
        Ok(Secs::new(
            t.enc_attn.eval(batch, seq) + t.enc_rest.eval(tokens) + t.enc_sync.eval(tokens),
        ))
    }

    /// Time for one layer to run one *decode* iteration for `batch` queries
    /// whose mean total context is `ctx` tokens, with `input_len` cached
    /// input tokens for cross-attention (ignored for decoder-only models),
    /// at tensor-parallel degree `tp`.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::UnprofiledTpDegree`] if `tp` was not swept.
    pub fn decode_layer_time(
        &self,
        batch: f64,
        ctx: f64,
        input_len: f64,
        tp: usize,
    ) -> Result<Secs, ProfileError> {
        let t = self.tables(tp)?;
        let cross = t.dec_cross.as_ref().map_or(0.0, |g| g.eval(batch, input_len));
        Ok(Secs::new(
            t.dec_attn.eval(batch, ctx) + cross + t.dec_rest.eval(batch) + t.dec_sync.eval(batch),
        ))
    }

    /// Collapses the per-stage decode bottleneck term
    /// `layers · decode_layer_time(batch) + handoff_time(batch)` at fixed
    /// context/input lengths and TP degree into a single 1-D grid over the
    /// batch axis.
    ///
    /// Every addend is piecewise-linear in `batch`, so on the union of
    /// their sample positions the sum is too: within the sampled range the
    /// returned grid evaluates the same function as the individual lookups
    /// (exactly at the knots, up to floating-point association in between).
    /// Outside the range the grid extrapolates the *sum* linearly while the
    /// individual lookups clamp each component at zero separately — callers
    /// that can leave the range should fall back to the direct calls there.
    ///
    /// This is the simulator's hot-loop hook: one lookup per pipeline-stage
    /// class per decode iteration instead of four.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::UnprofiledTpDegree`] if `tp` was not swept.
    pub fn decode_stage_grid(
        &self,
        ctx: f64,
        input_len: f64,
        tp: usize,
        layers: f64,
        intra_node: bool,
    ) -> Result<Grid1D, ProfileError> {
        let t = self.tables(tp)?;
        let handoff = if intra_node { &self.handoff_intra } else { &self.handoff_inter };
        let mut knots: Vec<f64> = t
            .dec_attn
            .xs()
            .iter()
            .chain(t.dec_cross.as_ref().map_or(&[][..], |g| g.xs()))
            .chain(t.dec_rest.xs())
            .chain(t.dec_sync.xs())
            .chain(handoff.xs())
            .copied()
            .collect();
        knots.sort_by(f64::total_cmp);
        knots.dedup();
        let ys = knots
            .iter()
            .map(|&b| {
                Ok((self.decode_layer_time(b, ctx, input_len, tp)? * layers
                    + self.handoff_time(b, intra_node))
                .as_secs())
            })
            .collect::<Result<Vec<_>, ProfileError>>()?;
        Grid1D::new(knots, ys)
    }

    /// Pipeline-stage handoff time for an activation tensor of
    /// `tokens` tokens (`intra_node` selects the link).
    pub fn handoff_time(&self, tokens: f64, intra_node: bool) -> Secs {
        Secs::new(if intra_node {
            self.handoff_intra.eval(tokens)
        } else {
            self.handoff_inter.eval(tokens)
        })
    }

    /// Time to transfer the KV-cache entries of `tokens` tokens across
    /// `layers` layers from encoding GPUs to decoding GPUs via CPU staging
    /// (WAA handover).
    pub fn kv_transfer_time(&self, tokens: f64, layers: usize) -> Secs {
        self.kv_transfer_per_token_layer * (tokens * layers as f64)
    }
}
