//! The profiling sweep (paper §3, XProfiler).

use std::collections::BTreeMap;
use std::sync::Arc;

use exegpt_cluster::{ClusterSpec, CostModel};
use exegpt_model::{KernelCost, LayerKind, ModelConfig, ModelKind};
use exegpt_units::{Bytes, BytesPerSec};
// xlint::allow(D3, the profile cache is a leaf shared map guarded by one lock; no lock ordering, no iteration-order dependence)
use parking_lot::Mutex;

use crate::error::ProfileError;
use crate::grid::{Grid1D, Grid2D};
use crate::profile::{LayerProfile, TpTables};

/// Sweep ranges for a profiling run.
///
/// Defaults cover the paper's operating points (batches to 4096, sequences
/// to 8192) with log-spaced sample points; the cost model is smooth between
/// them, so interpolation error stays small.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOptions {
    /// Largest batch size to sweep.
    pub max_batch: usize,
    /// Largest sequence/context length to sweep.
    pub max_seq: usize,
    /// Effective bandwidth of the GPU↔CPU staging path used for WAA
    /// KV-cache handover.
    pub staging_bandwidth: BytesPerSec,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        Self {
            max_batch: 4096,
            max_seq: 8192,
            staging_bandwidth: BytesPerSec::from_gb_per_sec(20.0),
        }
    }
}

/// XProfiler: sweeps single-layer execution times on the simulated cluster.
///
/// See the crate docs for the substitution rationale; the sweep structure
/// (attention over batch×seq, rest over input size, per TP degree, plus
/// sync overheads) matches §3 of the paper.
#[derive(Debug, Clone)]
pub struct Profiler {
    model: ModelConfig,
    cluster: ClusterSpec,
}

impl Profiler {
    /// Creates a profiler for a (model, cluster) pair.
    pub fn new(model: ModelConfig, cluster: ClusterSpec) -> Self {
        Self { model, cluster }
    }

    /// Runs the sweep and returns the queryable profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidAxis`] if the options produce a
    /// degenerate sweep (e.g. `max_batch == 0`).
    pub fn run(&self, opts: &ProfileOptions) -> Result<LayerProfile, ProfileError> {
        if opts.max_batch == 0 || opts.max_seq == 0 {
            return Err(ProfileError::InvalidAxis {
                what: "options",
                why: "max_batch and max_seq must be non-zero",
            });
        }
        let cost = CostModel::new(self.cluster.gpu().clone());
        let batches = log2_axis(opts.max_batch);
        let seqs = log2_axis(opts.max_seq);
        let tokens = log2_axis(opts.max_batch.saturating_mul(opts.max_seq).min(1 << 24));

        let mut per_tp = BTreeMap::new();
        for tp in self.tp_degrees() {
            per_tp.insert(tp, self.sweep_degree(&cost, tp, &batches, &seqs, &tokens)?);
        }

        let d = self.model.d_model() as f64 * self.model.dtype_bytes() as f64;
        let handoff = |intra: bool| -> Result<Grid1D, ProfileError> {
            let link = if intra { self.cluster.intra() } else { self.cluster.inter() };
            let ys = tokens.iter().map(|&t| link.p2p_time(Bytes::new(t * d)).as_secs()).collect();
            Grid1D::new(tokens.clone(), ys)
        };

        let kv_bytes = self.model.kv_bytes_per_token_per_layer() as f64;
        // GPU -> CPU -> GPU: the staging path is traversed twice.
        let kv_transfer_per_token_layer = Bytes::new(2.0 * kv_bytes) / opts.staging_bandwidth;

        Ok(LayerProfile {
            model_name: self.model.name().to_string(),
            cluster_name: self.cluster.name().to_string(),
            per_tp,
            handoff_intra: handoff(true)?,
            handoff_inter: handoff(false)?,
            kv_transfer_per_token_layer,
            max_batch: opts.max_batch,
            max_seq: opts.max_seq,
        })
    }

    /// The tensor-parallel degrees worth sweeping: powers of two that divide
    /// the head count and fit in one node (partial TP groups are intra-node,
    /// where the fast link lives).
    pub fn tp_degrees(&self) -> Vec<usize> {
        let cap =
            self.cluster.gpus_per_node().min(self.cluster.total_gpus()).min(self.model.num_heads());
        let mut degs = Vec::new();
        let mut d = 1;
        while d <= cap {
            if self.model.num_heads().is_multiple_of(d) {
                degs.push(d);
            }
            d *= 2;
        }
        degs
    }

    fn sweep_degree(
        &self,
        cost: &CostModel,
        tp: usize,
        batches: &[f64],
        seqs: &[f64],
        tokens: &[f64],
    ) -> Result<TpTables, ProfileError> {
        let m = &self.model;
        let inv = 1.0 / tp as f64;
        let link = self.cluster.intra();
        let d_bytes = m.d_model() as f64 * m.dtype_bytes() as f64;
        // Encoding runs on encoder layers for encoder–decoder models, and on
        // the (only) decoder layers for decoder-only models.
        let enc_kind = match m.kind() {
            ModelKind::EncoderDecoder => LayerKind::Encoder,
            ModelKind::DecoderOnly => LayerKind::Decoder,
        };
        let _ = enc_kind; // shape is identical for both encode cost paths

        let measure = |c: KernelCost| cost.kernel_time(c.scaled(inv)).as_secs();

        let enc_attn = Grid2D::new(
            batches.to_vec(),
            seqs.to_vec(),
            batches
                .iter()
                .map(|&b| {
                    seqs.iter()
                        .map(|&s| measure(m.encode_attention_cost(b as usize, s as usize)))
                        .collect()
                })
                .collect(),
        )?;
        let enc_rest = Grid1D::new(
            tokens.to_vec(),
            tokens.iter().map(|&t| measure(m.encode_rest_cost(1, t as usize))).collect(),
        )?;
        let enc_sync = Grid1D::new(
            tokens.to_vec(),
            tokens
                .iter()
                .map(|&t| (link.allreduce_time(Bytes::new(t * d_bytes), tp) * 2.0).as_secs())
                .collect(),
        )?;

        let dec_attn = Grid2D::new(
            batches.to_vec(),
            seqs.to_vec(),
            batches
                .iter()
                .map(|&b| {
                    seqs.iter()
                        .map(|&c| {
                            measure(m.decode_attention_cost(
                                LayerKind::Decoder,
                                b as usize,
                                c as usize,
                                0,
                            ))
                        })
                        .collect()
                })
                .collect(),
        )?;
        let dec_cross = if m.kind() == ModelKind::EncoderDecoder {
            let da = m.d_attn() as f64;
            let dt = m.dtype_bytes() as f64;
            Some(Grid2D::new(
                batches.to_vec(),
                seqs.to_vec(),
                batches
                    .iter()
                    .map(|&b| {
                        seqs.iter()
                            .map(|&s_in| {
                                measure(KernelCost {
                                    flops: 4.0 * b * s_in * da,
                                    bytes: 2.0 * b * s_in * da * dt,
                                })
                            })
                            .collect()
                    })
                    .collect(),
            )?)
        } else {
            None
        };
        let dec_rest = Grid1D::new(
            batches.to_vec(),
            batches
                .iter()
                .map(|&b| {
                    let base = m.decode_rest_cost(b as usize);
                    let cross = m.cross_projection_cost(LayerKind::Decoder, b as usize);
                    measure(base.and(cross))
                })
                .collect(),
        )?;
        let dec_sync = Grid1D::new(
            batches.to_vec(),
            batches
                .iter()
                .map(|&b| (link.allreduce_time(Bytes::new(b * d_bytes), tp) * 3.0).as_secs())
                .collect(),
        )?;

        Ok(TpTables { enc_attn, enc_rest, enc_sync, dec_attn, dec_cross, dec_rest, dec_sync })
    }
}

/// Log2-spaced axis `1, 2, 4, …` up to and including (a point at) `max`.
fn log2_axis(max: usize) -> Vec<f64> {
    let mut xs = Vec::new();
    let mut v = 1usize;
    while v < max {
        xs.push(v as f64);
        v *= 2;
    }
    xs.push(max as f64);
    xs
}

/// A concurrency-safe cache of profiles keyed by (model, cluster, options),
/// mirroring the paper's once-per-deployment profiling step. Benchmarks and
/// the scheduler's parallel search share profiles through this cache.
#[derive(Debug, Default)]
pub struct ProfileCache {
    // xlint::allow(D3, single coarse lock around a BTreeMap; callers never hold it across profiling work, so results are order-independent)
    entries: Mutex<BTreeMap<(String, String), Arc<LayerProfile>>>,
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached profile for `(model, cluster)`, running the sweep
    /// on a miss.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors from [`Profiler::run`].
    pub fn get_or_profile(
        &self,
        model: &ModelConfig,
        cluster: &ClusterSpec,
        opts: &ProfileOptions,
    ) -> Result<Arc<LayerProfile>, ProfileError> {
        let key =
            (model.name().to_string(), format!("{}/{}gpus", cluster.name(), cluster.total_gpus()));
        if let Some(hit) = self.entries.lock().get(&key) {
            return Ok(Arc::clone(hit));
        }
        let profile = Arc::new(Profiler::new(model.clone(), cluster.clone()).run(opts)?);
        self.entries.lock().insert(key, Arc::clone(&profile));
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(model: ModelConfig, gpus: usize) -> LayerProfile {
        let cluster = ClusterSpec::a40_cluster().subcluster(gpus).expect("fits");
        Profiler::new(model, cluster).run(&ProfileOptions::default()).expect("profiling succeeds")
    }

    #[test]
    fn log2_axis_covers_range() {
        assert_eq!(log2_axis(8), vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(log2_axis(10), vec![1.0, 2.0, 4.0, 8.0, 10.0]);
        assert_eq!(log2_axis(1), vec![1.0]);
    }

    #[test]
    fn tp_degrees_divide_heads_and_fit_node() {
        let p = Profiler::new(ModelConfig::opt_13b(), ClusterSpec::a40_cluster());
        assert_eq!(p.tp_degrees(), vec![1, 2, 4, 8]);
        let four = Profiler::new(
            ModelConfig::opt_13b(),
            ClusterSpec::a40_cluster().subcluster(4).expect("fits"),
        );
        assert_eq!(four.tp_degrees(), vec![1, 2, 4]);
    }

    #[test]
    fn encode_time_grows_with_batch_and_seq() {
        let p = profile(ModelConfig::opt_13b(), 4);
        let t1 = p.encode_layer_time(4.0, 128.0, 1).expect("profiled");
        let t2 = p.encode_layer_time(8.0, 128.0, 1).expect("profiled");
        let t3 = p.encode_layer_time(8.0, 256.0, 1).expect("profiled");
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn tensor_parallelism_speeds_up_large_kernels() {
        let p = profile(ModelConfig::gpt3_39b(), 8);
        let t1 = p.encode_layer_time(32.0, 256.0, 1).expect("profiled");
        let t4 = p.encode_layer_time(32.0, 256.0, 4).expect("profiled");
        assert!(t4 < t1, "tp=4 {t4} should beat tp=1 {t1} on a big encode");
    }

    #[test]
    fn tensor_parallelism_is_not_a_free_lunch() {
        // TP=8 legitimately cuts batch-1 decode latency (weight streaming is
        // split 8 ways), but aggregate GPU-time must go *up*: sync overhead
        // and lost efficiency make 8 x t8 clearly exceed t1. This is the
        // latency/throughput trade the paper's partial-TP variable exposes.
        let p = profile(ModelConfig::opt_13b(), 8);
        let t1 = p.decode_layer_time(1.0, 64.0, 0.0, 1).expect("profiled");
        let t8 = p.decode_layer_time(1.0, 64.0, 0.0, 8).expect("profiled");
        assert!(t8 < t1, "tp=8 should reduce single-iteration latency");
        assert!(t8 * 8.0 > t1 * 1.2, "tp=8 should cost aggregate efficiency");
    }

    #[test]
    fn decode_time_grows_with_context() {
        let p = profile(ModelConfig::opt_13b(), 4);
        let short = p.decode_layer_time(32.0, 64.0, 0.0, 1).expect("profiled");
        let long = p.decode_layer_time(32.0, 1024.0, 0.0, 1).expect("profiled");
        assert!(long > short);
    }

    #[test]
    fn unprofiled_degree_is_an_error() {
        let p = profile(ModelConfig::opt_13b(), 4);
        let err = p.decode_layer_time(8.0, 64.0, 0.0, 3).expect_err("3 does not divide 40 evenly");
        assert!(matches!(err, ProfileError::UnprofiledTpDegree { requested: 3, .. }));
    }

    #[test]
    fn t5_profile_has_cross_attention() {
        let p = profile(ModelConfig::t5_11b(), 8);
        let no_cross = p.decode_layer_time(16.0, 32.0, 0.0, 1).expect("profiled");
        let with_cross = p.decode_layer_time(16.0, 32.0, 512.0, 1).expect("profiled");
        assert!(with_cross > no_cross);
    }

    #[test]
    fn handoff_inter_node_is_slower() {
        let p = profile(ModelConfig::gpt3_39b(), 16);
        assert!(p.handoff_time(4096.0, false) > p.handoff_time(4096.0, true));
    }

    #[test]
    fn kv_transfer_scales_with_tokens_and_layers() {
        let p = profile(ModelConfig::opt_13b(), 4);
        let t = p.kv_transfer_time(1000.0, 40);
        assert!((p.kv_transfer_time(2000.0, 40) - t * 2.0).as_secs().abs() < 1e-12);
        assert!((p.kv_transfer_time(1000.0, 80) - t * 2.0).as_secs().abs() < 1e-12);
    }

    #[test]
    fn profile_round_trips_through_serde() {
        let p = profile(ModelConfig::opt_13b(), 4);
        let json = serde_json::to_string(&p).expect("serializes");
        let back: LayerProfile = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(p, back);
    }

    #[test]
    fn cache_returns_same_instance() {
        let cache = ProfileCache::new();
        let model = ModelConfig::opt_13b();
        let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
        let a =
            cache.get_or_profile(&model, &cluster, &ProfileOptions::default()).expect("profiles");
        let b = cache.get_or_profile(&model, &cluster, &ProfileOptions::default()).expect("cached");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn degenerate_options_are_rejected() {
        let p = Profiler::new(ModelConfig::opt_13b(), ClusterSpec::a40_cluster());
        let bad = ProfileOptions { max_batch: 0, ..ProfileOptions::default() };
        assert!(p.run(&bad).is_err());
    }
}
