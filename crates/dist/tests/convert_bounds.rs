//! Boundary behaviour of the checked conversion helpers.
//!
//! The unit layer (`exegpt-units`) keeps *dimensions* honest; these tests
//! keep the *representations* honest at the edges the newtypes pass
//! through: the 2^53 exactness frontier of `f64`, `usize` narrowing, and
//! the IEEE oddities (`-0.0`, exact integers) that `ceil`/`trunc` must
//! handle without changing value.

use exegpt_dist::convert::{
    ceil_u64, ceil_usize, lossless_f64, narrow_usize, round_usize, trunc_u64, trunc_usize,
    widen_u64, MAX_EXACT_F64_INT,
};
use proptest::prelude::*;

#[test]
fn round_trip_is_exact_up_to_2_53() {
    // The frontier itself is representable: 2^53 round-trips exactly ...
    assert_eq!(lossless_f64(MAX_EXACT_F64_INT), 9_007_199_254_740_992.0);
    assert_eq!(trunc_u64(lossless_f64(MAX_EXACT_F64_INT)), MAX_EXACT_F64_INT);
    // ... and the last few integers below it do too.
    for delta in 1..=4u64 {
        let v = MAX_EXACT_F64_INT - delta;
        assert_eq!(trunc_u64(lossless_f64(v)), v, "2^53 - {delta} must round-trip");
    }
    // Just above the frontier f64 is even-only: 2^53 + 1 rounds to 2^53.
    assert_eq!((MAX_EXACT_F64_INT + 1) as f64, MAX_EXACT_F64_INT as f64);
}

#[test]
fn narrow_usize_is_identity_at_the_edges_that_fit() {
    assert_eq!(narrow_usize(0), 0);
    assert_eq!(narrow_usize(1), 1);
    assert_eq!(narrow_usize(u64::from(u32::MAX)), u32::MAX as usize);
    // On 64-bit targets the full u64 range fits; the helper must not
    // saturate values that are representable.
    if usize::BITS == 64 {
        assert_eq!(narrow_usize(u64::MAX), usize::MAX);
        assert_eq!(narrow_usize(u64::MAX - 1), usize::MAX - 1);
    }
}

#[test]
fn ceil_and_trunc_preserve_exact_integers() {
    for v in [0u64, 1, 7, 4096, 1 << 32, MAX_EXACT_F64_INT] {
        let x = lossless_f64(v.min(MAX_EXACT_F64_INT));
        assert_eq!(ceil_u64(x), trunc_u64(x), "ceil == trunc on the exact integer {x}");
    }
    assert_eq!(ceil_usize(5.0), 5);
    assert_eq!(trunc_usize(5.0), 5);
    assert_eq!(round_usize(5.0), 5);
}

#[test]
fn negative_zero_is_zero_not_a_range_error() {
    // IEEE: -0.0 >= 0.0, so the non-negativity contract admits it and
    // every helper must map it to integer 0.
    assert_eq!(trunc_usize(-0.0), 0);
    assert_eq!(trunc_u64(-0.0), 0);
    assert_eq!(ceil_usize(-0.0), 0);
    assert_eq!(ceil_u64(-0.0), 0);
    assert_eq!(round_usize(-0.0), 0);
}

#[test]
fn ceil_lands_on_the_next_integer_from_just_below() {
    // The largest f64 strictly below 1.0 must still ceil to 1.
    let just_below_one = 1.0f64.next_down();
    assert_eq!(ceil_usize(just_below_one), 1);
    assert_eq!(ceil_u64(just_below_one), 1);
    // And from just above, to 2.
    assert_eq!(ceil_usize(1.0f64.next_up()), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Widening then narrowing is the identity for every in-range count.
    #[test]
    fn widen_narrow_round_trips(x in 0usize..usize::MAX) {
        prop_assert_eq!(narrow_usize(widen_u64(x)), x);
    }

    /// f64 round-trips are exact everywhere below the 2^53 frontier.
    #[test]
    fn lossless_round_trips_below_frontier(x in 0u64..=MAX_EXACT_F64_INT) {
        prop_assert_eq!(trunc_u64(lossless_f64(x)), x);
    }

    /// Ordering of the integer projections: trunc <= round <= ceil, and
    /// they differ by at most one.
    #[test]
    fn trunc_round_ceil_are_ordered(x in 0.0f64..1e15) {
        let (t, r, c) = (trunc_u64(x), round_usize(x) as u64, ceil_u64(x));
        prop_assert!(t <= r && r <= c, "trunc {t} <= round {r} <= ceil {c} for {x}");
        prop_assert!(c - t <= 1, "ceil and trunc differ by at most 1 for {x}");
    }
}
