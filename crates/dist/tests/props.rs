//! Property-based invariants of the distribution substrate.

use exegpt_dist::{CompletionDist, LengthDist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every constructible truncated normal is a proper distribution.
    #[test]
    fn truncated_normal_pmf_sums_to_one(
        mean in 1.0f64..1000.0,
        std in 0.0f64..500.0,
        max_len in 1usize..2048,
    ) {
        let d = LengthDist::truncated_normal(mean, std, max_len).expect("valid parameters");
        let total: f64 = (1..=max_len).map(|l| d.pmf(l)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "pmf sums to {total}");
        prop_assert!(d.pmf(0) == 0.0 && d.pmf(max_len + 1) == 0.0);
    }

    /// The CDF is monotone and the quantile is its generalized inverse.
    #[test]
    fn quantile_inverts_cdf(
        mean in 1.0f64..500.0,
        std in 0.1f64..200.0,
        max_len in 2usize..1024,
        p in 0.0f64..1.0,
    ) {
        let d = LengthDist::truncated_normal(mean, std, max_len).expect("valid parameters");
        let q = d.quantile(p);
        prop_assert!(q >= 1 && q <= max_len);
        prop_assert!(d.cdf(q) >= p - 1e-12);
        if q > 1 {
            prop_assert!(d.cdf(q - 1) < p + 1e-12);
        }
        // CDF monotone along the support.
        let mut prev = 0.0;
        for l in (1..=max_len).step_by((max_len / 16).max(1)) {
            let c = d.cdf(l);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    /// Empirical distributions reproduce their sample mean exactly.
    #[test]
    fn empirical_mean_matches_samples(samples in prop::collection::vec(1usize..512, 1..200)) {
        let d = LengthDist::empirical(&samples).expect("non-empty");
        let mean: f64 = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((d.mean() - mean).abs() < 1e-9);
        prop_assert_eq!(d.max_len(), *samples.iter().max().expect("non-empty"));
    }

    /// P_D(U) is a sub-distribution whose mass equals the per-phase
    /// completion fraction, for any N_D and output distribution.
    #[test]
    fn completion_dist_is_valid(
        mean in 1.0f64..300.0,
        std in 0.1f64..150.0,
        max_len in 2usize..512,
        n_d in 1usize..256,
    ) {
        let out = LengthDist::truncated_normal(mean, std, max_len).expect("valid parameters");
        let c = CompletionDist::new(&out, n_d).expect("valid n_d");
        let total: f64 = (1..=n_d).map(|u| c.prob(u)).sum();
        prop_assert!((-1e-12..=1.0 + 1e-9).contains(&total), "mass {total}");
        prop_assert!((total - c.completion_fraction()).abs() < 1e-12);
        // Expected active pool is non-increasing within a phase.
        let mut prev = f64::INFINITY;
        for u in 1..=n_d.min(64) {
            let a = c.expected_active(1000, u);
            prop_assert!(a <= prev + 1e-9);
            prev = a;
        }
    }

    /// The steady-state pool sizing round-trips: expected completions of
    /// the derived pool refill the encoder batch.
    #[test]
    fn decode_batch_round_trips(
        mean in 2.0f64..300.0,
        std in 0.1f64..100.0,
        b_e in 1usize..128,
    ) {
        let max_len = (mean * 4.0) as usize + 8;
        let out = LengthDist::truncated_normal(mean, std, max_len).expect("valid parameters");
        let n_d = (mean / 2.0).ceil() as usize;
        let c = CompletionDist::new(&out, n_d).expect("valid n_d");
        if let Some(b_d) = c.decode_batch_for(b_e) {
            let refills = c.expected_completions(b_d);
            // Rounding b_d to whole queries perturbs the refill by at most
            // one query's worth of completion mass.
            prop_assert!(
                (refills - b_e as f64).abs() <= 1.0,
                "refills {refills} vs b_e {b_e}"
            );
        }
    }

    /// Sampling always lands in the support.
    #[test]
    fn samples_stay_in_support(
        mean in 1.0f64..200.0,
        std in 0.0f64..100.0,
        max_len in 1usize..512,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let d = LengthDist::truncated_normal(mean, std, max_len).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let s = d.sample(&mut rng);
            prop_assert!(s >= 1 && s <= max_len);
        }
    }
}
