//! Sample statistics used when deriving distributions from datasets.
//!
//! The paper reports Pearson correlation between input and output lengths
//! for each dataset (§7.1) and 99th-percentile execution-time ranges
//! (Table 7); these helpers compute both. [`Summary`] is the shared
//! latency-summary shape consumed by the runner's reports and the serving
//! loop's metrics histograms.

use serde::{Deserialize, Serialize};

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// elements, or either sample has zero variance.
///
/// # Example
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// let r = exegpt_dist::stats::pearson(&x, &y).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// The `p`-th percentile (nearest-rank) of a sample; `p` in `[0, 1]`.
///
/// Returns `None` for an empty sample.
///
/// # Example
///
/// ```
/// let xs = [5.0, 1.0, 3.0];
/// assert_eq!(exegpt_dist::stats::percentile(&xs, 0.5), Some(3.0));
/// ```
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 1.0);
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Mean of a sample (`None` if empty).
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation with Bessel's correction (`None` if `< 2`
/// elements).
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// A one-pass latency/sample summary: count, mean, and the percentiles
/// every latency report in this workspace quotes.
///
/// Built via [`summary`]; shared by `exegpt-runner`'s [`RunReport`]s and
/// `exegpt-serve`'s metrics histograms so the two never disagree on
/// percentile semantics (nearest-rank, as [`percentile`]).
///
/// [`RunReport`]: https://docs.rs/exegpt-runner
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarizes a sample into the shared [`Summary`] shape (`None` if empty).
///
/// # Example
///
/// ```
/// let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
/// let s = exegpt_dist::stats::summary(&xs).unwrap();
/// assert_eq!(s.count, 100);
/// assert_eq!(s.p50, 50.0);
/// assert_eq!(s.p99, 99.0);
/// assert_eq!(s.max, 100.0);
/// ```
pub fn summary(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pick = |p: f64| {
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    };
    let max = *sorted.last()?;
    Some(Summary {
        count: sorted.len(),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: pick(0.50),
        p95: pick(0.95),
        p99: pick(0.99),
        max,
    })
}

/// The symmetric 99th-percentile half-range around the mean,
/// `(p99 - p01) / 2`, as reported in Table 7 of the paper.
///
/// Returns `None` for an empty sample.
pub fn pctl99_half_range(xs: &[f64]) -> Option<f64> {
    let hi = percentile(xs, 0.99)?;
    let lo = percentile(xs, 0.01)?;
    Some((hi - lo) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_detects_anticorrelation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_edge_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 0.25), Some(10.0));
        assert_eq!(percentile(&xs, 0.26), Some(20.0));
        assert_eq!(percentile(&xs, 1.0), Some(40.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn std_dev_bessel() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = std_dev(&xs).unwrap();
        assert!((s - 2.138_089_935).abs() < 1e-6);
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn summary_matches_individual_helpers() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 499) as f64).collect();
        let s = summary(&xs).unwrap();
        assert_eq!(s.count, xs.len());
        assert_eq!(Some(s.mean), mean(&xs));
        assert_eq!(Some(s.p50), percentile(&xs, 0.50));
        assert_eq!(Some(s.p95), percentile(&xs, 0.95));
        assert_eq!(Some(s.p99), percentile(&xs, 0.99));
        assert_eq!(s.max, xs.iter().copied().fold(f64::MIN, f64::max));
        assert_eq!(summary(&[]), None);
    }

    #[test]
    fn half_range_is_symmetric_measure() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let r = pctl99_half_range(&xs).unwrap();
        assert!((r - 49.5).abs() < 1.5);
    }
}
