//! Sequence-length distributions and completion analysis for ExeGPT.
//!
//! ExeGPT's scheduler is *distribution-aware* (paper §6): it consumes the
//! probability distributions `P_E(S)` and `P_D(S)` of input and output
//! sequence lengths, observed from an NLP service over time. This crate
//! provides:
//!
//! * [`LengthDist`] — a discrete distribution over sequence lengths
//!   `1..=max`, constructible as a truncated normal (the paper's fit for
//!   public NLP datasets), a skew normal (used for the distribution-shift
//!   study, Figure 11), a point mass, or an empirical distribution from
//!   observed samples (real-world datasets, Figure 10).
//! * [`CompletionDist`] — the paper's `P_D(U)` analysis: the probability
//!   that a query completes decoding at iteration `U` after the most recent
//!   encoding phase, given an encoding frequency of one encode every `N_D`
//!   decode iterations. This is what keeps RRA's batch sizes consistent.
//! * [`stats`] — correlation and percentile helpers used when deriving
//!   distributions from datasets.
//! * [`convert`] — checked numeric conversions required (by xlint rule N1,
//!   DESIGN.md §6) throughout the cost-model and scheduler arithmetic.
//!
//! # Example
//!
//! ```
//! use exegpt_dist::LengthDist;
//!
//! // Paper Table 3, task T (translation) output lengths.
//! let out = LengthDist::truncated_normal(128.0, 68.0, 320)?;
//! assert!((out.mean() - 128.0).abs() < 8.0);
//! assert_eq!(out.quantile(1.0), 320);
//! # Ok::<(), exegpt_dist::DistError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod completion;
pub mod convert;
mod error;
pub mod fit;
mod length;
mod math;
pub mod stats;

pub use completion::CompletionDist;
pub use error::DistError;
pub use length::LengthDist;
