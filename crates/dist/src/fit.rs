//! Fitting length-distribution families to observed samples.
//!
//! The paper selected its task model by comparing candidate families against
//! public NLP datasets and found the truncated normal most accurate (§7.1).
//! This module reproduces that selection step: fit each family by moment
//! matching and rank them by log-likelihood on the sample.

use serde::{Deserialize, Serialize};

use crate::error::DistError;
use crate::length::LengthDist;
use crate::stats;

/// A candidate distribution family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Normal truncated to the support (the paper's choice).
    TruncatedNormal,
    /// Log-normal.
    LogNormal,
    /// Skew normal (moment-matched skewness, clamped to the attainable
    /// range).
    SkewNormal,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::TruncatedNormal => write!(f, "truncated-normal"),
            Family::LogNormal => write!(f, "log-normal"),
            Family::SkewNormal => write!(f, "skew-normal"),
        }
    }
}

/// Extra shape parameters of a family beyond location/scale, used as a
/// parsimony penalty when ranking (a skew normal with near-zero skewness
/// should not beat the truncated normal it degenerates to).
fn complexity(family: Family) -> f64 {
    match family {
        Family::TruncatedNormal | Family::LogNormal => 0.0,
        Family::SkewNormal => 1.0,
    }
}

/// One family's fit to a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    /// The family.
    pub family: Family,
    /// The fitted distribution.
    pub dist: LengthDist,
    /// Mean log-likelihood per sample.
    pub log_likelihood: f64,
}

/// Sample skewness (Fisher-Pearson), 0 for degenerate samples.
fn sample_skewness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 3.0 {
        return 0.0;
    }
    let m = xs.iter().sum::<f64>() / n;
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    if m2 <= 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

fn mean_log_likelihood(dist: &LengthDist, samples: &[usize]) -> f64 {
    let floor = 1e-12f64;
    samples.iter().map(|&s| dist.pmf(s).max(floor).ln()).sum::<f64>() / samples.len() as f64
}

/// Fits every family to the sample and returns them ranked best-first by
/// log-likelihood.
///
/// # Errors
///
/// Returns [`DistError::EmptySamples`] if the sample is empty, or a
/// parameter error if its moments are degenerate for every family.
pub fn fit_all(samples: &[usize]) -> Result<Vec<Fit>, DistError> {
    if samples.is_empty() {
        return Err(DistError::EmptySamples);
    }
    let xs: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
    let mean = stats::mean(&xs).ok_or(DistError::EmptySamples)?;
    let std = stats::std_dev(&xs).unwrap_or(0.0);
    let max_len = samples.iter().copied().max().unwrap_or(1).max(1) * 2;
    let skew = sample_skewness(&xs).clamp(-0.95, 0.95);

    let mut fits = Vec::new();
    let candidates: [(Family, Result<LengthDist, DistError>); 3] = [
        (Family::TruncatedNormal, LengthDist::truncated_normal(mean, std, max_len)),
        (Family::LogNormal, LengthDist::log_normal(mean, std, max_len)),
        (Family::SkewNormal, LengthDist::skew_normal(mean, std, skew, max_len)),
    ];
    for (family, dist) in candidates {
        if let Ok(dist) = dist {
            let log_likelihood = mean_log_likelihood(&dist, samples);
            fits.push(Fit { family, dist, log_likelihood });
        }
    }
    if fits.is_empty() {
        return Err(DistError::InvalidParameter {
            what: "samples",
            why: "no family could be fitted to the sample moments",
        });
    }
    // Rank by penalized likelihood (an AIC-style parsimony term of 0.005
    // nats per extra shape parameter breaks near-ties toward the simpler
    // family), but report raw likelihoods.
    fits.sort_by(|a, b| {
        let ka = a.log_likelihood - 0.005 * complexity(a.family);
        let kb = b.log_likelihood - 0.005 * complexity(b.family);
        kb.total_cmp(&ka)
    });
    Ok(fits)
}

/// The best-fitting family for a sample (convenience over [`fit_all`]).
///
/// # Errors
///
/// See [`fit_all`].
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use exegpt_dist::{fit, LengthDist};
///
/// // Data genuinely drawn from a truncated normal…
/// let truth = LengthDist::truncated_normal(128.0, 40.0, 512)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let samples: Vec<usize> = (0..4000).map(|_| truth.sample(&mut rng)).collect();
/// // …is recognized as such (the paper's §7.1 finding for NLP datasets).
/// let best = fit::best_fit(&samples)?;
/// assert_eq!(best.family, fit::Family::TruncatedNormal);
/// # Ok::<(), exegpt_dist::DistError>(())
/// ```
pub fn best_fit(samples: &[usize]) -> Result<Fit, DistError> {
    Ok(fit_all(samples)?.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(d: &LengthDist, n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_the_generating_family() {
        let tn = LengthDist::truncated_normal(200.0, 60.0, 800).expect("valid");
        let best = best_fit(&draw(&tn, 5000, 3)).expect("fits");
        assert_eq!(best.family, Family::TruncatedNormal);

        let ln = LengthDist::log_normal(100.0, 120.0, 2000).expect("valid");
        let best = best_fit(&draw(&ln, 5000, 4)).expect("fits");
        assert_eq!(best.family, Family::LogNormal, "heavy-tailed data prefers log-normal");
    }

    #[test]
    fn ranks_all_families() {
        let tn = LengthDist::truncated_normal(64.0, 20.0, 256).expect("valid");
        let fits = fit_all(&draw(&tn, 2000, 9)).expect("fits");
        assert!(fits.len() >= 2);
        // Ordered by penalized likelihood: raw likelihoods may only cross
        // within the parsimony margin.
        for w in fits.windows(2) {
            assert!(w[0].log_likelihood >= w[1].log_likelihood - 0.005);
        }
    }

    #[test]
    fn empty_samples_are_rejected() {
        assert!(matches!(fit_all(&[]), Err(DistError::EmptySamples)));
    }

    #[test]
    fn log_normal_moments_match() {
        let d = LengthDist::log_normal(100.0, 50.0, 2000).expect("valid");
        assert!((d.mean() - 100.0).abs() < 2.0, "mean {}", d.mean());
        assert!((d.std() - 50.0).abs() < 3.0, "std {}", d.std());
    }
}
