//! Error types for the distribution crate.

/// Errors produced when constructing distributions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// A distribution parameter was invalid.
    InvalidParameter {
        /// Which parameter was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: &'static str,
    },
    /// An empirical distribution was built from no samples.
    EmptySamples,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidParameter { what, why } => {
                write!(f, "invalid distribution parameter `{what}`: {why}")
            }
            DistError::EmptySamples => {
                write!(f, "empirical distribution needs at least one sample")
            }
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = DistError::InvalidParameter { what: "std", why: "must be non-negative" };
        assert!(e.to_string().contains("std"));
    }
}
