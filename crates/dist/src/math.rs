//! Scalar numeric helpers: error function, normal and skew-normal densities.

use std::f64::consts::PI;

/// Error function, Abramowitz & Stegun 7.1.26 (max abs error ~1.5e-7).
pub(crate) fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal probability density.
pub(crate) fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution.
pub(crate) fn cap_phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Skew-normal density with location `xi`, scale `omega`, shape `alpha`.
pub(crate) fn skew_normal_pdf(x: f64, xi: f64, omega: f64, alpha: f64) -> f64 {
    let z = (x - xi) / omega;
    2.0 / omega * phi(z) * cap_phi(alpha * z)
}

/// Solves the skew-normal shape parameters `(xi, omega, alpha)` that realize
/// the given mean, standard deviation and skewness.
///
/// Uses the standard moment relations with `delta = alpha / sqrt(1+alpha^2)`:
/// `mean = xi + omega*delta*sqrt(2/pi)`, `var = omega^2 (1 - 2 delta^2/pi)`,
/// `skew = (4-pi)/2 * (delta*sqrt(2/pi))^3 / (1 - 2 delta^2/pi)^(3/2)`.
/// `delta` is found by bisection; skewness must lie in the attainable range
/// of the family, approximately (-0.9952, 0.9952).
pub(crate) fn skew_normal_from_moments(
    mean: f64,
    std: f64,
    skewness: f64,
) -> Option<(f64, f64, f64)> {
    const MAX_ABS_SKEW: f64 = 0.9952;
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
    if !(std > 0.0) || !skewness.is_finite() || skewness.abs() >= MAX_ABS_SKEW {
        return None;
    }
    let target = skewness.abs();
    let skew_of = |delta: f64| -> f64 {
        let m = delta * (2.0 / PI).sqrt();
        (4.0 - PI) / 2.0 * m.powi(3) / (1.0 - 2.0 * delta * delta / PI).powf(1.5)
    };
    let (mut lo, mut hi) = (0.0_f64, 0.999_999);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if skew_of(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let delta = 0.5 * (lo + hi) * skewness.signum();
    let omega = std / (1.0 - 2.0 * delta * delta / PI).sqrt();
    let xi = mean - omega * delta * (2.0 / PI).sqrt();
    let alpha = delta / (1.0 - delta * delta).sqrt();
    Some((xi, omega, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn cap_phi_is_a_cdf() {
        assert!((cap_phi(0.0) - 0.5).abs() < 1e-9);
        assert!(cap_phi(-8.0) < 1e-6);
        assert!(cap_phi(8.0) > 1.0 - 1e-6);
    }

    #[test]
    fn zero_skew_reduces_to_normal() {
        let (xi, omega, alpha) = skew_normal_from_moments(10.0, 2.0, 0.0).expect("attainable");
        assert!(alpha.abs() < 1e-3);
        assert!((xi - 10.0).abs() < 1e-2);
        assert!((omega - 2.0).abs() < 1e-2);
    }

    #[test]
    fn moments_round_trip_numerically() {
        // Integrate the recovered density and check mean/std/skewness.
        let (xi, omega, alpha) = skew_normal_from_moments(100.0, 30.0, 0.4).expect("attainable");
        let (mut m0, mut m1, mut m2, mut m3) = (0.0, 0.0, 0.0, 0.0);
        let mut x = xi - 10.0 * omega;
        let dx = omega / 400.0;
        while x < xi + 10.0 * omega {
            let p = skew_normal_pdf(x, xi, omega, alpha) * dx;
            m0 += p;
            m1 += p * x;
            x += dx;
        }
        let mean = m1 / m0;
        x = xi - 10.0 * omega;
        while x < xi + 10.0 * omega {
            let p = skew_normal_pdf(x, xi, omega, alpha) * dx;
            m2 += p * (x - mean).powi(2);
            m3 += p * (x - mean).powi(3);
            x += dx;
        }
        let var = m2 / m0;
        let skew = m3 / m0 / var.powf(1.5);
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 30.0).abs() < 0.5, "std {}", var.sqrt());
        assert!((skew - 0.4).abs() < 0.02, "skew {skew}");
    }

    #[test]
    fn unattainable_skew_is_rejected() {
        assert!(skew_normal_from_moments(10.0, 1.0, 1.2).is_none());
        assert!(skew_normal_from_moments(10.0, 0.0, 0.1).is_none());
    }
}
