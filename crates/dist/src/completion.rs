//! The paper's completion-probability analysis `P_D(U)` (§6).
//!
//! Under RRA scheduling, encoding runs once every `N_D` decoding iterations.
//! Queries in a decoding batch therefore come from *different* encoding
//! phases, and `P_D(U)` — the probability that a query completes at the
//! `U`-th iteration after the most recent encoding phase — is what lets the
//! scheduler size encoder batches so the pipeline stays in steady state:
//! `B_E = B_D · Σ_U P_D(U)`.

use serde::{Deserialize, Serialize};

use crate::error::DistError;
use crate::length::LengthDist;

/// Distribution of the completion iteration `U ∈ 1..=N_D` within a decoding
/// phase, derived from an output-length distribution.
///
/// # Example
///
/// ```
/// use exegpt_dist::{CompletionDist, LengthDist};
///
/// let out = LengthDist::truncated_normal(32.0, 13.0, 80)?;
/// let c = CompletionDist::new(&out, 16)?;
/// // With N_D=16 and mean output 32, roughly half the batch completes
/// // per decoding phase.
/// assert!((c.completion_fraction() - 0.5).abs() < 0.15);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletionDist {
    /// `probs[u-1] = P_D(U = u)`.
    probs: Vec<f64>,
    n_d: usize,
}

impl CompletionDist {
    /// Computes `P_D(U)` for encoding frequency `N_D` from the output-length
    /// distribution `P_D(S)`, following the paper's conditional form:
    ///
    /// * `S <= N_D`: the query (admitted at the start of some phase)
    ///   completes at `U = S` with probability 1.
    /// * `S > N_D`: the query spans `ceil(S / N_D)` phases; seen from a
    ///   random phase, it completes at `U = 1 + ((S - 1) mod N_D)` with
    ///   probability `1 / ceil(S / N_D)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `n_d == 0`.
    pub fn new(output: &LengthDist, n_d: usize) -> Result<Self, DistError> {
        if n_d == 0 {
            return Err(DistError::InvalidParameter {
                what: "n_d",
                why: "encoding frequency must be at least 1",
            });
        }
        let mut probs = vec![0.0; n_d];
        for (s, p_s) in output.iter() {
            if s <= n_d {
                probs[s - 1] += p_s;
            } else {
                let phases = s.div_ceil(n_d) as f64;
                let u = 1 + (s - 1) % n_d;
                probs[u - 1] += p_s / phases;
            }
        }
        Ok(Self { probs, n_d })
    }

    /// The encoding frequency `N_D` this distribution was computed for.
    pub fn n_d(&self) -> usize {
        self.n_d
    }

    /// `P_D(U = u)`; zero outside `1..=N_D`.
    pub fn prob(&self, u: usize) -> f64 {
        if u == 0 || u > self.n_d {
            0.0
        } else {
            self.probs[u - 1]
        }
    }

    /// `Σ_U P_D(U)`: the expected fraction of a decoding batch that
    /// completes during one decoding phase.
    ///
    /// The paper sets `B_E = B_D · completion_fraction()` so that encoding
    /// exactly refills the completed slots.
    pub fn completion_fraction(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Steady-state decoding batch size for a given encoder batch size:
    /// `B_D = B_E / Σ_U P_D(U)` (§6), rounded to the nearest whole query.
    ///
    /// Returns `None` if the completion fraction is zero (no query can ever
    /// complete within the support, e.g. `N_D` longer than any output).
    pub fn decode_batch_for(&self, b_e: usize) -> Option<usize> {
        let f = self.completion_fraction();
        if f <= 0.0 {
            return None;
        }
        Some(((b_e as f64 / f).round() as usize).max(1))
    }

    /// Expected number of completions in one decoding phase for a decoding
    /// batch of `b_d` queries.
    pub fn expected_completions(&self, b_d: usize) -> f64 {
        b_d as f64 * self.completion_fraction()
    }

    /// Expected number of *active* (not yet completed) queries at the start
    /// of decode iteration `u` of a phase (`u ∈ 1..=N_D`), for a batch that
    /// starts the phase with `b_d` queries and is *not* refilled mid-phase.
    ///
    /// Used by the simulator to account for early termination shrinking the
    /// batch between encoding phases.
    pub fn expected_active(&self, b_d: usize, u: usize) -> f64 {
        b_d as f64 * self.survival(u)
    }

    /// Survival factor at iteration `u`: the expected fraction of the batch
    /// still active at the start of decode iteration `u` of a phase,
    /// `1 - Σ_{v<u} P_D(v)` (so `expected_active = b_d · survival`).
    pub fn survival(&self, u: usize) -> f64 {
        let completed_before: f64 = (1..u).map(|v| self.prob(v)).sum();
        1.0 - completed_before
    }

    /// The whole survival series `[survival(1), ..., survival(N_D)]` in one
    /// O(N_D) pass — the per-phase reuse hook for simulator evaluation
    /// caches, which would otherwise pay O(N_D²) calling
    /// [`expected_active`](Self::expected_active) per iteration.
    pub fn survival_series(&self) -> Vec<f64> {
        let mut series = Vec::with_capacity(self.n_d);
        let mut completed_before = 0.0;
        for u in 1..=self.n_d {
            series.push(1.0 - completed_before);
            completed_before += self.prob(u);
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_nd() {
        let out = LengthDist::point_mass(4, 8).expect("valid");
        assert!(CompletionDist::new(&out, 0).is_err());
    }

    #[test]
    fn point_mass_shorter_than_nd_completes_at_s() {
        let out = LengthDist::point_mass(4, 8).expect("valid");
        let c = CompletionDist::new(&out, 8).expect("valid");
        assert_eq!(c.prob(4), 1.0);
        assert!((c.completion_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_mass_longer_than_nd_spreads_over_phases() {
        // S = 10, N_D = 4 -> ceil(10/4) = 3 phases, completes at U = 1 + 9 % 4 = 2.
        let out = LengthDist::point_mass(10, 16).expect("valid");
        let c = CompletionDist::new(&out, 4).expect("valid");
        assert!((c.prob(2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.completion_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn batch_consistency_round_trip() {
        let out = LengthDist::truncated_normal(64.0, 30.0, 160).expect("valid");
        let c = CompletionDist::new(&out, 16).expect("valid");
        let b_d = c.decode_batch_for(32).expect("completable");
        // Refilled slots per phase ~ encoder batch.
        let refills = c.expected_completions(b_d);
        assert!((refills - 32.0).abs() < 1.0, "refills {refills}");
    }

    #[test]
    fn expected_active_decreases_within_phase() {
        let out = LengthDist::truncated_normal(8.0, 4.0, 32).expect("valid");
        let c = CompletionDist::new(&out, 8).expect("valid");
        let mut prev = f64::INFINITY;
        for u in 1..=8 {
            let a = c.expected_active(100, u);
            assert!(a <= prev + 1e-9);
            prev = a;
        }
        assert_eq!(c.expected_active(100, 1), 100.0);
    }

    #[test]
    fn completion_fraction_increases_with_nd() {
        let out = LengthDist::truncated_normal(64.0, 30.0, 160).expect("valid");
        let f4 = CompletionDist::new(&out, 4).expect("valid").completion_fraction();
        let f32 = CompletionDist::new(&out, 32).expect("valid").completion_fraction();
        let f160 = CompletionDist::new(&out, 160).expect("valid").completion_fraction();
        assert!(f4 < f32);
        assert!(f32 < f160);
        assert!((f160 - 1.0).abs() < 1e-9, "N_D = max length completes everything");
    }

    #[test]
    fn probabilities_are_valid() {
        let out = LengthDist::truncated_normal(192.0, 93.0, 480).expect("valid");
        for n_d in [1, 3, 7, 64, 480] {
            let c = CompletionDist::new(&out, n_d).expect("valid");
            let total: f64 = (1..=n_d).map(|u| c.prob(u)).sum();
            assert!(total <= 1.0 + 1e-9);
            assert!((0..=n_d + 1).all(|u| c.prob(u) >= 0.0));
            assert_eq!(c.prob(0), 0.0);
            assert_eq!(c.prob(n_d + 1), 0.0);
        }
    }
}
