//! Checked numeric conversions for the cost-model/scheduler arithmetic.
//!
//! The scheduler's branch-and-bound trusts the simulator's latency and
//! throughput estimates to be *monotone*; a silently lossy integer↔float
//! conversion in the cost arithmetic can bend an estimate enough to break
//! that assumption without failing any test. The xlint rule **N1**
//! (DESIGN.md §6) therefore bans bare `as` numeric casts in the
//! `exegpt`/`exegpt-sim` crates in favor of these helpers:
//!
//! * In release builds every helper has exactly the semantics of Rust's
//!   saturating `as` cast (`NaN → 0`), so they cost nothing extra.
//! * In debug builds (and under `cargo test`) they `debug_assert!` that
//!   the conversion is exact/in-range, turning a quiet precision bug into
//!   a loud failure at the call site.
//!
//! # Example
//!
//! ```
//! use exegpt_dist::convert::{ceil_u64, lossless_f64, trunc_usize};
//!
//! assert_eq!(lossless_f64(42usize), 42.0);
//! assert_eq!(trunc_usize(3.9), 3);
//! assert_eq!(ceil_u64(3.1), 4);
//! ```

/// Largest integer magnitude an `f64` represents exactly (2^53).
pub const MAX_EXACT_F64_INT: u64 = 1 << 53;

mod sealed {
    /// Unsigned integer sources accepted by the lossless widening helpers.
    pub trait Unsigned: Copy {
        /// Widens to `u64` (exact for every accepted type).
        fn widen(self) -> u64;
    }
    impl Unsigned for u8 {
        fn widen(self) -> u64 {
            u64::from(self)
        }
    }
    impl Unsigned for u16 {
        fn widen(self) -> u64 {
            u64::from(self)
        }
    }
    impl Unsigned for u32 {
        fn widen(self) -> u64 {
            u64::from(self)
        }
    }
    impl Unsigned for u64 {
        fn widen(self) -> u64 {
            self
        }
    }
    impl Unsigned for usize {
        fn widen(self) -> u64 {
            // usize is at most 64 bits on every supported target.
            self as u64
        }
    }
}

use sealed::Unsigned;

/// Converts an unsigned integer to `f64`, asserting (in debug builds) that
/// the value is exactly representable.
#[inline]
pub fn lossless_f64<T: Unsigned>(x: T) -> f64 {
    let v = x.widen();
    debug_assert!(
        v <= MAX_EXACT_F64_INT,
        "lossless_f64: {v} exceeds 2^53 and would lose precision"
    );
    v as f64
}

/// Widens an unsigned integer to `u64` (always exact).
#[inline]
pub fn widen_u64<T: Unsigned>(x: T) -> u64 {
    x.widen()
}

/// Narrows `u64` to `usize`, asserting (in debug builds) that the value
/// fits; saturates in release builds (a no-op on 64-bit targets).
#[inline]
pub fn narrow_usize(x: u64) -> usize {
    debug_assert!(
        usize::try_from(x).is_ok(),
        "narrow_usize: {x} does not fit in usize on this target"
    );
    usize::try_from(x).unwrap_or(usize::MAX)
}

/// Truncates a finite non-negative `f64` to `usize`.
#[inline]
pub fn trunc_usize(x: f64) -> usize {
    assert_in_range(x, "trunc_usize");
    x as usize
}

/// Truncates a finite non-negative `f64` to `u64`.
#[inline]
pub fn trunc_u64(x: f64) -> u64 {
    assert_in_range(x, "trunc_u64");
    x as u64
}

/// Rounds a finite non-negative `f64` to the nearest `usize`.
#[inline]
pub fn round_usize(x: f64) -> usize {
    assert_in_range(x, "round_usize");
    x.round() as usize
}

/// Ceils a finite non-negative `f64` to `usize`.
#[inline]
pub fn ceil_usize(x: f64) -> usize {
    assert_in_range(x, "ceil_usize");
    x.ceil() as usize
}

/// Ceils a finite non-negative `f64` to `u64`.
#[inline]
pub fn ceil_u64(x: f64) -> u64 {
    assert_in_range(x, "ceil_u64");
    x.ceil() as u64
}

#[inline]
fn assert_in_range(x: f64, who: &str) {
    debug_assert!(x.is_finite(), "{who}: input {x} is not finite");
    debug_assert!(x >= 0.0, "{who}: input {x} is negative");
    // Avoid an unused warning in release builds.
    let _ = (x, who);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_round_trips_typical_counts() {
        assert_eq!(lossless_f64(0usize), 0.0);
        assert_eq!(lossless_f64(1usize << 40), (1u64 << 40) as f64);
        assert_eq!(lossless_f64(123_456u64), 123_456.0);
        assert_eq!(lossless_f64(7u32), 7.0);
    }

    #[test]
    #[should_panic(expected = "lose precision")]
    #[cfg(debug_assertions)]
    fn lossless_rejects_beyond_2_53() {
        let _ = lossless_f64(MAX_EXACT_F64_INT + 1);
    }

    #[test]
    fn truncation_and_rounding_agree_with_as() {
        assert_eq!(trunc_usize(3.999), 3);
        assert_eq!(trunc_u64(0.0), 0);
        assert_eq!(round_usize(2.5), 3);
        assert_eq!(round_usize(2.4), 2);
        assert_eq!(ceil_usize(2.0001), 3);
        assert_eq!(ceil_u64(5.0), 5);
    }

    #[test]
    fn widen_and_narrow_are_exact() {
        assert_eq!(widen_u64(17usize), 17u64);
        assert_eq!(narrow_usize(17u64), 17usize);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    #[cfg(debug_assertions)]
    fn trunc_rejects_nan() {
        let _ = trunc_usize(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    #[cfg(debug_assertions)]
    fn trunc_rejects_negative() {
        let _ = trunc_u64(-1.0);
    }
}
