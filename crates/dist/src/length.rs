//! Discrete sequence-length distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DistError;
use crate::math;

/// A discrete probability distribution over sequence lengths `1..=max_len`.
///
/// All constructors normalize to a proper distribution; internally a PMF and
/// CDF are materialized once so that lookups, quantiles and sampling are
/// `O(1)`/`O(log n)`. The paper found truncated normal the best fit for
/// public NLP datasets (§7.1) and uses skew normal for the shift study
/// (Figure 11); empirical distributions back the real-dataset evaluation
/// (Figure 10).
///
/// # Example
///
/// ```
/// use exegpt_dist::LengthDist;
///
/// let d = LengthDist::truncated_normal(32.0, 13.0, 80)?;
/// let total: f64 = (1..=80).map(|l| d.pmf(l)).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// # Ok::<(), exegpt_dist::DistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LengthDist {
    /// `pmf[i]` is the probability of length `i + 1`.
    pmf: Vec<f64>,
    /// `cdf[i]` is the probability of length `<= i + 1`.
    cdf: Vec<f64>,
    mean: f64,
    std: f64,
}

impl LengthDist {
    /// Builds a distribution from unnormalized weights for lengths
    /// `1..=weights.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `weights` is empty, has a
    /// non-finite/negative entry, or sums to zero.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, DistError> {
        if weights.is_empty() {
            return Err(DistError::InvalidParameter { what: "weights", why: "must be non-empty" });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(DistError::InvalidParameter {
                what: "weights",
                why: "must be finite and non-negative",
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistError::InvalidParameter {
                what: "weights",
                why: "must not all be zero",
            });
        }
        let pmf: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(pmf.len());
        let mut acc = 0.0;
        for p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        let mean: f64 = pmf.iter().enumerate().map(|(i, p)| (i + 1) as f64 * p).sum();
        let var: f64 =
            pmf.iter().enumerate().map(|(i, p)| ((i + 1) as f64 - mean).powi(2) * p).sum();
        Ok(Self { pmf, cdf, mean, std: var.sqrt() })
    }

    /// Truncated normal over `1..=max_len` with the given (pre-truncation)
    /// mean and standard deviation, the paper's default task model.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] for `max_len == 0`,
    /// non-positive mean or negative std.
    pub fn truncated_normal(mean: f64, std: f64, max_len: usize) -> Result<Self, DistError> {
        Self::validate_common(mean, std, max_len)?;
        if std <= 0.0 {
            return Self::point_mass(mean.round().max(1.0) as usize, max_len);
        }
        let z = |x: f64| (x - mean) / std;
        // Exact probability mass of each unit bin via CDF differences.
        let weights: Vec<f64> = (1..=max_len)
            .map(|l| {
                let lo = if l == 1 { f64::NEG_INFINITY } else { l as f64 - 0.5 };
                let hi = if l == max_len { f64::INFINITY } else { l as f64 + 0.5 };
                let c_lo =
                    if lo.is_finite() { math::cap_phi(z(lo)) } else { math::cap_phi(z(0.5)) };
                let c_hi = if hi.is_finite() { math::cap_phi(z(hi)) } else { 1.0 };
                (c_hi - c_lo).max(0.0)
            })
            .collect();
        Self::from_weights(weights)
    }

    /// Skew normal over `1..=max_len` realizing the given mean, standard
    /// deviation and skewness (attainable range roughly `|skew| < 0.995`).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if the skewness is outside the
    /// attainable range or the common parameters are invalid.
    pub fn skew_normal(
        mean: f64,
        std: f64,
        skewness: f64,
        max_len: usize,
    ) -> Result<Self, DistError> {
        Self::validate_common(mean, std, max_len)?;
        let (xi, omega, alpha) = math::skew_normal_from_moments(mean, std, skewness).ok_or(
            DistError::InvalidParameter {
                what: "skewness",
                why: "outside the attainable range of the skew-normal family",
            },
        )?;
        // Simpson's rule over each unit bin.
        let weights: Vec<f64> = (1..=max_len)
            .map(|l| {
                let a = l as f64 - 0.5;
                let b = l as f64 + 0.5;
                let m = l as f64;
                let f = |x: f64| math::skew_normal_pdf(x, xi, omega, alpha);
                (f(a) + 4.0 * f(m) + f(b)) / 6.0
            })
            .collect();
        Self::from_weights(weights)
    }

    /// Log-normal over `1..=max_len`, parameterized by the target mean and
    /// standard deviation of the *length* itself (one of the families the
    /// paper compares before settling on truncated normal, §7.1).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] for non-positive mean/std or
    /// `max_len == 0`.
    pub fn log_normal(mean: f64, std: f64, max_len: usize) -> Result<Self, DistError> {
        Self::validate_common(mean, std, max_len)?;
        if std <= 0.0 {
            return Self::point_mass(mean.round().max(1.0) as usize, max_len);
        }
        // Moment matching: sigma^2 = ln(1 + s^2/m^2), mu = ln m - sigma^2/2.
        let sigma2 = (1.0 + (std / mean).powi(2)).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        let sigma = sigma2.sqrt();
        let cdf = |x: f64| {
            if x <= 0.0 {
                0.0
            } else {
                math::cap_phi((x.ln() - mu) / sigma)
            }
        };
        let weights: Vec<f64> = (1..=max_len)
            .map(|l| {
                let lo = if l == 1 { 0.0 } else { l as f64 - 0.5 };
                let hi = if l == max_len { f64::INFINITY } else { l as f64 + 0.5 };
                let c_hi = if hi.is_finite() { cdf(hi) } else { 1.0 };
                (c_hi - cdf(lo)).max(0.0)
            })
            .collect();
        Self::from_weights(weights)
    }

    /// Degenerate distribution: every sequence has exactly `len` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `len == 0` or
    /// `len > max_len`.
    pub fn point_mass(len: usize, max_len: usize) -> Result<Self, DistError> {
        if len == 0 || len > max_len {
            return Err(DistError::InvalidParameter {
                what: "len",
                why: "point mass must satisfy 1 <= len <= max_len",
            });
        }
        let mut weights = vec![0.0; max_len];
        weights[len - 1] = 1.0;
        Self::from_weights(weights)
    }

    /// Empirical distribution from observed lengths (clamped to `>= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptySamples`] if `samples` is empty.
    pub fn empirical(samples: &[usize]) -> Result<Self, DistError> {
        if samples.is_empty() {
            return Err(DistError::EmptySamples);
        }
        let max = samples.iter().copied().max().unwrap_or(1).max(1);
        let mut weights = vec![0.0; max];
        for &s in samples {
            weights[s.max(1) - 1] += 1.0;
        }
        Self::from_weights(weights)
    }

    fn validate_common(mean: f64, std: f64, max_len: usize) -> Result<(), DistError> {
        if max_len == 0 {
            return Err(DistError::InvalidParameter { what: "max_len", why: "must be at least 1" });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(mean > 0.0) {
            return Err(DistError::InvalidParameter { what: "mean", why: "must be positive" });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(std >= 0.0) {
            return Err(DistError::InvalidParameter { what: "std", why: "must be non-negative" });
        }
        Ok(())
    }

    /// Probability of exactly `len` tokens (0 outside `1..=max_len`).
    pub fn pmf(&self, len: usize) -> f64 {
        if len == 0 || len > self.pmf.len() {
            0.0
        } else {
            self.pmf[len - 1]
        }
    }

    /// Probability of at most `len` tokens.
    pub fn cdf(&self, len: usize) -> f64 {
        if len == 0 {
            0.0
        } else if len > self.cdf.len() {
            1.0
        } else {
            self.cdf[len - 1]
        }
    }

    /// Largest length with non-zero probability bound (`max_len`).
    pub fn max_len(&self) -> usize {
        self.pmf.len()
    }

    /// Mean length.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the length.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Second raw moment `E[S^2]`.
    pub fn mean_sq(&self) -> f64 {
        self.std * self.std + self.mean * self.mean
    }

    /// Smallest length `l` with `cdf(l) >= p` (`p` clamped to `[0, 1]`).
    ///
    /// `quantile(0.99)` is the paper's 99th-percentile sequence length used
    /// for latency bounds (§7.1).
    pub fn quantile(&self, p: f64) -> usize {
        let p = p.clamp(0.0, 1.0);
        match self.cdf.binary_search_by(|c| c.total_cmp(&p)) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.pmf.len()),
        }
    }

    /// Draws a length from the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.quantile(rng.gen::<f64>())
    }

    /// Iterator over `(length, probability)` pairs with non-zero mass.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.pmf.iter().enumerate().filter(|(_, p)| **p > 0.0).map(|(i, p)| (i + 1, *p))
    }

    /// Returns a copy with the mean scaled by `k` (std preserved), used for
    /// the distribution-shift experiments (Figure 11a). The support is kept.
    ///
    /// # Errors
    ///
    /// Propagates construction errors if the scaled mean is invalid.
    pub fn with_scaled_mean(&self, k: f64) -> Result<Self, DistError> {
        Self::truncated_normal(self.mean * k, self.std, self.max_len())
    }

    /// Returns a copy with the std scaled by `k` (mean preserved), used for
    /// the distribution-shift experiments (Figure 11b).
    ///
    /// # Errors
    ///
    /// Propagates construction errors if the scaled std is invalid.
    pub fn with_scaled_std(&self, k: f64) -> Result<Self, DistError> {
        Self::truncated_normal(self.mean, self.std * k, self.max_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let d = LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid");
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moments_close_to_parameters_when_untruncated() {
        // std much smaller than distance to the bounds: truncation negligible.
        let d = LengthDist::truncated_normal(200.0, 20.0, 512).expect("valid");
        assert!((d.mean() - 200.0).abs() < 0.5);
        assert!((d.std() - 20.0).abs() < 0.5);
    }

    #[test]
    fn heavy_truncation_shifts_mean_up() {
        // Mean near zero with wide std: truncation below 1 pushes mean up.
        let d = LengthDist::truncated_normal(32.0, 64.0, 512).expect("valid");
        assert!(d.mean() > 32.0);
    }

    #[test]
    fn quantile_is_inverse_of_cdf() {
        let d = LengthDist::truncated_normal(128.0, 68.0, 320).expect("valid");
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let q = d.quantile(p);
            assert!(d.cdf(q) >= p);
            if q > 1 {
                assert!(d.cdf(q - 1) < p, "quantile({p}) = {q} is not minimal");
            }
        }
    }

    #[test]
    fn point_mass_behaves() {
        let d = LengthDist::point_mass(7, 10).expect("valid");
        assert_eq!(d.pmf(7), 1.0);
        assert_eq!(d.mean(), 7.0);
        assert_eq!(d.std(), 0.0);
        assert_eq!(d.quantile(0.5), 7);
        assert!(LengthDist::point_mass(0, 10).is_err());
        assert!(LengthDist::point_mass(11, 10).is_err());
    }

    #[test]
    fn zero_std_truncated_normal_degenerates_to_point_mass() {
        let d = LengthDist::truncated_normal(42.0, 0.0, 100).expect("valid");
        assert_eq!(d.pmf(42), 1.0);
    }

    #[test]
    fn empirical_matches_counts() {
        let d = LengthDist::empirical(&[2, 2, 4]).expect("valid");
        assert!((d.pmf(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.pmf(4) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.max_len(), 4);
        assert!(LengthDist::empirical(&[]).is_err());
    }

    #[test]
    fn sampling_matches_distribution() {
        let d = LengthDist::truncated_normal(64.0, 23.0, 128).expect("valid");
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 1.0, "sample mean {mean} vs {}", d.mean());
    }

    #[test]
    fn skew_normal_has_requested_skew_direction() {
        let sym = LengthDist::skew_normal(128.0, 40.0, 0.0, 400).expect("valid");
        let pos = LengthDist::skew_normal(128.0, 40.0, 0.4, 400).expect("valid");
        // Positive skew => longer right tail => higher 99th percentile.
        assert!(pos.quantile(0.99) > sym.quantile(0.99));
        assert!((pos.mean() - sym.mean()).abs() < 2.0, "means stay matched");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(LengthDist::truncated_normal(0.0, 1.0, 10).is_err());
        assert!(LengthDist::truncated_normal(5.0, -1.0, 10).is_err());
        assert!(LengthDist::truncated_normal(5.0, 1.0, 0).is_err());
        assert!(LengthDist::skew_normal(5.0, 1.0, 2.0, 10).is_err());
        assert!(LengthDist::from_weights(vec![]).is_err());
        assert!(LengthDist::from_weights(vec![0.0, 0.0]).is_err());
        assert!(LengthDist::from_weights(vec![1.0, -1.0]).is_err());
    }

    #[test]
    fn shift_helpers_change_the_right_moment() {
        let d = LengthDist::truncated_normal(128.0, 30.0, 512).expect("valid");
        let wider = d.with_scaled_std(1.3).expect("valid");
        assert!((wider.mean() - d.mean()).abs() < 2.0);
        assert!(wider.std() > d.std() * 1.2);
        let longer = d.with_scaled_mean(1.3).expect("valid");
        assert!(longer.mean() > d.mean() * 1.25);
    }
}
