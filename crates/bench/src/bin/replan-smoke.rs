//! CI smoke gate for incremental replanning.
//!
//! Replays the golden replan scenarios (output-distribution drift, a 1-GPU
//! fault, and the subsequent recovery) on OPT-13B / 4×A40 and enforces the
//! three properties the incremental path promises:
//!
//! 1. **No silent fallback** — every golden replan must complete through
//!    the warm-started neighborhood search (`fell_back == false`).
//! 2. **Byte-identical plans** — each replan's schedule (config *and*
//!    estimate) must equal what the full branch-and-bound search finds on
//!    the same engine state.
//! 3. **≥10× speedup** — the warm replan must beat the warm full search by
//!    at least 10× wall-clock on the same fully warm cache (minimum over
//!    several runs on both sides, so scheduler noise cannot fail the gate
//!    by inflating one side only).
//!
//! The measured numbers are archived as JSON (path from `REPLAN_SMOKE_JSON`,
//! default `target/ci-artifacts/replan-smoke.json`) for trending. Exits
//! non-zero on any violated property.

// The bench crate is exempt from xlint D2; mirror that for clippy.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use exegpt::{Replan, ReplanDelta, Schedule, SchedulerOptions};
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_dist::LengthDist;
use exegpt_sim::Workload;
use exegpt_units::Secs;
use serde::Serialize;

const BOUND: Secs = Secs::new(30.0);
const RUNS: usize = 7;
const SPEEDUP_FLOOR: f64 = 10.0;

/// Evaluation counts of one replan scenario versus its full-search twin.
#[derive(Serialize)]
struct Scenario {
    evals: usize,
    full_evals: usize,
}

/// The archived gate measurements (`target/ci-artifacts/replan-smoke.json`).
#[derive(Serialize)]
struct Artifact {
    system: String,
    latency_bound_s: f64,
    drift: Scenario,
    fault: Scenario,
    recovery: Scenario,
    warm_full_us: f64,
    warm_replan_us: f64,
    warm_replan_evals: usize,
    warm_replan_cache_hits: usize,
    speedup: f64,
    speedup_floor: f64,
}

fn timed<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

/// Minimum wall-clock over [`RUNS`] repeats; the runs compute identical
/// values, and noise only ever inflates a run.
fn min_over<T>(mut f: impl FnMut() -> (Duration, T)) -> (Duration, T) {
    let mut best = f();
    for _ in 1..RUNS {
        let next = f();
        if next.0 < best.0 {
            best = next;
        }
    }
    best
}

/// Gate 1 + 2 for one scenario: the replan completed incrementally and its
/// schedule is byte-identical (config and estimate) to the full search's.
fn check_identical(scenario: &str, replan: &Replan, full: &Schedule) {
    assert!(!replan.fell_back, "{scenario}: incremental replan silently fell back to full search");
    assert_eq!(
        replan.schedule.config, full.config,
        "{scenario}: incremental replan chose a different plan than the full search"
    );
    assert_eq!(
        replan.schedule.estimate, full.estimate,
        "{scenario}: incremental replan certified a different estimate than the full search"
    );
    println!(
        "  {scenario}: ok — plan {} identical to full search ({} evals vs {})",
        replan.schedule.config.describe(),
        replan.schedule.evals,
        full.evals,
    );
}

fn main() {
    let system = opt_4xa40();
    let opts = SchedulerOptions::bounded(BOUND);
    let base = Workload::new(
        LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
        LengthDist::truncated_normal(32.0, 13.0, 80).expect("valid"),
    );
    let drifted = Workload::new(
        base.input().clone(),
        LengthDist::truncated_normal(48.0, 19.5, 120).expect("valid"),
    );
    println!("replan-smoke: {}, L_B = {:.1}s", system.name, BOUND.as_secs());

    let engine = system.engine(base.clone());
    let incumbent = engine.schedule_with(&opts).expect("feasible");

    // Drift: full search on the drifted workload vs incremental replan from
    // the stale incumbent (both start from a fresh drifted-workload cache).
    let full_drift = engine.with_workload(drifted.clone()).schedule_with(&opts).expect("feasible");
    let mut moved = engine.clone();
    let drift = moved.reschedule_incremental(drifted, &incumbent, &opts).expect("replans");
    check_identical("drift replan", &drift, &full_drift);

    // Fault: one GPU lost; the full search and the replan share the warm
    // cache, as the serve loop's fault path would.
    let survivors = engine.simulator().cluster().survivors(1).expect("degradable");
    let degraded = engine.with_cluster(survivors);
    let fault_delta = ReplanDelta { gpu_delta: -1, workload_changed: false };
    let fault = degraded.replan_from(&incumbent, fault_delta, &opts).expect("replans");
    let full_fault = degraded.schedule_with(&opts).expect("feasible");
    check_identical("fault replan", &fault, &full_fault);

    // Recovery: back to the original topology.
    let recovered = degraded.with_cluster(engine.simulator().cluster().clone());
    let recovery_delta = ReplanDelta { gpu_delta: 1, workload_changed: false };
    let recovery = recovered.replan_from(&fault.schedule, recovery_delta, &opts).expect("replans");
    check_identical("recovery replan", &recovery, &incumbent);

    // Gate 3: warm replan vs warm full search on the same fully warm cache.
    let (full_t, _) = min_over(|| timed(|| recovered.schedule_with(&opts).expect("feasible")));
    let (replan_t, warm) = min_over(|| {
        timed(|| recovered.replan_from(&fault.schedule, recovery_delta, &opts).expect("replans"))
    });
    let speedup = full_t.as_secs_f64() / replan_t.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "  warm full search {:.0} us vs warm replan {:.0} us: {speedup:.1}x (floor {SPEEDUP_FLOOR}x)",
        full_t.as_secs_f64() * 1e6,
        replan_t.as_secs_f64() * 1e6,
    );

    let artifact = Artifact {
        system: system.name.clone(),
        latency_bound_s: BOUND.as_secs(),
        drift: Scenario { evals: drift.schedule.evals, full_evals: full_drift.evals },
        fault: Scenario { evals: fault.schedule.evals, full_evals: full_fault.evals },
        recovery: Scenario { evals: recovery.schedule.evals, full_evals: incumbent.evals },
        warm_full_us: full_t.as_secs_f64() * 1e6,
        warm_replan_us: replan_t.as_secs_f64() * 1e6,
        warm_replan_evals: warm.schedule.evals,
        warm_replan_cache_hits: warm.schedule.cache_hits,
        speedup,
        speedup_floor: SPEEDUP_FLOOR,
    };
    let path = std::env::var("REPLAN_SMOKE_JSON")
        .unwrap_or_else(|_| "target/ci-artifacts/replan-smoke.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("artifact directory");
    }
    std::fs::write(&path, serde_json::to_string_pretty(&artifact).expect("serializes"))
        .expect("artifact written");
    println!("  artifact: {path}");

    assert!(
        speedup >= SPEEDUP_FLOOR,
        "warm replan is only {speedup:.1}x faster than the warm full search \
         (floor {SPEEDUP_FLOOR}x)"
    );
    println!("replan-smoke OK");
}
