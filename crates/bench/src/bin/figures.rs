//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run -p exegpt-bench --release --bin figures -- <experiment> [--json DIR] [--queries N]
//! ```
//!
//! where `<experiment>` is one of `fig6 fig7 fig8 fig9 fig10 fig11 tab4
//! tab5 tab6 tab7 timelines all`. With `--json DIR`, machine-readable
//! results are written alongside the printed tables (used to populate
//! `EXPERIMENTS.md`).

use std::path::PathBuf;

use exegpt::Policy;
use exegpt_bench::{
    fig10, fig11, fig6, fig7, fig8, fig9, fleet, serve_faults, serve_shift, tab4, tab5, tab6, tab7,
    timelines,
};

struct Args {
    experiments: Vec<String>,
    json_dir: Option<PathBuf>,
    queries: usize,
}

fn parse_args() -> Args {
    let mut experiments = Vec::new();
    let mut json_dir = None;
    let mut queries = 300;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_dir = it.next().map(PathBuf::from);
            }
            "--queries" => {
                queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&q: &usize| q > 0)
                    .unwrap_or_else(|| die("--queries needs a positive integer"));
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => experiments.push(other.to_string()),
        }
    }
    const KNOWN: [&str; 15] = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "serve",
        "faults",
        "fleet",
        "tab4",
        "tab5",
        "tab6",
        "tab7",
        "timelines",
        "all",
    ];
    if experiments.is_empty() {
        die("expected an experiment id (fig6 fig7 fig8 fig9 fig10 fig11 serve faults fleet tab4 tab5 tab6 tab7 timelines all)");
    }
    if let Some(bad) = experiments.iter().find(|e| !KNOWN.contains(&e.as_str())) {
        die(&format!("unknown experiment `{bad}` (known: {})", KNOWN.join(" ")));
    }
    Args { experiments, json_dir, queries }
}

fn die(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2)
}

fn save_json<T: serde::Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("figures: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("figures: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("figures: cannot serialize {name}: {e}"),
    }
}

fn main() {
    let args = parse_args();
    let wants = |name: &str| args.experiments.iter().any(|e| e == name || e == "all");
    let q = args.queries;

    if wants("fig6") {
        let rows = fig6::run_full(q);
        println!("{}", fig6::render(&rows));
        save_json(&args.json_dir, "fig6", &rows);
    }
    if wants("fig7") {
        let rows = fig7::generate(q);
        println!("{}", fig7::render(&rows));
        save_json(&args.json_dir, "fig7", &rows);
    }
    if wants("fig8") {
        let rows = fig8::run_full(q);
        println!("{}", fig8::render(&rows));
        save_json(&args.json_dir, "fig8", &rows);
    }
    if wants("fig9") {
        let rows = fig9::generate();
        println!("{}", fig9::render(&rows));
        save_json(&args.json_dir, "fig9", &rows);
    }
    if wants("fig10") {
        let rows = fig10::generate(q);
        println!("{}", fig10::render(&rows));
        save_json(&args.json_dir, "fig10", &rows);
    }
    if wants("fig11") {
        let mut rows = fig11::generate(vec![Policy::WaaCompute, Policy::WaaMemory], q);
        rows.extend(fig11::generate(vec![Policy::Rra], q));
        println!("{}", fig11::render(&rows));
        save_json(&args.json_dir, "fig11", &rows);
    }
    if wants("serve") {
        // Below ~2000 requests the serving run is transient-dominated and
        // the arms don't separate; floor the stream length accordingly.
        let rows = serve_shift::generate(q.max(serve_shift::MIN_STEADY_REQUESTS));
        println!("{}", serve_shift::render(&rows));
        save_json(&args.json_dir, "serve", &rows);
    }
    if wants("faults") {
        // The straggler window has to span enough phases for the arms to
        // separate; floor the stream length accordingly.
        let rows = serve_faults::generate(q.max(serve_faults::MIN_STEADY_REQUESTS));
        println!("{}", serve_faults::render(&rows));
        save_json(&args.json_dir, "faults", &rows);
    }
    if wants("fleet") {
        // The overloaded-A40 queues need room to grow before the policies
        // separate on violations; floor the stream length accordingly.
        let rows = fleet::generate(q.max(fleet::MIN_STEADY_REQUESTS));
        println!("{}", fleet::render(&rows));
        save_json(&args.json_dir, "fleet", &rows);
    }
    if wants("tab4") {
        let rows = tab4::generate();
        println!("{}", tab4::render(&rows));
        save_json(&args.json_dir, "tab4", &rows);
    }
    if wants("tab5") {
        let rows = tab5::generate();
        println!("{}", tab5::render(&rows));
        save_json(&args.json_dir, "tab5", &rows);
    }
    if wants("tab6") {
        let rows = tab6::generate();
        println!("{}", tab6::render(&rows));
        save_json(&args.json_dir, "tab6", &rows);
    }
    if wants("tab7") {
        let rows = tab7::generate(q);
        println!("{}", tab7::render(&rows));
        save_json(&args.json_dir, "tab7", &rows);
    }
    if wants("timelines") {
        println!("{}", timelines::generate());
    }
}
