//! CI smoke gate for the xlint incremental cache.
//!
//! Runs the workspace lint cold (cache wiped) and warm (best of several
//! runs) and enforces the three properties the cache promises:
//!
//! 1. **Full coverage** — the cold pass misses every file and the warm
//!    pass hits every file (no silent partial caching).
//! 2. **Byte-identical findings** — the warm pass replays exactly the
//!    cold pass's findings and suppressions, down to the rendered text.
//! 3. **≥5× speedup** — the warm pass must beat the cold pass by at
//!    least 5× wall-clock (warm is the minimum over several runs, so
//!    scheduler noise cannot fail the gate by inflating one side only).
//!
//! The measured numbers are archived as JSON (path from
//! `XLINT_SMOKE_JSON`, default `target/ci-artifacts/xlint-cache-stats.json`)
//! for trending. Exits non-zero on any violated property.

// The bench crate is exempt from xlint D2; mirror that for clippy.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use exegpt_xlint::{cache, find_workspace_root, lint_workspace_cached, Report};

const RUNS: usize = 5;
const SPEEDUP_FLOOR: f64 = 5.0;

fn timed(root: &std::path::Path) -> (Duration, Report) {
    let start = Instant::now();
    let report = lint_workspace_cached(root, true).expect("workspace lints");
    (start.elapsed(), report)
}

fn main() {
    let cwd = std::env::current_dir().expect("cwd resolves");
    let root = find_workspace_root(&cwd).expect("workspace root resolves");
    let dir = cache::cache_dir(&root);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("cache dir wiped");
    }

    let (cold_t, cold) = timed(&root);
    let cold_stats = cold.cache.expect("cached pass reports stats");
    println!(
        "xlint-smoke: cold {:.0} ms — {} files, {} findings, {} suppressed",
        cold_t.as_secs_f64() * 1e3,
        cold.files_scanned,
        cold.findings.len(),
        cold.suppressed.len(),
    );
    assert_eq!(cold_stats.hits, 0, "cold pass on a wiped cache cannot hit");
    assert_eq!(cold_stats.misses, cold.files_scanned, "cold pass must miss every file");

    let (mut warm_t, mut warm) = timed(&root);
    for _ in 1..RUNS {
        let next = timed(&root);
        if next.0 < warm_t {
            (warm_t, warm) = next;
        }
    }
    let warm_stats = warm.cache.expect("cached pass reports stats");
    assert_eq!(warm_stats.hits, warm.files_scanned, "warm pass must hit every file");
    assert_eq!(warm_stats.misses, 0, "warm pass on an unchanged tree cannot miss");

    assert_eq!(warm.findings, cold.findings, "warm findings must replay byte-identically");
    assert_eq!(warm.suppressed, cold.suppressed, "warm suppressions must replay byte-identically");
    assert_eq!(warm.render_text(), cold.render_text(), "rendered reports must match");

    let speedup = cold_t.as_secs_f64() / warm_t.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "  warm best-of-{RUNS} {:.1} ms: {speedup:.1}x over cold (floor {SPEEDUP_FLOOR}x), \
         {}/{} hits",
        warm_t.as_secs_f64() * 1e3,
        warm_stats.hits,
        warm.files_scanned,
    );

    let artifact = format!(
        "{{\n  \"files_scanned\": {},\n  \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \
         \"cold_hits\": {},\n  \"cold_misses\": {},\n  \"warm_hits\": {},\n  \
         \"warm_misses\": {},\n  \"speedup\": {:.2},\n  \"speedup_floor\": {:.1}\n}}\n",
        cold.files_scanned,
        cold_t.as_secs_f64() * 1e3,
        warm_t.as_secs_f64() * 1e3,
        cold_stats.hits,
        cold_stats.misses,
        warm_stats.hits,
        warm_stats.misses,
        speedup,
        SPEEDUP_FLOOR,
    );
    let path = std::env::var("XLINT_SMOKE_JSON")
        .unwrap_or_else(|_| "target/ci-artifacts/xlint-cache-stats.json".to_string());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(parent).expect("artifact directory");
    }
    std::fs::write(&path, artifact).expect("artifact written");
    println!("  artifact: {path}");

    assert!(
        speedup >= SPEEDUP_FLOOR,
        "warm lint is only {speedup:.1}x faster than cold (floor {SPEEDUP_FLOOR}x)"
    );
    println!("xlint-smoke OK");
}
