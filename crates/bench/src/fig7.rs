//! Figure 7: throughput comparison of the existing systems — FT, DSI, ORCA
//! and vLLM — on OPT-13B over four A40 GPUs, all five tasks, four bounds.

use exegpt_baselines::{DeepSpeedInference, FasterTransformer, IterationLevel, Orca, Vllm};
use exegpt_runner::RunOptions;
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::opt_4xa40;
use crate::support::bounds_for;
use crate::table;

/// One bar group of Figure 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Task id.
    pub task: String,
    /// Latency bound in seconds.
    pub bound: f64,
    /// FT measured throughput; `None` = infeasible.
    pub ft: Option<f64>,
    /// DSI measured throughput.
    pub dsi: Option<f64>,
    /// ORCA measured throughput.
    pub orca: Option<f64>,
    /// vLLM measured throughput.
    pub vllm: Option<f64>,
}

/// Regenerates Figure 7.
pub fn generate(num_queries: usize) -> Vec<Row> {
    let system = opt_4xa40();
    let mut rows = Vec::new();
    for task in Task::all() {
        let workload = task.workload().expect("task statistics are valid");
        let bounds = bounds_for(&system, &workload);
        let sim = system.simulator(workload.clone());
        let ft = FasterTransformer::paper_default(sim.clone()).expect("grid builds");
        let dsi = DeepSpeedInference::new(sim.clone()).expect("single node");
        let orca = Orca::new(sim.clone(), IterationLevel::orca()).expect("grid builds");
        let vllm = Vllm::new(sim).expect("grid builds");
        for bound in bounds {
            // Size each run to cover several batches of the planned size.
            let opts_for = |batch: usize| RunOptions {
                num_queries: num_queries.max(4 * batch),
                ..Default::default()
            };
            let run = |planned: Option<(usize, exegpt_sim::Estimate)>,
                       exec: &dyn Fn(usize, &RunOptions) -> Option<f64>| {
                planned.and_then(|(batch, _)| exec(batch, &opts_for(batch)))
            };
            rows.push(Row {
                task: task.id().to_string(),
                bound: bound.as_secs(),
                ft: run(ft.plan(bound), &|b, o| ft.run(b, o).ok().map(|r| r.throughput)),
                dsi: run(dsi.plan(bound), &|b, o| dsi.run(b, o).ok().map(|r| r.throughput)),
                orca: run(orca.plan(bound), &|b, o| orca.run(b, o).ok().map(|r| r.throughput)),
                vllm: run(vllm.plan(bound), &|b, o| vllm.run(b, o).ok().map(|r| r.throughput)),
            });
        }
    }
    rows
}

/// Renders the rows as the figure's table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.clone(),
                table::bound(r.bound),
                table::opt_f64(r.ft),
                table::opt_f64(r.dsi),
                table::opt_f64(r.orca),
                table::opt_f64(r.vllm),
            ]
        })
        .collect();
    format!(
        "Figure 7: existing systems, OPT-13B on 4xA40 (queries/s)\n{}",
        table::render(&["task", "L_B(s)", "FT", "DSI", "ORCA", "vLLM"], &body)
    )
}
