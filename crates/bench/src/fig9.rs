//! Figure 9: per-GPU memory usage of FT versus WAA (encoder/decoder GPUs
//! reported separately), tasks T and G at the unconstrained bound — the
//! regime where batch sizes, and hence memory pressure, are largest (§7.3).

use exegpt::{Policy, SchedulerOptions};
use exegpt_baselines::FasterTransformer;
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_units::Secs;
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::System;
use crate::table;

const GIB: f64 = (1u64 << 30) as f64;

/// One deployment/task row of Figure 9, all values in GiB per GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Deployment name.
    pub system: String,
    /// Task id (T or G).
    pub task: String,
    /// FT model-parameter memory.
    pub ft_model: f64,
    /// FT key/value-cache memory.
    pub ft_kv: f64,
    /// WAA encoder-GPU model memory.
    pub waa_enc_model: f64,
    /// WAA encoder-GPU KV memory.
    pub waa_enc_kv: f64,
    /// WAA decoder-GPU model memory.
    pub waa_dec_model: f64,
    /// WAA decoder-GPU KV memory.
    pub waa_dec_kv: f64,
    /// Which WAA variant the scheduler selected.
    pub waa_variant: String,
}

/// The deployments Figure 9 measures.
pub fn systems() -> Vec<System> {
    vec![
        System::new(ModelConfig::opt_13b(), ClusterSpec::a40_cluster(), 4),
        System::new(ModelConfig::gpt3_101b(), ClusterSpec::a100_cluster(), 16),
    ]
}

/// Regenerates Figure 9.
pub fn generate() -> Vec<Row> {
    let mut rows = Vec::new();
    for system in systems() {
        for task in [Task::Translation, Task::CodeGeneration] {
            let workload = task.workload().expect("task statistics are valid");

            let ft = FasterTransformer::paper_default(system.simulator(workload.clone()))
                .expect("grid builds");
            let Some((_, ft_est)) = ft.plan(Secs::INFINITY) else { continue };

            let engine = system.engine(workload);
            let opts = SchedulerOptions {
                policies: vec![Policy::WaaCompute, Policy::WaaMemory],
                ..SchedulerOptions::bounded(Secs::INFINITY)
            };
            let Ok(waa) = engine.schedule_with(&opts) else { continue };
            let variant = match waa.config {
                exegpt::ScheduleConfig::Waa(c) => match c.variant {
                    exegpt::WaaVariant::Compute => "WAA-C",
                    exegpt::WaaVariant::Memory => "WAA-M",
                },
                _ => "?",
            };
            let m = waa.estimate.memory;
            rows.push(Row {
                system: system.name.clone(),
                task: task.id().to_string(),
                ft_model: ft_est.memory.decoder_gpu.param_bytes as f64 / GIB,
                ft_kv: ft_est.memory.decoder_gpu.kv_bytes as f64 / GIB,
                waa_enc_model: m.encoder_gpu.param_bytes as f64 / GIB,
                waa_enc_kv: m.encoder_gpu.kv_bytes as f64 / GIB,
                waa_dec_model: m.decoder_gpu.param_bytes as f64 / GIB,
                waa_dec_kv: m.decoder_gpu.kv_bytes as f64 / GIB,
                waa_variant: variant.to_string(),
            });
        }
    }
    rows
}

/// Renders the rows as the figure's table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                r.task.clone(),
                format!("{:.1}", r.ft_model),
                format!("{:.1}", r.ft_kv),
                format!("{:.1}", r.waa_enc_model),
                format!("{:.1}", r.waa_enc_kv),
                format!("{:.1}", r.waa_dec_model),
                format!("{:.1}", r.waa_dec_kv),
                r.waa_variant.clone(),
            ]
        })
        .collect();
    format!(
        "Figure 9: per-GPU memory (GiB), FT vs WAA encoder/decoder GPUs, L_B = inf\n{}",
        table::render(
            &[
                "system",
                "task",
                "FT.model",
                "FT.kv",
                "WAA.enc.model",
                "WAA.enc.kv",
                "WAA.dec.model",
                "WAA.dec.kv",
                "variant"
            ],
            &body
        )
    )
}
