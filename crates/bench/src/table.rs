//! Minimal fixed-width text-table rendering for the figure/table output.

/// Renders rows of cells as an aligned text table with a header rule.
///
/// # Example
///
/// ```
/// let t = exegpt_bench::table::render(
///     &["model", "tput"],
///     &[vec!["OPT".to_string(), "12.3".to_string()]],
/// );
/// assert!(t.contains("model"));
/// assert!(t.contains("OPT"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a throughput/latency value compactly (`-` for missing, `NS` for
/// not-satisfiable, matching the paper's figures).
pub fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.2}"),
        Some(_) => "inf".to_string(),
        None => "NS".to_string(),
    }
}

/// Formats a latency bound (`inf` for the unconstrained case).
pub fn bound(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["a", "bbbb"],
            &[vec!["x".into(), "1".into()], vec!["long".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(opt_f64(None), "NS");
        assert_eq!(opt_f64(Some(1.234)), "1.23");
        assert_eq!(opt_f64(Some(f64::INFINITY)), "inf");
        assert_eq!(bound(f64::INFINITY), "inf");
        assert_eq!(bound(9.85), "9.8");
    }
}
