//! Table 7: variance of encoder/decoder single-stage execution times under
//! the selected RRA and WAA schedules (paper §7.9), measured by replaying
//! the schedules with sampled query lengths.

use exegpt::{Policy, SchedulerOptions};
use exegpt_runner::{RunOptions, Runner};
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::opt_4xa40;
use crate::support::bounds_for;
use crate::table;

/// One row of Table 7 (times in seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Schedule family.
    pub schedule: String,
    /// Mean encoder-stage execution time.
    pub enc_mean: f64,
    /// ±99th-percentile half-range of encoder stage times.
    pub enc_half_range: f64,
    /// Mean decoder-stage execution time.
    pub dec_mean: f64,
    /// ±99th-percentile half-range of decoder stage times.
    pub dec_half_range: f64,
}

/// Regenerates Table 7 on OPT-13B / task S, using the bottom-30% latency
/// bound's selected schedules (a representative operating point) and enough
/// queries for many encode/decode phases.
pub fn generate(num_queries: usize) -> Vec<Row> {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("task statistics are valid");
    let bound = bounds_for(&system, &workload)[1];
    let engine = system.engine(workload);
    let runner = Runner::from_simulator(engine.simulator().clone());
    let mut rows = Vec::new();
    for (name, policies) in
        [("RRA", vec![Policy::Rra]), ("WAA", vec![Policy::WaaCompute, Policy::WaaMemory])]
    {
        let opts = SchedulerOptions { policies, ..SchedulerOptions::bounded(bound) };
        let Ok(schedule) = engine.schedule_with(&opts) else { continue };
        // Variance statistics need many phases: at least a few thousand
        // queries regardless of the caller's figure-wide default.
        let nq =
            (8 * schedule.estimate.breakdown.decode_batch).max(num_queries).clamp(4000, 40_000);
        let Ok(rep) =
            runner.run(&schedule.config, &RunOptions { num_queries: nq, ..Default::default() })
        else {
            continue;
        };
        let (enc_mean, enc_half_range) = rep.encoder_stage_stats();
        let (dec_mean, dec_half_range) = rep.decoder_stage_stats();
        rows.push(Row {
            schedule: name.to_string(),
            enc_mean,
            enc_half_range,
            dec_mean,
            dec_half_range,
        });
    }
    rows
}

/// Renders the rows as the paper's table.
pub fn render(rows: &[Row]) -> String {
    let pct = |half: f64, mean: f64| {
        if mean > 0.0 {
            format!("±{:.4}, ±{:.1}%", half, 100.0 * half / mean)
        } else {
            "-".to_string()
        }
    };
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.schedule.clone(),
                format!("{:.3} ({})", r.enc_mean, pct(r.enc_half_range, r.enc_mean)),
                format!("{:.4} ({})", r.dec_mean, pct(r.dec_half_range, r.dec_mean)),
            ]
        })
        .collect();
    format!(
        "Table 7: encoder/decoder stage execution-time variance, OPT-13B task S\n{}",
        table::render(
            &["schedule", "encoder (99th pctl range)", "decoder (99th pctl range)"],
            &body
        )
    )
}
