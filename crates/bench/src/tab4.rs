//! Table 4: cost of (re-)deploying LLMs — loading weights from SSD on first
//! deployment versus from host DRAM when a schedule change requires
//! re-allocation (§7.7).

use exegpt_cluster::{ClusterSpec, LoadCostModel, LoadSource};
use exegpt_model::ModelConfig;
use serde::{Deserialize, Serialize};

use crate::table;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// GPUs loaded in parallel.
    pub gpus: usize,
    /// Seconds to reload from host DRAM.
    pub from_dram: f64,
    /// Seconds to load from SSD.
    pub from_ssd: f64,
}

/// Regenerates Table 4 with its (model, #GPUs) pairs.
pub fn generate() -> Vec<Row> {
    let cases = [
        (ModelConfig::gpt3_39b(), 16),
        (ModelConfig::gpt3_101b(), 32),
        (ModelConfig::gpt3_175b(), 32),
        (ModelConfig::gpt3_341b(), 48),
    ];
    let lcm = LoadCostModel::new(ClusterSpec::a40_cluster());
    cases
        .into_iter()
        .map(|(model, gpus)| Row {
            model: model.name().to_string(),
            gpus,
            from_dram: lcm.load_time(model.param_bytes(), gpus, LoadSource::Dram).as_secs(),
            from_ssd: lcm.load_time(model.param_bytes(), gpus, LoadSource::Ssd).as_secs(),
        })
        .collect()
}

/// Renders the rows as the paper's table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.gpus.to_string(),
                format!("{:.1} secs.", r.from_dram),
                format!("{:.1} secs.", r.from_ssd),
            ]
        })
        .collect();
    format!(
        "Table 4: cost of loading LLMs from SSD or CPU DRAM\n{}",
        table::render(&["model", "#GPUs", "from DRAM", "from SSD"], &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_grow_with_model_size_and_dram_beats_ssd() {
        let rows = generate();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.from_dram < r.from_ssd, "{}", r.model);
        }
        assert!(rows[3].from_ssd > rows[0].from_ssd);
        assert!(rows[3].from_dram > rows[0].from_dram);
    }
}
