//! Graceful degradation under a mid-run straggler (fault model, DESIGN §7):
//! the *same* faulty arrival stream served twice. The "tolerate" arm keeps
//! the straggling device (eviction threshold set unreachably high), so
//! every phase dilates with it until it recovers; the "degrade" arm
//! confirms the straggler, evicts it, and replans onto the three healthy
//! survivors. The comparison an operator cares about is the SLO-violation
//! rate on identical traffic and identical faults.
//!
//! Offered load sits at 70% of healthy capacity: a 3× straggler drags the
//! tolerated cluster to ~1/3 of capacity (saturated — queueing blows the
//! tail), while the evicted topology retains 3/4 of it (still keeping up).

use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule};
use exegpt_serve::{FaultOptions, ServeLoop, ServeOptions, ServeReport, SloTargets};
use exegpt_units::Secs;
use exegpt_workload::{PoissonStream, Task, TimedRequest};
use serde::{Deserialize, Serialize};

use crate::scenarios::opt_4xa40;
use crate::table;

/// Latency bound the schedule is optimized under (seconds).
pub const LATENCY_BOUND: f64 = 30.0;
/// End-to-end SLO (seconds), matching the serve-shift scenario.
pub const SLO_E2E: f64 = 1.2 * LATENCY_BOUND;
/// Injected slowdown factor of the straggling device.
pub const SLOWDOWN: f64 = 3.0;
/// Arrival seed (fixed: the runs are byte-deterministic).
pub const SEED: u64 = 7;
/// Shortest stream whose straggler window spans enough phases for the
/// arms to separate (shorter runs are transient-dominated).
pub const MIN_STEADY_REQUESTS: usize = 2000;

/// One serving arm of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// `tolerate` (straggler kept, phases dilate) or `degrade` (straggler
    /// evicted, replan onto survivors).
    pub arm: String,
    /// Requests served to completion.
    pub completed: usize,
    /// Completions per virtual second.
    pub throughput: f64,
    /// Fraction of completions violating the end-to-end SLO.
    pub violation_rate: f64,
    /// 99th-percentile end-to-end latency (seconds).
    pub p99_e2e: Option<f64>,
    /// Stragglers confirmed by the detector.
    pub stragglers: usize,
    /// Fault-driven replans (eviction and recovery).
    pub replans: usize,
    /// Requests dropped (graceful degradation must keep this at 0).
    pub lost: usize,
    /// Schedule in force when the run ended.
    pub final_schedule: String,
}

fn row(arm: &str, r: &ServeReport) -> Row {
    Row {
        arm: arm.to_string(),
        completed: r.completed,
        throughput: r.throughput,
        violation_rate: r.slo.violation_rate(),
        p99_e2e: r.e2e.as_ref().map(|s| s.p99),
        stragglers: r.stragglers_detected,
        replans: r.replans,
        lost: r.requests_lost,
        final_schedule: r.final_schedule.clone(),
    }
}

fn opts(faults: FaultOptions) -> ServeOptions {
    ServeOptions {
        slo: SloTargets::e2e(Secs::new(SLO_E2E)),
        faults: Some(faults),
        // Drift adaptation off: the backlog the straggler builds drains
        // output-length-biased and would trigger refits in both arms,
        // muddying the eviction-policy comparison this scenario isolates.
        adaptive: false,
        ..ServeOptions::default()
    }
}

/// Serves `total` requests through both arms — a 3× straggler from 30% to
/// 90% of the arrival window — and returns one row per arm.
pub fn generate(total: usize) -> Vec<Row> {
    let system = opt_4xa40();
    let workload = Task::Translation.workload().expect("task statistics are valid");
    let engine = system.engine(workload.clone());
    let schedule = engine.schedule(Secs::new(LATENCY_BOUND)).expect("bounded schedule exists");

    let rate = 0.7 * schedule.estimate.throughput;
    let arrivals: Vec<TimedRequest> =
        PoissonStream::new(&workload, rate, SEED).take(total).collect();
    let horizon = arrivals.last().map(|r| r.arrival).unwrap_or(0.0);
    let faults = FaultSchedule::new(vec![
        FaultEvent { t: 0.3 * horizon, kind: FaultKind::GpuSlowdown { gpu: 1, factor: SLOWDOWN } },
        FaultEvent { t: 0.9 * horizon, kind: FaultKind::GpuRecover { gpu: 1 } },
    ])
    .expect("valid fault schedule");

    // Tolerate: the eviction threshold is unreachably high, so the
    // confirmed straggler stays and dilates every phase it touches.
    let tolerate =
        FaultOptions { schedule: faults.clone(), evict_slowdown: 1e6, ..FaultOptions::default() };
    // Degrade: default policy — a 3× straggler crosses the 2× threshold
    // and is evicted; the loop replans onto the 3-GPU surviving topology.
    let degrade = FaultOptions { schedule: faults, ..FaultOptions::default() };

    let mut rows = Vec::new();
    for (arm, fo) in [("tolerate", tolerate), ("degrade", degrade)] {
        let report = ServeLoop::new(engine.clone(), &schedule.config, opts(fo))
            .expect("schedule is feasible")
            .run(arrivals.clone())
            .expect("serving completes");
        rows.push(row(arm, &report));
    }
    rows
}

/// Renders the rows as the comparison table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arm.clone(),
                r.completed.to_string(),
                format!("{:.2}", r.throughput),
                format!("{:.1}%", 100.0 * r.violation_rate),
                table::opt_f64(r.p99_e2e),
                r.stragglers.to_string(),
                r.replans.to_string(),
                r.lost.to_string(),
                r.final_schedule.clone(),
            ]
        })
        .collect();
    format!(
        "Graceful degradation: ×{SLOWDOWN:.0} straggler, OPT-13B task T, SLO {SLO_E2E:.0}s\n{}",
        table::render(
            &[
                "arm",
                "served",
                "tput q/s",
                "SLO viol",
                "p99 e2e",
                "stragglers",
                "replans",
                "lost",
                "final schedule",
            ],
            &body,
        )
    )
}
