//! Figure 6: throughput of ExeGPT (RRA and WAA) versus FasterTransformer on
//! small-to-mid-sized LLMs, for tasks S, T and C1 under four latency bounds.

use exegpt::Policy;
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::{small_mid_systems, System};
use crate::support::{bounds_for, measured_exegpt, measured_ft, speedup};
use crate::table;

/// One bar group of Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Deployment name.
    pub system: String,
    /// Task id (S, T, C1).
    pub task: String,
    /// Latency bound in seconds (`inf` = unconstrained).
    pub bound: f64,
    /// FT measured throughput (queries/s); `None` = no feasible batch.
    pub ft: Option<f64>,
    /// ExeGPT-RRA measured throughput; `None` = NS.
    pub rra: Option<f64>,
    /// ExeGPT-WAA measured throughput; `None` = NS.
    pub waa: Option<f64>,
    /// best(RRA, WAA) / FT.
    pub speedup: Option<f64>,
}

/// The tasks Figure 6 evaluates (well-suited to small/mid models, §7.3).
pub fn tasks() -> [Task; 3] {
    [Task::Summarization, Task::Translation, Task::ConversationalQa1]
}

/// Regenerates Figure 6 over the given deployments (pass
/// [`small_mid_systems`] for the full figure).
pub fn generate(systems: &[System], num_queries: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for system in systems {
        for task in tasks() {
            let workload = task.workload().expect("task statistics are valid");
            let bounds = bounds_for(system, &workload);
            for bound in bounds {
                let ft = measured_ft(system, &workload, bound, num_queries);
                let rra = measured_exegpt(system, &workload, vec![Policy::Rra], bound, num_queries);
                let waa = measured_exegpt(
                    system,
                    &workload,
                    vec![Policy::WaaCompute, Policy::WaaMemory],
                    bound,
                    num_queries,
                );
                rows.push(Row {
                    system: system.name.clone(),
                    task: task.id().to_string(),
                    bound: bound.as_secs(),
                    ft: ft.map(|m| m.throughput),
                    rra: rra.map(|m| m.throughput),
                    waa: waa.map(|m| m.throughput),
                    speedup: speedup(ft, rra, waa),
                });
            }
        }
    }
    rows
}

/// Renders the rows as the figure's table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                r.task.clone(),
                table::bound(r.bound),
                table::opt_f64(r.ft),
                table::opt_f64(r.rra),
                table::opt_f64(r.waa),
                table::opt_f64(r.speedup),
            ]
        })
        .collect();
    format!(
        "Figure 6: ExeGPT vs FT throughput (queries/s), small-to-mid LLMs\n{}",
        table::render(&["system", "task", "L_B(s)", "FT", "RRA", "WAA", "speedup"], &body)
    )
}

/// Convenience: the full paper figure.
pub fn run_full(num_queries: usize) -> Vec<Row> {
    generate(&small_mid_systems(), num_queries)
}
