//! Benchmark harness regenerating every table and figure of the ExeGPT
//! evaluation (paper §7).
//!
//! Each `figures::figN`/`tabN` module computes the corresponding result set
//! and renders it as the rows/series the paper reports. Two front ends
//! drive them:
//!
//! * `cargo run -p exegpt-bench --release --bin figures -- <fig6|fig7|…|all>`
//!   regenerates an experiment in full and prints it (optionally writing
//!   JSON next to the text for `EXPERIMENTS.md`).
//! * `cargo bench` — each Criterion bench first prints its experiment at a
//!   reduced query count, then times the experiment's computational kernel
//!   (e.g. one scheduling run), so `bench_output.txt` carries both the
//!   regenerated rows and the real wall-clock cost of scheduling (§7.7).
//!
//! Absolute numbers come from the simulated cluster substrate and are not
//! expected to match the paper's testbed; the *shape* — who wins, by what
//! factor, where the crossovers fall — is the reproduction target (see
//! `EXPERIMENTS.md`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod scenarios;
pub mod serve_faults;
pub mod serve_shift;
pub mod support;
pub mod tab4;
pub mod tab5;
pub mod tab6;
pub mod tab7;
pub mod table;
pub mod timelines;
