//! Figure 8: throughput of ExeGPT (RRA — WAA's replica overhead rules it
//! out at these sizes, §7.4) versus FT on large LLMs, tasks G, C1 and C2.

use exegpt::Policy;
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::{large_systems, System};
use crate::support::{bounds_for, measured_exegpt, measured_ft, speedup};
use crate::table;

/// One bar group of Figure 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Deployment name.
    pub system: String,
    /// Task id (G, C1, C2).
    pub task: String,
    /// Latency bound in seconds.
    pub bound: f64,
    /// FT measured throughput.
    pub ft: Option<f64>,
    /// ExeGPT-RRA measured throughput.
    pub rra: Option<f64>,
    /// RRA / FT.
    pub speedup: Option<f64>,
}

/// The tasks Figure 8 evaluates (known to require large models, §7.4).
pub fn tasks() -> [Task; 3] {
    [Task::CodeGeneration, Task::ConversationalQa1, Task::ConversationalQa2]
}

/// Regenerates Figure 8 over the given deployments (pass
/// [`large_systems`] for the full figure).
pub fn generate(systems: &[System], num_queries: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for system in systems {
        for task in tasks() {
            let workload = task.workload().expect("task statistics are valid");
            let bounds = bounds_for(system, &workload);
            for bound in bounds {
                let ft = measured_ft(system, &workload, bound, num_queries);
                let rra = measured_exegpt(system, &workload, vec![Policy::Rra], bound, num_queries);
                rows.push(Row {
                    system: system.name.clone(),
                    task: task.id().to_string(),
                    bound: bound.as_secs(),
                    ft: ft.map(|m| m.throughput),
                    rra: rra.map(|m| m.throughput),
                    speedup: speedup(ft, rra, None),
                });
            }
        }
    }
    rows
}

/// Renders the rows as the figure's table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                r.task.clone(),
                table::bound(r.bound),
                table::opt_f64(r.ft),
                table::opt_f64(r.rra),
                table::opt_f64(r.speedup),
            ]
        })
        .collect();
    format!(
        "Figure 8: ExeGPT (RRA) vs FT throughput (queries/s), large LLMs\n{}",
        table::render(&["system", "task", "L_B(s)", "FT", "RRA", "speedup"], &body)
    )
}

/// Convenience: the full paper figure.
pub fn run_full(num_queries: usize) -> Vec<Row> {
    generate(&large_systems(), num_queries)
}
