//! Shared measurement helpers for the figure modules.
//!
//! All "measured" numbers come from discrete-event replays (the runner or a
//! baseline's `run`), not from the analytic estimates the schedulers used —
//! mirroring the paper's estimate-then-measure methodology.

use exegpt::{Policy, SchedulerOptions};
use exegpt_baselines::FasterTransformer;
use exegpt_runner::{RunOptions, Runner};
use exegpt_sim::Workload;
use exegpt_units::Secs;

use crate::scenarios::System;

/// A measured (throughput, achieved-latency) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// Queries per second over the measurement window.
    pub throughput: f64,
    /// Maximum per-query latency observed (the bound's subject).
    pub max_latency: f64,
}

/// Derives the paper's four latency bounds for a deployment/task from the
/// FT baseline's batch sweep (§7.1). Returns `[10%, 30%, 70%, inf]`.
pub fn bounds_for(system: &System, workload: &Workload) -> [Secs; 4] {
    let ft = FasterTransformer::paper_default(system.simulator(workload.clone()))
        .expect("baseline grid builds");
    exegpt_workload::latency_bounds(&ft.latency_sweep()).unwrap_or([Secs::INFINITY; 4])
}

/// FT planned for `bound` and replayed; `None` when no batch satisfies it.
pub fn measured_ft(
    system: &System,
    workload: &Workload,
    bound: Secs,
    num_queries: usize,
) -> Option<Measured> {
    let ft = FasterTransformer::paper_default(system.simulator(workload.clone())).ok()?;
    let (batch, _) = ft.plan(bound)?;
    // Run enough queries for several static batches so the steady-state
    // window is meaningful, and discard the ramp-up quarter.
    let num_queries = num_queries.max(4 * batch);
    let rep =
        ft.run(batch, &RunOptions { num_queries, warmup_frac: 0.25, ..Default::default() }).ok()?;
    Some(Measured { throughput: rep.throughput, max_latency: rep.max_latency() })
}

/// ExeGPT scheduled for `bound` with the given policy portfolio and
/// replayed; `None` when the portfolio has no feasible schedule (NS).
pub fn measured_exegpt(
    system: &System,
    workload: &Workload,
    policies: Vec<Policy>,
    bound: Secs,
    num_queries: usize,
) -> Option<Measured> {
    let engine = system.engine(workload.clone());
    let opts = SchedulerOptions { policies, ..SchedulerOptions::bounded(bound) };
    let schedule = engine.schedule_with(&opts).ok()?;
    // Cover several steady-state decode pools so the measurement window is
    // genuinely steady state (one pool draining in a single phase would
    // inflate throughput).
    let num_queries = num_queries.max(4 * schedule.estimate.breakdown.decode_batch).min(40_000);
    let runner = Runner::from_simulator(engine.simulator().clone());
    // The first ~quarter of completions covers filling the decode pool;
    // exclude that ramp from the steady-state window.
    let rep = runner
        .run(&schedule.config, &RunOptions { num_queries, warmup_frac: 0.25, ..Default::default() })
        .ok()?;
    Some(Measured { throughput: rep.throughput, max_latency: rep.max_latency() })
}

/// Speedup of the better ExeGPT policy over FT (`None` when either side is
/// missing).
pub fn speedup(ft: Option<Measured>, a: Option<Measured>, b: Option<Measured>) -> Option<f64> {
    let best = match (a, b) {
        (Some(x), Some(y)) => Some(x.throughput.max(y.throughput)),
        (Some(x), None) => Some(x.throughput),
        (None, Some(y)) => Some(y.throughput),
        (None, None) => None,
    }?;
    Some(best / ft?.throughput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::opt_4xa40;
    use exegpt_workload::Task;

    #[test]
    fn bounds_are_ordered() {
        let sys = opt_4xa40();
        let w = Task::Summarization.workload().expect("valid");
        let b = bounds_for(&sys, &w);
        assert!(b[0] <= b[1] && b[1] <= b[2]);
        assert!(!b[3].is_finite());
    }

    #[test]
    fn speedup_combines_policies() {
        let m = |t| Some(Measured { throughput: t, max_latency: 1.0 });
        assert_eq!(speedup(m(2.0), m(4.0), m(6.0)), Some(3.0));
        assert_eq!(speedup(m(2.0), None, m(6.0)), Some(3.0));
        assert_eq!(speedup(None, m(4.0), None), None);
        assert_eq!(speedup(m(2.0), None, None), None);
    }
}
