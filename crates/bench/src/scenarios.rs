//! Model/cluster deployments of the paper's evaluation (Table 2) and the
//! shared profiling cache.

use std::sync::{Arc, OnceLock};

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_profiler::{LayerProfile, ProfileCache, ProfileOptions};
use exegpt_sim::{Simulator, Workload};
use exegpt_workload::Task;

/// One deployed system: a model on a sub-cluster (a Table 2 row).
#[derive(Debug, Clone)]
pub struct System {
    /// Short display name, e.g. `OPT-13B/4xA40`.
    pub name: String,
    /// The model.
    pub model: ModelConfig,
    /// The (sub-)cluster it is deployed on.
    pub cluster: ClusterSpec,
}

fn cache() -> &'static ProfileCache {
    static CACHE: OnceLock<ProfileCache> = OnceLock::new();
    CACHE.get_or_init(ProfileCache::new)
}

impl System {
    /// Builds a system on the first `gpus` GPUs of `base`.
    ///
    /// # Panics
    ///
    /// Panics if the sub-cluster is invalid (fixed scenario definitions).
    pub fn new(model: ModelConfig, base: ClusterSpec, gpus: usize) -> Self {
        let cluster = base.subcluster(gpus).expect("scenario sub-cluster is valid");
        let name = format!("{}/{}x{}", model.name().replace(' ', "-"), gpus, cluster.gpu().name());
        Self { name, model, cluster }
    }

    /// The cached layer profile for this deployment (profiled on first use).
    pub fn profile(&self) -> Arc<LayerProfile> {
        cache()
            .get_or_profile(&self.model, &self.cluster, &ProfileOptions::default())
            .expect("scenario profiling succeeds")
    }

    /// A simulator for this deployment under `workload`.
    pub fn simulator(&self, workload: Workload) -> Simulator {
        Simulator::new(self.model.clone(), self.cluster.clone(), self.profile(), workload)
    }

    /// A simulator for a Table 3 task.
    pub fn simulator_for(&self, task: Task) -> Simulator {
        self.simulator(task.workload().expect("task statistics are valid"))
    }

    /// An ExeGPT engine for this deployment under `workload`.
    pub fn engine(&self, workload: Workload) -> Engine {
        Engine::builder()
            .model(self.model.clone())
            .cluster(self.cluster.clone())
            .workload(workload)
            .profile(self.profile())
            .build()
            .expect("scenario engine builds")
    }
}

/// Small-to-mid-sized deployments of Figure 6 (Table 2 rows).
pub fn small_mid_systems() -> Vec<System> {
    vec![
        System::new(ModelConfig::t5_11b(), ClusterSpec::a40_cluster(), 8),
        System::new(ModelConfig::opt_13b(), ClusterSpec::a40_cluster(), 4),
        System::new(ModelConfig::gpt3_39b(), ClusterSpec::a40_cluster(), 16),
        System::new(ModelConfig::gpt3_101b(), ClusterSpec::a100_cluster(), 16),
    ]
}

/// Large deployments of Figure 8.
pub fn large_systems() -> Vec<System> {
    vec![
        System::new(ModelConfig::gpt3_101b(), ClusterSpec::a100_cluster(), 16),
        System::new(ModelConfig::gpt3_175b(), ClusterSpec::a100_cluster(), 16),
        System::new(ModelConfig::gpt3_175b(), ClusterSpec::a40_cluster(), 32),
        System::new(ModelConfig::gpt3_341b(), ClusterSpec::a40_cluster(), 48),
    ]
}

/// The Figure 7 / Figure 11 / Table 6-7 comparison deployment.
pub fn opt_4xa40() -> System {
    System::new(ModelConfig::opt_13b(), ClusterSpec::a40_cluster(), 4)
}

/// The second real-world-dataset deployment (Figure 10).
pub fn gpt39b_16xa40() -> System {
    System::new(ModelConfig::gpt3_39b(), ClusterSpec::a40_cluster(), 16)
}

/// The monotonicity-study deployment (Table 5).
pub fn gpt39b_for_tab5() -> System {
    gpt39b_16xa40()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systems_have_expected_sizes() {
        let sys = small_mid_systems();
        assert_eq!(sys.len(), 4);
        assert_eq!(sys[0].cluster.total_gpus(), 8);
        assert_eq!(sys[3].cluster.gpu().name(), "A100-80GB");
        assert!(sys[1].name.contains("OPT-13B"));
    }

    #[test]
    fn profile_cache_is_shared() {
        let a = opt_4xa40().profile();
        let b = opt_4xa40().profile();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
