//! Figure 10: ExeGPT versus FT on the real-world datasets (WMT, Alpaca,
//! CNN/DailyMail surrogates, §7.5): 10% of each dataset estimates the
//! length distributions, the remaining 90% is served.

use exegpt::Policy;
use exegpt_units::Secs;
use exegpt_workload::Dataset;
use serde::{Deserialize, Serialize};

use crate::scenarios::{gpt39b_16xa40, opt_4xa40, System};
use crate::support::{bounds_for, measured_exegpt, measured_ft, speedup};
use crate::table;

/// One bar group of Figure 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Deployment name.
    pub system: String,
    /// Dataset name (WMT, Alpaca, CNN).
    pub dataset: String,
    /// Latency bound in seconds.
    pub bound: f64,
    /// Input↔output length correlation of the dataset sample.
    pub correlation: f64,
    /// FT measured throughput.
    pub ft: Option<f64>,
    /// ExeGPT-RRA measured throughput.
    pub rra: Option<f64>,
    /// ExeGPT-WAA measured throughput.
    pub waa: Option<f64>,
    /// best(RRA, WAA) / FT.
    pub speedup: Option<f64>,
}

/// The dataset surrogates at evaluation size.
pub fn datasets(size: usize, seed: u64) -> Vec<Dataset> {
    vec![
        Dataset::wmt(size, seed),
        Dataset::alpaca(size, seed + 1),
        Dataset::cnn_dailymail(size, seed + 2),
    ]
}

/// Regenerates Figure 10 (small-to-mid models only, as in the paper).
pub fn generate(num_queries: usize) -> Vec<Row> {
    let systems: Vec<System> = vec![opt_4xa40(), gpt39b_16xa40()];
    let mut rows = Vec::new();
    for system in &systems {
        for dataset in datasets(4000, 1234) {
            // 10% to estimate the distribution, 90% to serve (§7.5). The
            // serving side samples from the evaluation split's empirical
            // distribution (input-length randomization across batches, as
            // the paper applies for correlated tasks).
            let (estimate_split, eval_split) = dataset.split(0.1);
            let sched_workload = estimate_split.estimate_workload().expect("non-empty split");
            let eval_workload = eval_split.estimate_workload().expect("non-empty split");

            let ft_bounds = bounds_for(system, &sched_workload);
            // The paper reports two bounds for this figure: a tight one and
            // the unconstrained case.
            for bound in [ft_bounds[1], Secs::INFINITY] {
                let ft = measured_ft(system, &eval_workload, bound, num_queries);
                let rra =
                    measured_exegpt(system, &eval_workload, vec![Policy::Rra], bound, num_queries);
                let waa = measured_exegpt(
                    system,
                    &eval_workload,
                    vec![Policy::WaaCompute, Policy::WaaMemory],
                    bound,
                    num_queries,
                );
                rows.push(Row {
                    system: system.name.clone(),
                    dataset: dataset.name().to_string(),
                    bound: bound.as_secs(),
                    correlation: dataset.correlation(),
                    ft: ft.map(|m| m.throughput),
                    rra: rra.map(|m| m.throughput),
                    waa: waa.map(|m| m.throughput),
                    speedup: speedup(ft, rra, waa),
                });
            }
        }
    }
    rows
}

/// Renders the rows as the figure's table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                r.dataset.clone(),
                table::bound(r.bound),
                format!("{:.2}", r.correlation),
                table::opt_f64(r.ft),
                table::opt_f64(r.rra),
                table::opt_f64(r.waa),
                table::opt_f64(r.speedup),
            ]
        })
        .collect();
    format!(
        "Figure 10: real-world datasets (queries/s)\n{}",
        table::render(
            &["system", "dataset", "L_B(s)", "corr", "FT", "RRA", "WAA", "speedup"],
            &body
        )
    )
}
