//! Table 5: percentage of non-monotonic points per control variable
//! (paper §7.8). Each variable is swept with the others fixed, repeated
//! over combinations of the fixed variables, and the fraction of steps
//! violating the expected monotone direction by more than the tolerance is
//! reported. Tolerances are percentages of the 70th-percentile latency
//! bound and of the achieved throughput, as in the paper.

use exegpt::monotonicity::{measure_sweep, Direction};
use exegpt_sim::{RraConfig, Simulator, TpConfig, WaaConfig, WaaVariant};
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::gpt39b_for_tab5;
use crate::support::bounds_for;
use crate::table;

/// One Table 5 cell group: violations for one (task, variable, tolerance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Task id (S or T, as in the paper's excerpt).
    pub task: String,
    /// Schedule family.
    pub policy: String,
    /// Swept control variable.
    pub variable: String,
    /// Tolerance as a fraction (0.02 / 0.05 / 0.10).
    pub tolerance: f64,
    /// Percentage of latency-direction violations.
    pub latency_pct: f64,
    /// Percentage of throughput-direction violations.
    pub throughput_pct: f64,
}

/// The tolerances the paper reports.
pub fn tolerances() -> [f64; 3] {
    [0.02, 0.05, 0.10]
}

struct Sweep {
    policy: &'static str,
    variable: &'static str,
    latency_dir: Direction,
    throughput_dir: Direction,
    /// One (latency, throughput) series per fixed-variable combination.
    series: Vec<Vec<(f64, f64)>>,
}

fn rra_tp_combos() -> Vec<TpConfig> {
    vec![TpConfig::none(), TpConfig { degree: 2, gpus: 8 }, TpConfig { degree: 4, gpus: 16 }]
}

fn collect_sweeps(sim: &Simulator) -> Vec<Sweep> {
    let up = Direction::NonDecreasing;
    let down = Direction::NonIncreasing;
    let mut sweeps = Vec::new();

    // RRA B_E: throughput and latency both rise with the batch.
    let mut series = Vec::new();
    for n_d in [8usize, 16, 32] {
        for tp in rra_tp_combos() {
            let pts: Vec<(f64, f64)> = (1..=24)
                .filter_map(|i| {
                    sim.evaluate_rra(&RraConfig::new(4 * i, n_d, tp))
                        .ok()
                        .map(|e| (e.latency.as_secs(), e.throughput))
                })
                .collect();
            if pts.len() >= 2 {
                series.push(pts);
            }
        }
    }
    sweeps.push(Sweep {
        policy: "RRA",
        variable: "B_E",
        latency_dir: up,
        throughput_dir: up,
        series,
    });

    // RRA N_D: less frequent encoding lowers both latency and throughput.
    let mut series = Vec::new();
    for b_e in [16usize, 32, 64] {
        for tp in rra_tp_combos() {
            let pts: Vec<(f64, f64)> = (1..=32)
                .filter_map(|i| {
                    sim.evaluate_rra(&RraConfig::new(b_e, 2 * i, tp))
                        .ok()
                        .map(|e| (e.latency.as_secs(), e.throughput))
                })
                .collect();
            if pts.len() >= 2 {
                series.push(pts);
            }
        }
    }
    sweeps.push(Sweep {
        policy: "RRA",
        variable: "N_D",
        latency_dir: down,
        throughput_dir: down,
        series,
    });

    // WAA B_E.
    let mut series = Vec::new();
    for b_m in [1usize, 4, 8] {
        let pts: Vec<(f64, f64)> = (1..=12)
            .filter_map(|b_e| {
                sim.evaluate_waa(&WaaConfig::new(b_e, b_m, TpConfig::none(), WaaVariant::Compute))
                    .ok()
                    .map(|e| (e.latency.as_secs(), e.throughput))
            })
            .collect();
        if pts.len() >= 2 {
            series.push(pts);
        }
    }
    sweeps.push(Sweep {
        policy: "WAA",
        variable: "B_E",
        latency_dir: up,
        throughput_dir: up,
        series,
    });

    // WAA TP (degree fixed at 2, number of TP GPUs swept): the paper's
    // expectation is latency down, throughput down.
    let mut series = Vec::new();
    for b_e in [2usize, 4] {
        for b_m in [4usize, 8] {
            let pts: Vec<(f64, f64)> = (0..=7)
                .filter_map(|i| {
                    let tp =
                        if i == 0 { TpConfig::none() } else { TpConfig { degree: 2, gpus: 2 * i } };
                    sim.evaluate_waa(&WaaConfig::new(b_e, b_m, tp, WaaVariant::Compute))
                        .ok()
                        .map(|e| (e.latency.as_secs(), e.throughput))
                })
                .collect();
            if pts.len() >= 2 {
                series.push(pts);
            }
        }
    }
    sweeps.push(Sweep {
        policy: "WAA",
        variable: "TP",
        latency_dir: down,
        throughput_dir: down,
        series,
    });

    // WAA B_m: the paper's expectation is latency down, throughput down;
    // this is its least monotone variable and ours too.
    let mut series = Vec::new();
    for b_e in [2usize, 4] {
        let pts: Vec<(f64, f64)> = (1..=24)
            .filter_map(|b_m| {
                sim.evaluate_waa(&WaaConfig::new(b_e, b_m, TpConfig::none(), WaaVariant::Compute))
                    .ok()
                    .map(|e| (e.latency.as_secs(), e.throughput))
            })
            .collect();
        if pts.len() >= 2 {
            series.push(pts);
        }
    }
    sweeps.push(Sweep {
        policy: "WAA",
        variable: "B_m",
        latency_dir: down,
        throughput_dir: down,
        series,
    });

    sweeps
}

/// Regenerates Table 5 for tasks S and T on GPT-3 39B.
pub fn generate() -> Vec<Row> {
    let system = gpt39b_for_tab5();
    let mut rows = Vec::new();
    for task in [Task::Summarization, Task::Translation] {
        let workload = task.workload().expect("task statistics are valid");
        // Latency tolerance scale: the 70th-percentile FT bound (§7.8).
        let latency_scale = bounds_for(&system, &workload)[2].as_secs();
        let sim = system.simulator(workload);
        for sweep in collect_sweeps(&sim) {
            for tol in tolerances() {
                let (mut lat_sum, mut thr_sum, mut n) = (0.0, 0.0, 0usize);
                for pts in &sweep.series {
                    let thr_scale = pts.iter().map(|p| p.1).fold(0.0f64, f64::max);
                    let rep = measure_sweep(
                        pts,
                        sweep.latency_dir,
                        sweep.throughput_dir,
                        tol,
                        latency_scale,
                        thr_scale,
                    );
                    let w = (pts.len() - 1) as f64;
                    lat_sum += rep.latency_violations * w;
                    thr_sum += rep.throughput_violations * w;
                    n += pts.len() - 1;
                }
                let n = n.max(1) as f64;
                rows.push(Row {
                    task: task.id().to_string(),
                    policy: sweep.policy.to_string(),
                    variable: sweep.variable.to_string(),
                    tolerance: tol,
                    latency_pct: 100.0 * lat_sum / n,
                    throughput_pct: 100.0 * thr_sum / n,
                });
            }
        }
    }
    rows
}

/// Renders the rows as the paper's table layout.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.clone(),
                format!("{:.0}%", r.tolerance * 100.0),
                r.policy.clone(),
                r.variable.clone(),
                format!("({:.1}, {:.1})", r.latency_pct, r.throughput_pct),
            ]
        })
        .collect();
    format!(
        "Table 5: percentage of non-monotonic points (latency, throughput)\n{}",
        table::render(&["task", "tol", "policy", "variable", "(lat%, tput%)"], &body)
    )
}
