//! Fleet-scale policy comparison (fleet fabric, DESIGN §9): the *same*
//! multi-tenant stream played through a heterogeneous fleet — two A40
//! replicas, one A100 replica, an A40 standby — once per dispatch policy.
//! Mid-run, one A40 replica is lost to a fleet fault and the standby is
//! scaled up to cover the gap, so every arm also exercises rerouting and
//! deploy-cost charging.
//!
//! Batch traffic is sized so a round-robin share overloads an A40 pool
//! (queueing blows interactive e2e past its budget) while load- and
//! SLO-aware policies keep every pool inside capacity — the per-tenant
//! violation table is the comparison an operator cares about. Each row
//! also carries the fabric's wall-clock cost as requests per wall second.

use std::time::Instant;

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule};
use exegpt_fleet::{
    DispatchPolicy, Fleet, FleetOptions, FleetReport, ReplicaSpec, ScaleAction, ScaleEvent,
    SloClass,
};
use exegpt_model::ModelConfig;
use exegpt_serve::ServeOptions;
use exegpt_units::Secs;
use exegpt_workload::{multi_tenant_trace, ArrivalProcess, Task, TenantRequest, TenantSpec};
use serde::{Deserialize, Serialize};

use crate::table;

/// Arrival/trace seed (fixed: the runs are byte-deterministic).
pub const SEED: u64 = 7;
/// Shortest stream on which the overloaded-A40 queues grow long enough
/// for the policies to separate on violations.
pub const MIN_STEADY_REQUESTS: usize = 4000;

/// One dispatch-policy arm of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Dispatch policy name.
    pub policy: String,
    /// Requests dispatched on first arrival.
    pub dispatched: usize,
    /// Re-dispatches after the replica loss.
    pub rerouted: usize,
    /// Requests completed fleet-wide.
    pub completed: usize,
    /// Requests lost (must stay 0: loss reroutes, it does not drop).
    pub lost: usize,
    /// SLO violations across the interactive tenants.
    pub interactive_violations: usize,
    /// Class-weighted violation rate over all tenants.
    pub weighted_violation_rate: f64,
    /// Virtual time of the last completion (seconds).
    pub makespan: f64,
    /// Requests pushed through the fabric per wall-clock second.
    pub wall_qps: f64,
}

fn row(report: &FleetReport, policy: &str, wall: f64) -> Row {
    Row {
        policy: policy.to_string(),
        dispatched: report.dispatched,
        rerouted: report.rerouted,
        completed: report.completed,
        lost: report.lost,
        interactive_violations: report
            .tenants
            .iter()
            .filter(|t| t.class == "interactive")
            .map(|t| t.slo.violations)
            .sum(),
        weighted_violation_rate: report.weighted_violation_rate,
        makespan: report.makespan,
        wall_qps: if wall > 0.0 { report.completed as f64 / wall } else { f64::INFINITY },
    }
}

struct Scenario {
    a40: Engine,
    a40_cfg: exegpt::ScheduleConfig,
    a100: Engine,
    a100_cfg: exegpt::ScheduleConfig,
    classes: Vec<SloClass>,
    trace: Vec<TenantRequest>,
    faults: FaultSchedule,
    scale: Vec<ScaleEvent>,
}

fn scenario(total: usize) -> Scenario {
    let workload = Task::Translation.workload().expect("task statistics are valid");
    let a40 = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("sub-cluster is valid"))
        .workload(workload.clone())
        .build()
        .expect("engine builds");
    let a100 = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a100_cluster().subcluster(4).expect("sub-cluster is valid"))
        .workload(workload.clone())
        .build()
        .expect("engine builds");
    let a40_plan = a40.schedule(Secs::INFINITY).expect("throughput plan exists");
    let a100_plan = a100.schedule(Secs::INFINITY).expect("throughput plan exists");
    let (lat40, lat100) =
        (a40_plan.estimate.latency.as_secs(), a100_plan.estimate.latency.as_secs());

    // The interactive budget sits between the pools' plan latencies, so
    // SLO-aware routing qualifies only the fast pool (see fleet-smoke).
    let interactive_e2e = 0.5 * (lat40 + lat100);
    let classes = vec![
        SloClass::interactive("interactive", Secs::new(interactive_e2e)),
        SloClass::batch("batch"),
    ];
    let fast_thr = a40_plan.estimate.throughput.max(a100_plan.estimate.throughput);
    let slow_thr = a40_plan.estimate.throughput.min(a100_plan.estimate.throughput);
    let tenants = vec![
        TenantSpec {
            tenant: 0,
            class: 0,
            process: ArrivalProcess::Poisson { rate_qps: 0.20 * fast_thr },
        },
        TenantSpec {
            tenant: 1,
            class: 0,
            process: ArrivalProcess::Poisson { rate_qps: 0.15 * fast_thr },
        },
        TenantSpec {
            tenant: 2,
            class: 1,
            process: ArrivalProcess::Poisson { rate_qps: 1.80 * slow_thr },
        },
        TenantSpec {
            tenant: 3,
            class: 1,
            process: ArrivalProcess::Bursty {
                rate_burst: 1.20 * slow_thr,
                rate_lull: 0.40 * slow_thr,
                dwell_burst: 20.0,
                dwell_lull: 60.0,
            },
        },
    ];
    let trace = multi_tenant_trace(&workload, &tenants, total, SEED);
    let horizon = trace.last().map(|r| r.request.arrival).unwrap_or(0.0);
    let faults = FaultSchedule::new(vec![FaultEvent {
        t: 0.50 * horizon,
        kind: FaultKind::GpuFail { gpu: 1 },
    }])
    .expect("valid fault schedule");
    let scale = vec![ScaleEvent { t: 0.55 * horizon, action: ScaleAction::Up { replica: 3 } }];
    Scenario {
        a40,
        a40_cfg: a40_plan.config,
        a100,
        a100_cfg: a100_plan.config,
        classes,
        trace,
        faults,
        scale,
    }
}

fn run_policy(s: &Scenario, policy: DispatchPolicy) -> FleetReport {
    let opts = ServeOptions { adaptive: false, ..ServeOptions::default() };
    let specs = vec![
        ReplicaSpec::new("a40-0", s.a40.clone(), s.a40_cfg, opts.clone())
            .expect("replica is valid"),
        ReplicaSpec::new("a40-1", s.a40.clone(), s.a40_cfg, opts.clone())
            .expect("replica is valid"),
        ReplicaSpec::new("a100-0", s.a100.clone(), s.a100_cfg, opts.clone())
            .expect("replica is valid"),
        ReplicaSpec::new("a40-standby", s.a40.clone(), s.a40_cfg, opts)
            .expect("replica is valid")
            .standby(),
    ];
    let fleet = Fleet::new(
        specs,
        FleetOptions {
            policy,
            classes: s.classes.clone(),
            faults: Some(s.faults.clone()),
            scale: s.scale.clone(),
        },
    )
    .expect("fleet is valid");
    fleet.run(s.trace.clone()).expect("fleet run completes")
}

/// Plays `total` requests through the fleet once per dispatch policy and
/// returns one row per policy.
// The bench crate is the one place wall-clock reads are in-policy (xlint
// D2 waiver): `wall_qps` is the measurement this module exists to take.
#[allow(clippy::disallowed_methods)]
pub fn generate(total: usize) -> Vec<Row> {
    let s = scenario(total);
    [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastOutstanding,
        DispatchPolicy::KvHeadroom,
        DispatchPolicy::SloAware,
    ]
    .into_iter()
    .map(|policy| {
        let start = Instant::now();
        let report = run_policy(&s, policy);
        row(&report, policy.name(), start.elapsed().as_secs_f64())
    })
    .collect()
}

/// Renders the rows as the policy comparison table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.dispatched.to_string(),
                r.rerouted.to_string(),
                r.completed.to_string(),
                r.lost.to_string(),
                r.interactive_violations.to_string(),
                format!("{:.1}%", 100.0 * r.weighted_violation_rate),
                format!("{:.0}", r.makespan),
                format!("{:.0}", r.wall_qps),
            ]
        })
        .collect();
    format!(
        "Fleet dispatch policies: 2xA40 + A100 + standby, mid-run replica loss, OPT-13B task T\n{}",
        table::render(
            &[
                "policy",
                "dispatched",
                "rerouted",
                "served",
                "lost",
                "interactive viol",
                "weighted viol",
                "makespan s",
                "wall q/s",
            ],
            &body,
        )
    )
}
