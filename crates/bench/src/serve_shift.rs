//! Figure 11 end-to-end through the serving loop (§7.6): a mid-run
//! output-distribution shift served once with the stale schedule (static
//! arm) and once with online drift detection + live rescheduling
//! (adaptive arm), on the *same* arrival stream.
//!
//! Unlike [`crate::fig11`], which compares steady-state schedules via the
//! offline runner, this scenario plays a timed Poisson arrival stream
//! through `exegpt-serve` and reports what an operator would see: SLO
//! violation rate, tail latency, and the number/cost of live plan swaps.
//!
//! The separation between the arms needs a steady-state pipeline; with
//! fewer than ~2000 requests the run is transient-dominated and both arms
//! look alike (see `EXPERIMENTS.md`).

use exegpt::SchedulerOptions;
use exegpt_serve::{
    poisson_with_shift, DriftOptions, ServeLoop, ServeOptions, ServeReport, SloTargets,
};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::opt_4xa40;
use crate::table;

/// Latency bound the schedules are optimized under (seconds).
pub const LATENCY_BOUND: f64 = 30.0;
/// Mean-scale factor of the mid-run shift (Figure 11 "Average").
pub const SHIFT_FACTOR: f64 = 1.5;
/// End-to-end SLO, placed between the re-optimized plan's tail-latency
/// estimate and the stale plan's.
pub const SLO_E2E: f64 = 1.2 * LATENCY_BOUND;
/// Arrival seed (fixed: the runs are byte-deterministic).
pub const SEED: u64 = 7;
/// Shortest stream that reaches pipeline steady state (the bounded plan
/// keeps ~500 queries in flight; shorter runs are transient-dominated).
pub const MIN_STEADY_REQUESTS: usize = 2000;

/// One serving arm of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// `static` (stale plan throughout) or `adaptive` (live rescheduling).
    pub arm: String,
    /// Requests served to completion.
    pub completed: usize,
    /// Completions per virtual second.
    pub throughput: f64,
    /// Fraction of completions violating the end-to-end SLO.
    pub violation_rate: f64,
    /// 99th-percentile end-to-end latency (seconds).
    pub p99_e2e: Option<f64>,
    /// Live reschedules triggered by the drift detector.
    pub reschedules: usize,
    /// Plan swaps installed at phase boundaries.
    pub plan_swaps: usize,
    /// Virtual seconds spent redeploying across all swaps.
    pub swap_cost: f64,
    /// Schedule in force when the run ended.
    pub final_schedule: String,
}

fn row(arm: &str, r: &ServeReport) -> Row {
    Row {
        arm: arm.to_string(),
        completed: r.completed,
        throughput: r.throughput,
        violation_rate: r.slo.violation_rate(),
        p99_e2e: r.e2e.as_ref().map(|s| s.p99),
        reschedules: r.reschedules,
        plan_swaps: r.plan_swaps,
        swap_cost: r.swap_cost,
        final_schedule: r.final_schedule.clone(),
    }
}

fn opts(adaptive: bool) -> ServeOptions {
    ServeOptions {
        slo: SloTargets::e2e(Secs::new(SLO_E2E)),
        adaptive,
        scheduler: SchedulerOptions::bounded(Secs::new(LATENCY_BOUND)),
        drift: DriftOptions {
            window: 128,
            min_samples: 48,
            check_every: 16,
            rel_threshold: 0.15,
            consecutive: 2,
        },
        ..ServeOptions::default()
    }
}

/// Serves `total` requests (mean shift ×1.5 after the first quarter)
/// through the static and adaptive arms and returns one row per arm.
pub fn generate(total: usize) -> Vec<Row> {
    let system = opt_4xa40();
    let base = Task::Translation.workload().expect("task statistics are valid");
    let shifted = Workload::new(
        base.input().clone(),
        base.output().with_scaled_mean(SHIFT_FACTOR).expect("valid shift"),
    );

    let engine = system.engine(base.clone());
    let schedule = engine.schedule(Secs::new(LATENCY_BOUND)).expect("bounded schedule exists");
    // Offer load at 96% of the stale plan's capacity on the *shifted*
    // traffic: the static arm runs near saturation post-shift while the
    // re-optimized plan keeps headroom.
    let rate = engine
        .simulator()
        .with_workload(shifted.clone())
        .evaluate(&schedule.config)
        .map(|e| 0.96 * e.throughput)
        .unwrap_or(0.96 * schedule.estimate.throughput);
    let arrivals = poisson_with_shift(&base, &shifted, rate, total / 4, total, SEED);

    let mut rows = Vec::new();
    for (arm, adaptive) in [("static", false), ("adaptive", true)] {
        let report = ServeLoop::new(engine.clone(), &schedule.config, opts(adaptive))
            .expect("schedule is feasible")
            .run(arrivals.clone())
            .expect("serving completes");
        rows.push(row(arm, &report));
    }
    rows
}

/// Renders the rows as the comparison table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arm.clone(),
                r.completed.to_string(),
                format!("{:.2}", r.throughput),
                format!("{:.1}%", 100.0 * r.violation_rate),
                table::opt_f64(r.p99_e2e),
                r.reschedules.to_string(),
                r.plan_swaps.to_string(),
                format!("{:.1}", r.swap_cost),
                r.final_schedule.clone(),
            ]
        })
        .collect();
    format!(
        "Figure 11 (end-to-end serving): ×{SHIFT_FACTOR} mean shift, OPT-13B task T, \
         SLO {SLO_E2E:.0}s\n{}",
        table::render(
            &[
                "arm",
                "served",
                "tput q/s",
                "SLO viol",
                "p99 e2e",
                "resched",
                "swaps",
                "swap s",
                "final schedule",
            ],
            &body,
        )
    )
}
