//! ASCII regeneration of the paper's illustrative timelines (Figures 1, 3
//! and 4): how RRA alternates encode/decode phases on shared GPUs and how
//! WAA dedicates GPU groups to asynchronous encode/decode pipelines.

use exegpt::{Policy, SchedulerOptions};
use exegpt_runner::{RunOptions, Runner};
use exegpt_units::Secs;
use exegpt_workload::Task;

use crate::scenarios::opt_4xa40;

/// Renders a labelled proportional bar.
fn bar(label: &str, seconds: f64, scale: f64) -> String {
    let width = ((seconds * scale).round() as usize).clamp(1, 60);
    format!("{label:<18} |{}| {seconds:.3}s", "█".repeat(width))
}

/// Regenerates the RRA and WAA phase timelines for OPT-13B / task T.
pub fn generate() -> String {
    let system = opt_4xa40();
    let workload = Task::Translation.workload().expect("task statistics are valid");
    let engine = system.engine(workload);
    let mut out = String::from(
        "Illustrative execution timelines (cf. paper Figures 1/3/4)\n\
         One steady-state period per schedule family; bar length ∝ time.\n\n",
    );
    for (name, policies) in
        [("RRA", vec![Policy::Rra]), ("WAA", vec![Policy::WaaCompute, Policy::WaaMemory])]
    {
        let opts = SchedulerOptions { policies, ..SchedulerOptions::bounded(Secs::INFINITY) };
        let Ok(s) = engine.schedule_with(&opts) else { continue };
        let b = s.estimate.breakdown;
        let scale = 50.0 / b.period.as_secs().max(1e-9);
        out.push_str(&format!("{name}: {}\n", s.config.describe()));
        match name {
            "RRA" => {
                // All GPUs alternate: encode phase then N_D decode iterations.
                out.push_str(&bar("  all GPUs: encode", b.encode_time.as_secs(), scale));
                out.push('\n');
                out.push_str(&bar("  all GPUs: decode", b.decode_time.as_secs(), scale));
                out.push('\n');
            }
            _ => {
                // Dedicated groups run concurrently; the period is the max.
                out.push_str(&bar("  enc GPUs: encode", b.encode_time.as_secs(), scale));
                out.push('\n');
                out.push_str(&bar("  dec GPUs: decode", b.decode_time.as_secs(), scale));
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "  period {:.3}s, stages {}, decode pool {}\n",
            b.period.as_secs(),
            b.stages,
            b.decode_batch
        ));
        // A real replay's Gantt over the first few periods.
        let runner = Runner::from_simulator(engine.simulator().clone());
        if let Ok(rep) = runner.run(
            &s.config,
            &RunOptions {
                num_queries: (2 * b.decode_batch).max(120),
                record_trace: true,
                ..Default::default()
            },
        ) {
            if let Some(trace) = rep.trace {
                out.push_str("  replay (first 4 periods):\n");
                for line in trace.render_gantt((b.period * 4.0).as_secs(), 64).lines() {
                    out.push_str("    ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out.push('\n');
    }
    out
}
