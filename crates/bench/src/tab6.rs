//! Table 6: trade-off case study — the schedule and control-variable values
//! the optimizer selects for OPT-13B / task S as the latency bound relaxes
//! (paper §7.8).

use exegpt::SchedulerOptions;
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::opt_4xa40;
use crate::support::bounds_for;
use crate::table;

/// One row of Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Latency bound in seconds.
    pub bound: f64,
    /// Selected schedule family (`RRA` / `WAA-C` / `WAA-M`), `NS` if none.
    pub schedule: String,
    /// Selected control-variable values.
    pub config: String,
    /// Estimated latency of the selection.
    pub latency: Option<f64>,
    /// Estimated throughput of the selection.
    pub throughput: Option<f64>,
}

/// Regenerates Table 6 using the four §7.1-style bounds for this setup.
pub fn generate() -> Vec<Row> {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("task statistics are valid");
    let engine = system.engine(workload.clone());
    bounds_for(&system, &workload)
        .into_iter()
        .map(|bound| match engine.schedule_with(&SchedulerOptions::bounded(bound)) {
            Ok(s) => {
                let family = match &s.config {
                    exegpt::ScheduleConfig::Rra(_) => "RRA".to_string(),
                    exegpt::ScheduleConfig::Waa(c) => match c.variant {
                        exegpt::WaaVariant::Compute => "WAA-C".to_string(),
                        exegpt::WaaVariant::Memory => "WAA-M".to_string(),
                    },
                };
                Row {
                    bound: bound.as_secs(),
                    schedule: family,
                    config: s.config.describe(),
                    latency: Some(s.estimate.latency.as_secs()),
                    throughput: Some(s.estimate.throughput),
                }
            }
            Err(_) => Row {
                bound: bound.as_secs(),
                schedule: "NS".to_string(),
                config: "-".to_string(),
                latency: None,
                throughput: None,
            },
        })
        .collect()
}

/// Renders the rows as the paper's table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                table::bound(r.bound),
                r.schedule.clone(),
                r.config.clone(),
                table::opt_f64(r.latency),
                table::opt_f64(r.throughput),
            ]
        })
        .collect();
    format!(
        "Table 6: selected schedules, OPT-13B task S\n{}",
        table::render(
            &["L_B(s)", "schedule", "control variables", "latency(s)", "tput(q/s)"],
            &body
        )
    )
}
