//! Figure 11: scheduling with limited/incorrect distribution information
//! (§7.6). The WAA schedule chosen for the base translation workload is
//! executed against shifted *actual* distributions — average, standard
//! deviation and skewness changed one at a time — and compared with the
//! schedule re-optimized for each shifted distribution.

use exegpt::{Policy, ScheduleError, SchedulerOptions};
use exegpt_dist::LengthDist;
use exegpt_runner::{RunOptions, Runner};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::Task;
use serde::{Deserialize, Serialize};

use crate::scenarios::opt_4xa40;
use crate::support::bounds_for;
use crate::table;

/// Which output-distribution statistic is shifted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Shift {
    /// Average length scaled by the factor.
    Average,
    /// Standard deviation scaled by the factor.
    StdDev,
    /// Skewness set to the factor (skew-normal family, Figure 11d).
    Skewness,
}

impl std::fmt::Display for Shift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shift::Average => write!(f, "avg"),
            Shift::StdDev => write!(f, "std"),
            Shift::Skewness => write!(f, "skew"),
        }
    }
}

/// One bar of Figure 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Scheduling policy under study (`WAA` for the figure; `RRA` for the
    /// §7.6 text numbers).
    pub policy: String,
    /// Which statistic was shifted.
    pub shift: Shift,
    /// Scale factor (avg/std) or skewness value.
    pub factor: f64,
    /// Throughput of the *non-adjusted* schedule on the shifted traffic.
    pub non_adjusted: Option<f64>,
    /// Throughput of the schedule re-optimized for the shifted distribution.
    pub adjusted: Option<f64>,
    /// 99th-percentile latency of the non-adjusted execution, normalized to
    /// the unshifted case (the figure's gray line).
    pub p99_latency_norm: Option<f64>,
}

fn shifted_output(base: &LengthDist, shift: Shift, factor: f64) -> Option<LengthDist> {
    match shift {
        Shift::Average => base.with_scaled_mean(factor).ok(),
        Shift::StdDev => base.with_scaled_std(factor).ok(),
        Shift::Skewness => {
            LengthDist::skew_normal(base.mean(), base.std(), factor, base.max_len()).ok()
        }
    }
}

/// The factors swept per shift kind.
pub fn factors(shift: Shift) -> Vec<f64> {
    match shift {
        Shift::Average | Shift::StdDev => vec![0.7, 0.85, 1.0, 1.15, 1.3],
        Shift::Skewness => vec![-0.4, -0.2, 0.0, 0.2, 0.4],
    }
}

/// Regenerates Figure 11 for one policy group (WAA as in the figure, or
/// RRA as quoted in the §7.6 text).
pub fn generate(policies: Vec<Policy>, num_queries: usize) -> Vec<Row> {
    let system = opt_4xa40();
    let base_workload = Task::Translation.workload().expect("task statistics are valid");
    // Latency constraint: FT's bottom-30% latency (§7.6).
    let bound = bounds_for(&system, &base_workload)[1];
    let policy_name = if policies.contains(&Policy::Rra) { "RRA" } else { "WAA" };

    let engine = system.engine(base_workload.clone());
    let opts = SchedulerOptions { policies: policies.clone(), ..SchedulerOptions::bounded(bound) };
    let base_schedule = match engine.schedule_with(&opts) {
        Ok(s) => s,
        Err(ScheduleError::NoFeasibleSchedule { .. }) => {
            // Fall back to the unconstrained schedule so the study can run.
            engine
                .schedule_with(&SchedulerOptions {
                    policies: policies.clone(),
                    ..SchedulerOptions::bounded(Secs::INFINITY)
                })
                .expect("unconstrained schedule exists")
        }
        Err(e) => panic!("scheduling failed: {e}"),
    };

    // Baseline p99 for normalization: the base schedule on base traffic.
    let base_runner = Runner::from_simulator(engine.simulator().clone());
    let base_p99 = base_runner
        .run(&base_schedule.config, &RunOptions { num_queries, ..Default::default() })
        .ok()
        .map(|r| r.p99_latency());

    let mut rows = Vec::new();
    for shift in [Shift::Average, Shift::StdDev, Shift::Skewness] {
        for factor in factors(shift) {
            let Some(out) = shifted_output(base_workload.output(), shift, factor) else {
                continue;
            };
            let shifted = Workload::new(base_workload.input().clone(), out);

            // Non-adjusted: plan for the base distribution, serve the
            // shifted traffic.
            let non_adjusted = base_runner
                .run(
                    &base_schedule.config,
                    &RunOptions {
                        num_queries,
                        request_workload: Some(shifted.clone()),
                        ..Default::default()
                    },
                )
                .ok();

            // Adjusted: re-optimize for the shifted distribution (§7.6
            // notes WAA needs a re-allocation/re-deployment for this).
            let shifted_engine = engine.with_workload(shifted.clone());
            let adjusted = shifted_engine
                .schedule_with(&SchedulerOptions {
                    policies: policies.clone(),
                    ..SchedulerOptions::bounded(bound)
                })
                .ok()
                .and_then(|s| {
                    Runner::from_simulator(shifted_engine.simulator().clone())
                        .run(&s.config, &RunOptions { num_queries, ..Default::default() })
                        .ok()
                });

            rows.push(Row {
                policy: policy_name.to_string(),
                shift,
                factor,
                non_adjusted: non_adjusted.as_ref().map(|r| r.throughput),
                adjusted: adjusted.map(|r| r.throughput),
                p99_latency_norm: match (non_adjusted.as_ref(), base_p99) {
                    (Some(r), Some(b)) if b > 0.0 => Some(r.p99_latency() / b),
                    _ => None,
                },
            });
        }
    }
    rows
}

/// Renders the rows as the figure's table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.shift.to_string(),
                format!("{:+.2}", r.factor),
                table::opt_f64(r.non_adjusted),
                table::opt_f64(r.adjusted),
                table::opt_f64(r.p99_latency_norm),
            ]
        })
        .collect();
    format!(
        "Figure 11: distribution shift, OPT-13B task T (queries/s; p99 normalized)\n{}",
        table::render(&["policy", "shift", "factor", "non-adj", "re-opt", "p99/base"], &body)
    )
}
