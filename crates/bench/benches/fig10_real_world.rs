//! Figure 10 bench: prints the real-world-dataset comparison, then times
//! the dataset-to-workload estimation step.

use criterion::{criterion_group, Criterion};
use exegpt_bench::fig10;
use exegpt_workload::Dataset;

fn print_figure() {
    let rows = fig10::generate(150);
    println!("{}", fig10::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    let dataset = Dataset::alpaca(4000, 7);
    c.bench_function("fig10/estimate_workload_from_4k_pairs", |b| {
        b.iter(|| dataset.estimate_workload().expect("non-empty"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
