//! Figure 8 bench: prints the large-model comparison for the 16xA100
//! deployment (the full figure is `figures -- fig8`), then times a
//! large-model scheduling run.

use criterion::{criterion_group, Criterion};
use exegpt::Policy;
use exegpt_bench::scenarios::large_systems;
use exegpt_bench::{fig8, support};
use exegpt_workload::Task;

fn print_figure() {
    let systems = &large_systems()[..1]; // GPT-3 101B / 16xA100
    let rows = fig8::generate(systems, 150);
    println!("{}", fig8::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    let system = large_systems().remove(0);
    let workload = Task::CodeGeneration.workload().expect("valid");
    let bound = support::bounds_for(&system, &workload)[1];
    let engine = system.engine(workload);
    c.bench_function("fig8/schedule_gpt3_101b_taskG_rra", |b| {
        b.iter(|| {
            engine
                .schedule_with(&exegpt::SchedulerOptions {
                    policies: vec![Policy::Rra],
                    ..exegpt::SchedulerOptions::bounded(bound)
                })
                .expect("feasible")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
