//! Serving-loop shift bench: prints the static-vs-adaptive comparison of
//! the §7.6 experiment played end-to-end through `exegpt-serve`, then
//! times one adaptive serving run (arrivals → drift → live reschedule).

use criterion::{criterion_group, Criterion};
use exegpt_bench::serve_shift;

fn print_figure() {
    // Reduced stream for bench output; the full 2000-request regeneration
    // (where the SLO separation appears) runs via the `figures` binary.
    let rows = serve_shift::generate(600);
    println!("{}", serve_shift::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("serve_shift/adaptive_600_requests", |b| {
        b.iter(|| serve_shift::generate(600))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
