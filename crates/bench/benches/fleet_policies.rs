//! Fleet fabric bench: prints the dispatch-policy comparison (same
//! multi-tenant stream, heterogeneous fleet, mid-run replica loss) played
//! end-to-end through `exegpt-fleet`, then times one SLO-aware fleet run —
//! routing, rerouting, autoscaling and all — as the fabric's wall-clock
//! cost per request.

use criterion::{criterion_group, Criterion};
use exegpt_bench::fleet;

fn print_figure() {
    // Reduced stream for bench output; the full regeneration (where the
    // A40 queues separate the policies) runs via the `figures` binary.
    let rows = fleet::generate(1000);
    println!("{}", fleet::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("fleet/four_policies_1000_requests", |b| b.iter(|| fleet::generate(1000)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
