//! Figure 11 bench: prints the distribution-shift study (WAA side), then
//! times the re-optimization a distribution change triggers (§7.6-§7.7).

use criterion::{criterion_group, Criterion};
use exegpt::{Policy, SchedulerOptions};
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_bench::{fig11, support};
use exegpt_sim::Workload;
use exegpt_workload::Task;

fn print_figure() {
    let rows = fig11::generate(vec![Policy::WaaCompute, Policy::WaaMemory], 150);
    println!("{}", fig11::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    let system = opt_4xa40();
    let base = Task::Translation.workload().expect("valid");
    let bound = support::bounds_for(&system, &base)[1];
    let engine = system.engine(base.clone());
    let shifted =
        Workload::new(base.input().clone(), base.output().with_scaled_mean(1.15).expect("valid"));
    c.bench_function("fig11/reschedule_after_shift", |b| {
        b.iter(|| {
            engine
                .with_workload(shifted.clone())
                .schedule_with(&SchedulerOptions::bounded(bound))
                .ok()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
