//! Figure 9 bench: prints the FT-vs-WAA memory comparison, then times one
//! WAA evaluation (the memory accounting path).

use criterion::{criterion_group, Criterion};
use exegpt::{TpConfig, WaaConfig, WaaVariant};
use exegpt_bench::fig9;
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_workload::Task;

fn print_figure() {
    let rows = fig9::generate();
    println!("{}", fig9::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    let sim = opt_4xa40().simulator_for(Task::Translation);
    let cfg = WaaConfig::new(2, 3, TpConfig::none(), WaaVariant::Memory);
    c.bench_function("fig9/evaluate_waa_memory_variant", |b| {
        b.iter(|| sim.evaluate_waa(&cfg).expect("feasible"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
