//! Table 7 bench: prints the stage-time variance table, then times one
//! runner replay (the measurement instrument itself).

use criterion::{criterion_group, Criterion};
use exegpt::{RraConfig, ScheduleConfig, TpConfig};
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_bench::tab7;
use exegpt_runner::{RunOptions, Runner};
use exegpt_workload::Task;

fn print_figure() {
    println!("{}", tab7::render(&tab7::generate(1000)));
}

fn bench_kernel(c: &mut Criterion) {
    let runner = Runner::from_simulator(opt_4xa40().simulator_for(Task::Summarization));
    let cfg = ScheduleConfig::Rra(RraConfig::new(16, 16, TpConfig::none()));
    let opts = RunOptions { num_queries: 200, ..Default::default() };
    c.bench_function("tab7/replay_200_queries", |b| {
        b.iter(|| runner.run(&cfg, &opts).expect("runs"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
