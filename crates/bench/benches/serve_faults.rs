//! Graceful-degradation bench: prints the tolerate-vs-degrade comparison
//! on a faulty stream (mid-run 3× straggler) played end-to-end through
//! `exegpt-serve`, then times one degrading serving run (straggler
//! confirmation → eviction → replan → recovery).

use criterion::{criterion_group, Criterion};
use exegpt_bench::serve_faults;

fn print_figure() {
    // Reduced stream for bench output; the full 2000-request regeneration
    // (where the SLO separation appears) runs via the `figures` binary.
    let rows = serve_faults::generate(600);
    println!("{}", serve_faults::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("serve_faults/degrade_600_requests", |b| {
        b.iter(|| serve_faults::generate(600))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
