//! Figure 6 bench: prints the ExeGPT-vs-FT comparison for the 4-GPU
//! deployment (the full figure is `figures -- fig6`), then times one
//! constraint-aware scheduling run — the paper's §7.7 scheduling cost.

use criterion::{criterion_group, Criterion};
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_bench::{fig6, support};
use exegpt_workload::Task;

fn print_figure() {
    let rows = fig6::generate(&[opt_4xa40()], 150);
    println!("{}", fig6::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("valid");
    let bound = support::bounds_for(&system, &workload)[1];
    let engine = system.engine(workload);
    c.bench_function("fig6/schedule_opt13b_taskS_bounded", |b| {
        b.iter(|| engine.schedule(bound).expect("feasible"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
