//! Figure 7 bench: prints the existing-systems comparison, then times the
//! FT baseline's batch-sweep planning.

use criterion::{criterion_group, Criterion};
use exegpt_baselines::FasterTransformer;
use exegpt_bench::fig7;
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_workload::Task;

fn print_figure() {
    let rows = fig7::generate(150);
    println!("{}", fig7::render(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    let sim = opt_4xa40().simulator_for(Task::Translation);
    let ft = FasterTransformer::paper_default(sim).expect("grid builds");
    c.bench_function("fig7/ft_plan_unbounded", |b| {
        b.iter(|| ft.plan(exegpt_units::Secs::INFINITY).expect("feasible"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
