//! Ablations of the design choices DESIGN.md calls out (beyond the paper's
//! own figures):
//!
//! 1. Early termination + cache compaction (ExeGPT RRA) versus fixed-batch
//!    decoding to the batch maximum (FT) at a *matched* admission batch —
//!    isolating the paper's diminishing-batch argument from batch sizing.
//! 2. Dynamic workload adjustment (§5.2) on/off: effect on encoder
//!    stage-time spread.
//! 3. KV reservation disciplines: peak cache bytes under up-front,
//!    incremental, and paged policies at matched load.

use criterion::{criterion_group, Criterion};
use exegpt::{RraConfig, ScheduleConfig, TpConfig};
use exegpt_baselines::FasterTransformer;
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_runner::{KvTracker, ReservePolicy, RunOptions, Runner};
use exegpt_workload::Task;

fn print_ablations() {
    let system = opt_4xa40();
    let sim = system.simulator_for(Task::Translation);
    println!("Ablations (OPT-13B / 4xA40, task T)");

    // 1. Early termination at a matched resident batch: RRA's steady pool
    //    size B_D is handed to FT as its static batch, so both keep the
    //    same number of queries resident; only the termination/refill
    //    policy differs.
    let runner = Runner::from_simulator(sim.clone());
    let cfg16 = RraConfig::new(16, 16, TpConfig::none());
    let pool = sim.evaluate_rra(&cfg16).expect("feasible").breakdown.decode_batch;
    let rra = runner
        .run(
            &ScheduleConfig::Rra(cfg16),
            &RunOptions { num_queries: 4 * pool, warmup_frac: 0.25, ..Default::default() },
        )
        .expect("runs");
    let ft = FasterTransformer::paper_default(sim.clone()).expect("grid builds");
    let ft_rep = ft
        .run(pool, &RunOptions { num_queries: 4 * pool, warmup_frac: 0.25, ..Default::default() })
        .expect("runs");
    println!(
        "  early termination at matched resident batch {pool}: \
         ExeGPT-RRA {:.2} q/s vs FT fixed-batch {:.2} q/s ({:.2}x)",
        rra.throughput,
        ft_rep.throughput,
        rra.throughput / ft_rep.throughput
    );

    // 2. Dynamic adjustment on/off.
    let cfg = ScheduleConfig::Rra(RraConfig::new(16, 16, TpConfig::none()));
    let with = runner
        .run(&cfg, &RunOptions { num_queries: 600, adjust_threshold: 0.15, ..Default::default() })
        .expect("runs");
    let without = runner
        .run(&cfg, &RunOptions { num_queries: 600, adjust_threshold: 2.0, ..Default::default() })
        .expect("runs");
    let spread = |r: &exegpt_runner::RunReport| {
        let (mean, half) = r.encoder_stage_stats();
        if mean > 0.0 {
            100.0 * half / mean
        } else {
            0.0
        }
    };
    println!(
        "  dynamic adjustment: encoder stage spread ±{:.1}% (on) vs ±{:.1}% (off)",
        spread(&with),
        spread(&without)
    );

    // 3. KV disciplines at matched load (tracked in tokens: 256 queries,
    //    input 128, actual output 128, declared maximum 320).
    let mut results = Vec::new();
    for (name, policy) in [
        ("up-front", ReservePolicy::UpFront),
        ("incremental", ReservePolicy::Incremental),
        ("paged(16)", ReservePolicy::Paged { page_tokens: 16 }),
    ] {
        let mut kv = KvTracker::new(1.0, u64::MAX >> 1, policy);
        for id in 0..256u64 {
            let _ = kv.try_admit(id, 128, 320);
            let _ = kv.grow(id, 128);
        }
        results.push(format!("{name} {}k tokens", kv.peak_bytes() / 1000));
    }
    println!("  kv peak at matched load (256 queries): {}", results.join(", "));
    println!();
}

fn bench_kernel(c: &mut Criterion) {
    let runner = Runner::from_simulator(opt_4xa40().simulator_for(Task::Translation));
    let cfg = ScheduleConfig::Rra(RraConfig::new(16, 16, TpConfig::none()));
    c.bench_function("ablations/replay_with_adjustment", |b| {
        b.iter(|| {
            runner.run(&cfg, &RunOptions { num_queries: 200, ..Default::default() }).expect("runs")
        })
    });
    c.bench_function("ablations/replay_without_adjustment", |b| {
        b.iter(|| {
            runner
                .run(
                    &cfg,
                    &RunOptions { num_queries: 200, adjust_threshold: 2.0, ..Default::default() },
                )
                .expect("runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_ablations();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
