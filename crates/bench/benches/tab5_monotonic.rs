//! Table 5 bench: prints the monotonicity measurements, then times one
//! full control-variable sweep.

use criterion::{criterion_group, Criterion};
use exegpt::{RraConfig, TpConfig};
use exegpt_bench::scenarios::gpt39b_for_tab5;
use exegpt_bench::tab5;
use exegpt_workload::Task;

fn print_figure() {
    println!("{}", tab5::render(&tab5::generate()));
}

fn bench_kernel(c: &mut Criterion) {
    let sim = gpt39b_for_tab5().simulator_for(Task::Summarization);
    c.bench_function("tab5/sweep_b_e_24_points", |b| {
        b.iter(|| {
            (1..=24)
                .filter_map(|i| sim.evaluate_rra(&RraConfig::new(4 * i, 16, TpConfig::none())).ok())
                .count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
