//! Table 6 bench: prints the trade-off case study, then times the
//! portfolio scheduling run behind one of its rows.

use criterion::{criterion_group, Criterion};
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_bench::{support, tab6};
use exegpt_workload::Task;

fn print_figure() {
    println!("{}", tab6::render(&tab6::generate()));
}

fn bench_kernel(c: &mut Criterion) {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("valid");
    let bound = support::bounds_for(&system, &workload)[0];
    let engine = system.engine(workload);
    c.bench_function("tab6/schedule_tightest_bound", |b| {
        b.iter(|| engine.schedule(bound).expect("feasible"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
