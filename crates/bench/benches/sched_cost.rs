//! Scheduling-cost study (paper §7.7 and §5): branch-and-bound versus
//! exhaustive grid search and the black-box alternative (§5 mentions
//! Bayesian optimization; a budget-matched random search stands in for the
//! black-box family) — solution quality, evaluation counts, and wall-clock
//! time. The paper reports seconds-to-minutes for its scheduler
//! versus five-plus hours for exhaustive search; this bench reproduces the
//! same orders-of-magnitude gap in evaluation counts on the simulated
//! substrate, and the Criterion timings below are genuine wall-clock
//! measurements of the same algorithm the paper runs.

// The bench crate is exempt from xlint D2; mirror that for clippy.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, Criterion};
use exegpt::{RraConfig, SchedulerOptions, TpConfig};
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_bench::support;
use exegpt_workload::Task;

/// Exhaustive reference: evaluate every (B_E, N_D) RRA point at TP=none.
fn exhaustive(
    sim: &exegpt_sim::Simulator,
    bound: exegpt_units::Secs,
    max_b_e: usize,
    max_n_d: usize,
) -> (f64, usize) {
    let mut best = 0.0f64;
    let mut evals = 0usize;
    for b_e in 1..=max_b_e {
        for n_d in 1..=max_n_d {
            evals += 1;
            if let Ok(est) = sim.evaluate_rra(&RraConfig::new(b_e, n_d, TpConfig::none())) {
                if est.latency <= bound {
                    best = best.max(est.throughput);
                }
            }
        }
    }
    (best, evals)
}

fn print_comparison() {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("valid");
    let bound = support::bounds_for(&system, &workload)[1];
    let engine = system.engine(workload);

    // Same space for both searches: RRA over B_E x N_D at TP=none.
    let opts = SchedulerOptions {
        policies: vec![exegpt::Policy::Rra],
        max_b_e: Some(128),
        max_n_d: Some(64),
        tp_configs: Some(vec![TpConfig::none()]),
        ..SchedulerOptions::bounded(bound)
    };
    let bnb = engine.schedule_with(&opts).expect("feasible");
    let (ex_best, ex_evals) = exhaustive(engine.simulator(), bound, 128, 64);

    // Budget-matched black-box baseline over the same RRA space.
    let sim = engine.simulator();
    let rnd =
        exegpt::search::random_search(
            (1, 128),
            (1, 64),
            bound,
            bnb.evals,
            42,
            |b_e, n_d| match sim.evaluate_rra(&RraConfig::new(b_e, n_d, TpConfig::none())) {
                Ok(e) => exegpt::bnb::Perf { latency: e.latency, throughput: e.throughput },
                Err(_) => exegpt::bnb::Perf::INFEASIBLE,
            },
        );

    println!("Scheduling cost (paper 7.7): branch-and-bound vs alternatives");
    let bound_s = bound.as_secs();
    println!("setup: OPT-13B / 4xA40, task S, L_B = {bound_s:.1}s, RRA over B_E x N_D at TP=none");
    println!(
        "  branch-and-bound: throughput {:.2} q/s with {} evaluations",
        bnb.estimate.throughput, bnb.evals
    );
    println!("  exhaustive      : throughput {:.2} q/s with {} evaluations", ex_best, ex_evals);
    match rnd {
        Some(r) => println!(
            "  random search   : throughput {:.2} q/s with {} evaluations (budget-matched)",
            r.perf.throughput, r.evals
        ),
        None => println!("  random search   : found nothing feasible at the matched budget"),
    }
    println!(
        "  quality {:.1}% of exhaustive at {:.1}x fewer evaluations\n",
        100.0 * bnb.estimate.throughput / ex_best.max(f64::MIN_POSITIVE),
        ex_evals as f64 / bnb.evals.max(1) as f64
    );
}

/// Wall-clock study of the full scheduler entry point at default options
/// (all policies, all TP settings): the paper's end-to-end scheduling cost
/// (§7.7), reported as seconds and evaluations per second.
fn print_full_schedule_cost() {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("valid");
    let bound = support::bounds_for(&system, &workload)[1];
    let engine = system.engine(workload.clone());
    let opts = SchedulerOptions::bounded(bound);

    // Cold: a fresh engine per run, so per-workload state (the evaluation
    // cache) starts empty, as at first deployment.
    let runs = 5;
    let mut cold = Vec::with_capacity(runs);
    let mut schedule = None;
    for _ in 0..runs {
        let fresh = engine.with_workload(workload.clone());
        let start = std::time::Instant::now();
        let s = fresh.schedule_with(&opts).expect("feasible");
        cold.push(start.elapsed());
        schedule = Some(s);
    }
    // Warm: repeat runs on one engine, as when re-scheduling for a new
    // latency bound on an unchanged workload.
    let warm_engine = engine.with_workload(workload.clone());
    warm_engine.schedule_with(&opts).expect("feasible");
    let mut warm = Vec::with_capacity(runs);
    let mut warm_schedule = None;
    for _ in 0..runs {
        let start = std::time::Instant::now();
        warm_schedule = Some(warm_engine.schedule_with(&opts).expect("feasible"));
        warm.push(start.elapsed());
    }
    let warm_schedule = warm_schedule.expect("ran");
    let schedule = schedule.expect("ran");
    let mean = |v: &[std::time::Duration]| {
        v.iter().map(std::time::Duration::as_secs_f64).sum::<f64>() / v.len() as f64
    };
    let (cold_s, warm_s) = (mean(&cold), mean(&warm));
    println!("Full Scheduler::schedule at default options (all policies/TP settings):");
    println!(
        "  cold (fresh engine): {:8.2} ms/run, {} evals ({} cache hits), {:.0} evals/s",
        cold_s * 1e3,
        schedule.evals,
        schedule.cache_hits,
        schedule.evals as f64 / cold_s
    );
    println!(
        "  warm (reused engine): {:7.2} ms/run, {} evals, {} cache hits (incl. plan/completion lookups)\n",
        warm_s * 1e3,
        warm_schedule.evals,
        warm_schedule.cache_hits
    );
}

fn bench_kernel(c: &mut Criterion) {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("valid");
    let bound = support::bounds_for(&system, &workload)[1];
    let engine = system.engine(workload.clone());
    let opts = SchedulerOptions {
        policies: vec![exegpt::Policy::Rra],
        max_b_e: Some(128),
        max_n_d: Some(64),
        tp_configs: Some(vec![TpConfig::none()]),
        ..SchedulerOptions::bounded(bound)
    };
    c.bench_function("sched_cost/branch_and_bound", |b| {
        b.iter(|| engine.schedule_with(&opts).expect("feasible"))
    });
    let sim = engine.simulator().clone();
    c.bench_function("sched_cost/exhaustive_128x64", |b| {
        b.iter(|| exhaustive(&sim, bound, 128, 64))
    });
    let default_opts = SchedulerOptions::bounded(bound);
    c.bench_function("sched_cost/full_schedule_default_cold", |b| {
        b.iter(|| {
            engine.with_workload(workload.clone()).schedule_with(&default_opts).expect("feasible")
        })
    });
    c.bench_function("sched_cost/full_schedule_default_warm", |b| {
        b.iter(|| engine.schedule_with(&default_opts).expect("feasible"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_comparison();
    print_full_schedule_cost();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
