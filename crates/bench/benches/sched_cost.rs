//! Scheduling-cost study (paper §7.7 and §5): branch-and-bound versus
//! exhaustive grid search and the black-box alternative (§5 mentions
//! Bayesian optimization; a budget-matched random search stands in for the
//! black-box family) — solution quality, evaluation counts, and wall-clock
//! time. The paper reports seconds-to-minutes for its scheduler
//! versus five-plus hours for exhaustive search; this bench reproduces the
//! same orders-of-magnitude gap in evaluation counts on the simulated
//! substrate, and the Criterion timings below are genuine wall-clock
//! measurements of the same algorithm the paper runs.

use criterion::{criterion_group, Criterion};
use exegpt::{RraConfig, SchedulerOptions, TpConfig};
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_bench::support;
use exegpt_workload::Task;

/// Exhaustive reference: evaluate every (B_E, N_D) RRA point at TP=none.
fn exhaustive(sim: &exegpt_sim::Simulator, bound: f64, max_b_e: usize, max_n_d: usize) -> (f64, usize) {
    let mut best = 0.0f64;
    let mut evals = 0usize;
    for b_e in 1..=max_b_e {
        for n_d in 1..=max_n_d {
            evals += 1;
            if let Ok(est) = sim.evaluate_rra(&RraConfig::new(b_e, n_d, TpConfig::none())) {
                if est.latency <= bound {
                    best = best.max(est.throughput);
                }
            }
        }
    }
    (best, evals)
}

fn print_comparison() {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("valid");
    let bound = support::bounds_for(&system, &workload)[1];
    let engine = system.engine(workload);

    // Same space for both searches: RRA over B_E x N_D at TP=none.
    let opts = SchedulerOptions {
        policies: vec![exegpt::Policy::Rra],
        max_b_e: Some(128),
        max_n_d: Some(64),
        tp_configs: Some(vec![TpConfig::none()]),
        ..SchedulerOptions::bounded(bound)
    };
    let bnb = engine.schedule_with(&opts).expect("feasible");
    let (ex_best, ex_evals) = exhaustive(engine.simulator(), bound, 128, 64);

    // Budget-matched black-box baseline over the same RRA space.
    let sim = engine.simulator();
    let rnd = exegpt::search::random_search(
        (1, 128),
        (1, 64),
        bound,
        bnb.evals,
        42,
        |b_e, n_d| match sim.evaluate_rra(&RraConfig::new(b_e, n_d, TpConfig::none())) {
            Ok(e) => exegpt::bnb::Perf { latency: e.latency, throughput: e.throughput },
            Err(_) => exegpt::bnb::Perf::INFEASIBLE,
        },
    );

    println!("Scheduling cost (paper 7.7): branch-and-bound vs alternatives");
    println!("setup: OPT-13B / 4xA40, task S, L_B = {bound:.1}s, RRA over B_E x N_D at TP=none");
    println!("  branch-and-bound: throughput {:.2} q/s with {} evaluations", bnb.estimate.throughput, bnb.evals);
    println!("  exhaustive      : throughput {:.2} q/s with {} evaluations", ex_best, ex_evals);
    match rnd {
        Some(r) => println!(
            "  random search   : throughput {:.2} q/s with {} evaluations (budget-matched)",
            r.perf.throughput, r.evals
        ),
        None => println!("  random search   : found nothing feasible at the matched budget"),
    }
    println!(
        "  quality {:.1}% of exhaustive at {:.1}x fewer evaluations\n",
        100.0 * bnb.estimate.throughput / ex_best.max(f64::MIN_POSITIVE),
        ex_evals as f64 / bnb.evals.max(1) as f64
    );
}

fn bench_kernel(c: &mut Criterion) {
    let system = opt_4xa40();
    let workload = Task::Summarization.workload().expect("valid");
    let bound = support::bounds_for(&system, &workload)[1];
    let engine = system.engine(workload);
    let opts = SchedulerOptions {
        policies: vec![exegpt::Policy::Rra],
        max_b_e: Some(128),
        max_n_d: Some(64),
        tp_configs: Some(vec![TpConfig::none()]),
        ..SchedulerOptions::bounded(bound)
    };
    c.bench_function("sched_cost/branch_and_bound", |b| {
        b.iter(|| engine.schedule_with(&opts).expect("feasible"))
    });
    let sim = engine.simulator().clone();
    c.bench_function("sched_cost/exhaustive_128x64", |b| {
        b.iter(|| exhaustive(&sim, bound, 128, 64))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_comparison();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
