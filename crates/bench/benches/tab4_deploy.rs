//! Table 4 bench: prints the deployment-cost table, then times the loading
//! model itself.

use criterion::{criterion_group, Criterion};
use exegpt_bench::tab4;
use exegpt_cluster::{ClusterSpec, LoadCostModel, LoadSource};
use exegpt_model::ModelConfig;

fn print_figure() {
    println!("{}", tab4::render(&tab4::generate()));
}

fn bench_kernel(c: &mut Criterion) {
    let lcm = LoadCostModel::new(ClusterSpec::a40_cluster());
    let bytes = ModelConfig::gpt3_341b().param_bytes();
    c.bench_function("tab4/load_time_341b", |b| {
        b.iter(|| lcm.load_time(bytes, 48, LoadSource::Ssd))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_kernel
}

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
