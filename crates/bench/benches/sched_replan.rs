//! Replan-latency study (incremental replanning): wall-clock cost of
//! reacting to workload drift, GPU loss, and GPU recovery through the
//! warm-started neighborhood replan versus re-running the full
//! branch-and-bound search. The replanned plans are certified byte-identical
//! to the full search's (`crates/core/tests/replan.rs` and the serve shift
//! tests lock this in); this bench measures what the certification buys —
//! replan latency — plus the serving loop's end-to-end wall-clock with the
//! incremental path on and off.
//!
//! Every scenario rebuilds its cache state from scratch on each run
//! (replans are one-shot events, not steady-state kernels), and the
//! reported time is the minimum over the runs: scheduler noise only ever
//! inflates a run, and the work per run is deterministic.

// The bench crate is exempt from xlint D2; mirror that for clippy.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use exegpt::{Engine, Replan, ReplanDelta, Schedule, SchedulerOptions};
use exegpt_bench::scenarios::opt_4xa40;
use exegpt_dist::LengthDist;
use exegpt_serve::{poisson_with_shift, DriftOptions, ServeLoop, ServeOptions, SloTargets};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::Task;

/// Latency bound of the replan scenarios (matches `core/tests/replan.rs`).
const BOUND: Secs = Secs::new(30.0);
/// Runs per timing (the minimum is reported).
const RUNS: usize = 5;

fn base_workload() -> Workload {
    Workload::new(
        LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
        LengthDist::truncated_normal(32.0, 13.0, 80).expect("valid"),
    )
}

/// The drifted output distribution of the core replan tests: mean ×1.5.
fn drifted_workload() -> Workload {
    Workload::new(
        LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
        LengthDist::truncated_normal(48.0, 19.5, 120).expect("valid"),
    )
}

fn sched_opts() -> SchedulerOptions {
    SchedulerOptions::bounded(BOUND)
}

fn timed<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

/// Minimum-time run out of [`RUNS`]; the runs compute identical values.
fn min_over<T>(mut f: impl FnMut() -> (Duration, T)) -> (Duration, T) {
    let mut best = f();
    for _ in 1..RUNS {
        let next = f();
        if next.0 < best.0 {
            best = next;
        }
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn schedule_line(label: &str, d: Duration, s: &Schedule) {
    println!("  {label:<28}: {:8.2} ms, {:5} evals, {:5} cache hits", ms(d), s.evals, s.cache_hits);
}

fn replan_line(label: &str, d: Duration, r: &Replan, baseline: Duration) {
    println!(
        "  {label:<28}: {:8.2} ms, {:5} evals, {:5} cache hits, fell_back={} ({:.1}x vs full)",
        ms(d),
        r.schedule.evals,
        r.schedule.cache_hits,
        r.fell_back,
        baseline.as_secs_f64() / d.as_secs_f64().max(f64::MIN_POSITIVE),
    );
}

fn print_replan_latency() {
    let system = opt_4xa40();
    let opts = sched_opts();
    let base = base_workload();
    let drifted = drifted_workload();
    let engine = system.engine(base.clone());
    let survivors = engine.simulator().cluster().survivors(1).expect("degradable");

    println!("Replan latency: warm-started neighborhood replan vs full branch-and-bound");
    println!("setup: {}, L_B = {:.1}s, mean output drift x1.5, 1-GPU fault", system.name, {
        BOUND.as_secs()
    });

    // Full searches: cold (fresh cache, as at first deployment) and warm
    // (re-search on an unchanged engine — the do-nothing alternative every
    // replan competes against).
    let (cold_t, incumbent) = min_over(|| {
        let fresh = engine.with_workload(base.clone());
        timed(|| fresh.schedule_with(&opts).expect("feasible"))
    });
    engine.schedule_with(&opts).expect("feasible");
    let (warm_t, warm) = min_over(|| timed(|| engine.schedule_with(&opts).expect("feasible")));
    schedule_line("cold full search", cold_t, &incumbent);
    schedule_line("warm full search", warm_t, &warm);

    // Steady replan: nothing changed; the neighborhood search re-certifies
    // the incumbent. Each run rebuilds the warm cache it starts from.
    let (steady_t, steady) = min_over(|| {
        let fresh = engine.with_workload(base.clone());
        let inc = fresh.schedule_with(&opts).expect("feasible");
        timed(|| fresh.replan_from(&inc, ReplanDelta::default(), &opts).expect("replans"))
    });
    replan_line("steady replan (no change)", steady_t, &steady, warm_t);

    // Drift: the output distribution shifted, so every cache entry is stale
    // (workload swaps start a fresh cache). Baseline is the cold full
    // search on the drifted workload — the only full-search alternative.
    let (cold_drift_t, cold_drift) = min_over(|| {
        let fresh = engine.with_workload(drifted.clone());
        timed(|| fresh.schedule_with(&opts).expect("feasible"))
    });
    let (drift_t, drift) = min_over(|| {
        let mut moved = engine.clone();
        timed(|| moved.reschedule_incremental(drifted.clone(), &incumbent, &opts).expect("replans"))
    });
    schedule_line("cold full search (drifted)", cold_drift_t, &cold_drift);
    replan_line("drift replan", drift_t, &drift, cold_drift_t);

    // Fault: one GPU lost. Cluster-independent cache layers stay warm, so
    // the fair baseline is the full search on the survivors *sharing* the
    // incumbent's cache — exactly what a serve loop would otherwise run.
    let fault_delta = ReplanDelta { gpu_delta: -1, workload_changed: false };
    let (full_fault_t, full_fault) = min_over(|| {
        let fresh = engine.with_workload(base.clone());
        fresh.schedule_with(&opts).expect("feasible");
        let degraded = fresh.with_cluster(survivors.clone());
        timed(|| degraded.schedule_with(&opts).expect("feasible"))
    });
    let (fault_t, fault) = min_over(|| {
        let fresh = engine.with_workload(base.clone());
        let inc = fresh.schedule_with(&opts).expect("feasible");
        let degraded = fresh.with_cluster(survivors.clone());
        timed(|| degraded.replan_from(&inc, fault_delta, &opts).expect("replans"))
    });
    schedule_line("full search on survivors", full_fault_t, &full_fault);
    replan_line("fault replan (-1 GPU)", fault_t, &fault, full_fault_t);

    // Recovery: the lost GPU returns; the original topology's entries are
    // still cached, so the replan mostly certifies from hits. The first
    // replan still probes staircase-walk points the full search never
    // evaluated; once those are resident, further replans are pure hits.
    let recovery_delta = ReplanDelta { gpu_delta: 1, workload_changed: false };
    let (recovery_t, recovery) = min_over(|| {
        let fresh = engine.with_workload(base.clone());
        let inc = fresh.schedule_with(&opts).expect("feasible");
        let degraded = fresh.with_cluster(survivors.clone());
        let fault_plan = degraded.replan_from(&inc, fault_delta, &opts).expect("replans");
        let recovered = degraded.with_cluster(engine.simulator().cluster().clone());
        timed(|| {
            recovered.replan_from(&fault_plan.schedule, recovery_delta, &opts).expect("replans")
        })
    });
    replan_line("recovery replan (+1 GPU)", recovery_t, &recovery, warm_t);

    // The smoke-gate scenario: warm replan vs warm full search on the SAME
    // fully warm cache, so the measured gap is the search itself (staircase
    // certification over ~1k points vs re-running ~7k-eval branch-and-
    // bound), not cache luck.
    let degraded = engine.with_cluster(survivors.clone());
    let fault_plan = degraded.replan_from(&incumbent, fault_delta, &opts).expect("replans");
    let recovered = degraded.with_cluster(engine.simulator().cluster().clone());
    recovered.replan_from(&fault_plan.schedule, recovery_delta, &opts).expect("replans");
    let (warm_rec_t, warm_rec) = min_over(|| {
        timed(|| {
            recovered.replan_from(&fault_plan.schedule, recovery_delta, &opts).expect("replans")
        })
    });
    replan_line("recovery replan (warm)", warm_rec_t, &warm_rec, warm_t);
    println!(
        "  gate: warm recovery replan is {:.1}x faster than the warm full search (CI floor 10x)\n",
        warm_t.as_secs_f64() / warm_rec_t.as_secs_f64().max(f64::MIN_POSITIVE),
    );
}

/// End-to-end serving wall-clock on the golden §7.6 shift scenario: the
/// adaptive arm with incremental replanning on versus off. Both arms serve
/// byte-identical event logs (locked in by `serve/tests/shift.rs`); the
/// difference is pure replan latency inside the loop.
fn print_serve_wall_clock(total: usize) {
    let system = opt_4xa40();
    let base = Task::Translation.workload().expect("valid");
    let shifted =
        Workload::new(base.input().clone(), base.output().with_scaled_mean(1.5).expect("valid"));
    let engine = system.engine(base.clone());
    let schedule = engine.schedule(BOUND).expect("feasible");
    let rate = engine
        .simulator()
        .with_workload(shifted.clone())
        .evaluate(&schedule.config)
        .map(|e| 0.96 * e.throughput)
        .unwrap_or(0.96 * schedule.estimate.throughput);
    let arrivals = poisson_with_shift(&base, &shifted, rate, total / 4, total, 7);

    println!("Serving-loop wall-clock ({total} requests, x1.5 mean shift, adaptive arm):");
    for (label, incremental) in [("incremental replan", true), ("full-search replan", false)] {
        let opts = ServeOptions {
            slo: SloTargets::e2e(BOUND * 1.2),
            adaptive: true,
            incremental_replan: incremental,
            scheduler: sched_opts(),
            drift: DriftOptions {
                window: 128,
                min_samples: 48,
                check_every: 16,
                rel_threshold: 0.15,
                consecutive: 2,
            },
            ..ServeOptions::default()
        };
        let serve = ServeLoop::new(engine.clone(), &schedule.config, opts).expect("feasible");
        let (wall, report) = timed(|| serve.run(arrivals.clone()).expect("serves"));
        println!(
            "  {label:<18}: {:7.0} ms wall, {:6.0} simulated requests/wall-second, \
             reschedules={} (incremental={}, fallbacks={})",
            ms(wall),
            report.completed as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
            report.reschedules,
            report.incremental_replans,
            report.replan_fallbacks,
        );
    }
    println!();
}

fn bench_kernel(c: &mut Criterion) {
    let opts = sched_opts();
    let base = base_workload();
    let engine = opt_4xa40().engine(base.clone());
    let incumbent = engine.schedule_with(&opts).expect("feasible");

    c.bench_function("sched_replan/full_schedule_warm", |b| {
        b.iter(|| engine.schedule_with(&opts).expect("feasible"))
    });
    c.bench_function("sched_replan/steady_replan_warm", |b| {
        b.iter(|| engine.replan_from(&incumbent, ReplanDelta::default(), &opts).expect("replans"))
    });
    // Each drift iteration starts from a fresh drifted-workload cache: the
    // workload swap inside `reschedule_incremental` drops the old entries.
    let drifted = drifted_workload();
    c.bench_function("sched_replan/drift_replan_cold_cache", |b| {
        b.iter(|| {
            let mut moved = engine.clone();
            moved.reschedule_incremental(drifted.clone(), &incumbent, &opts).expect("replans")
        })
    });
    let survivors = engine.simulator().cluster().survivors(1).expect("degradable");
    let degraded = engine.with_cluster(survivors);
    let fault_delta = ReplanDelta { gpu_delta: -1, workload_changed: false };
    let fault = degraded.replan_from(&incumbent, fault_delta, &opts).expect("replans");
    let recovered: Engine = degraded.with_cluster(engine.simulator().cluster().clone());
    let recovery_delta = ReplanDelta { gpu_delta: 1, workload_changed: false };
    c.bench_function("sched_replan/recovery_replan_warm", |b| {
        b.iter(|| recovered.replan_from(&fault.schedule, recovery_delta, &opts).expect("replans"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}

fn main() {
    print_replan_latency();
    print_serve_wall_clock(2000);
    benches();
    Criterion::default().configure_from_args().final_summary();
}
