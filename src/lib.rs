//! Workspace umbrella for the ExeGPT reproduction: hosts the cross-crate
//! integration tests in `tests/` and the runnable examples in `examples/`.
//! See the `exegpt` crate for the library entry point.
